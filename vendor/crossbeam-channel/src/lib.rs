//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! Multi-producer multi-consumer channels over `Mutex<VecDeque>` +
//! `Condvar`. Implements the subset the workspace uses: `bounded`,
//! `unbounded`, cloneable `Sender`/`Receiver`, `send`, `recv`,
//! `try_recv`, `recv_timeout`, and receiver iteration. `bounded`
//! channels do not apply backpressure (senders never block); every
//! in-tree use either sends exactly the channel's capacity or treats the
//! bound as a hint, so the semantics the callers rely on — message
//! delivery and disconnect detection — are preserved.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake blocked receivers so they observe the
            // disconnect.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<T> Sender<T> {
    /// Send a message. Fails only when every receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(value));
        }
        self.shared.lock().push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    fn disconnected(&self) -> bool {
        self.shared.senders.load(Ordering::SeqCst) == 0
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.lock();
        match q.pop_front() {
            Some(v) => Ok(v),
            None if self.disconnected() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receive, blocking until a message or disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvError);
            }
            q = self
                .shared
                .ready
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Receive, blocking for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            q = self
                .shared
                .ready
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Blocking iterator over received messages, ending at disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { rx: self }
    }
}

/// Owning iterator over received messages.
pub struct IntoIter<T> {
    rx: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel()
}

/// Create a "bounded" channel. Capacity is accepted for API
/// compatibility; senders never block (see module docs).
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    channel()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = bounded::<i32>(4);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        t.join().unwrap();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<i32>();
        let r = rx.recv_timeout(Duration::from_millis(20));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }
}
