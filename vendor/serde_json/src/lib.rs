//! Offline stand-in for `serde_json`.
//!
//! Writes and parses JSON text over the vendored serde's [`Content`]
//! tree. Non-finite floats serialize as `null` (matching real
//! serde_json's lossy behaviour for NaN/inf); the vendored serde's
//! `f64::from_content` maps `null` back to NaN so value round-trips
//! stay total.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON (de)serialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e)
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    T::from_content(&content).map_err(Error::from)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// --- writer ----------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` prints the shortest round-trippable decimal.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                match k {
                    Content::Str(s) => write_string(s, out),
                    // JSON keys must be strings; coerce scalars.
                    other => {
                        let mut tmp = String::new();
                        write_content(other, &mut tmp, None, 0);
                        write_string(&tmp, out);
                    }
                }
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at offset {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((Content::Str(key), val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-path a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|e| Error::new(format!("invalid number {text:?}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
    }

    #[test]
    fn collection_round_trips() {
        let v = vec![(String::from("a"), 1u64), (String::from("b"), 2)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"[["a",1],["b",2]]"#);
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(back, v);

        let m: std::collections::BTreeMap<String, i32> =
            [("x".to_owned(), 1), ("y".to_owned(), -2)].into();
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"x":1,"y":-2}"#);
        let back: std::collections::BTreeMap<String, i32> = from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }

    #[test]
    fn large_u64_survives() {
        let v = u64::MAX;
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), v);
    }

    #[test]
    fn errors_report_offsets() {
        assert!(from_str::<i64>("[1,").is_err());
        assert!(from_str::<i64>("42 junk").is_err());
    }
}
