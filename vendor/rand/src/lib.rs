//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension trait with
//! `gen_range` (integer and float ranges, half-open and inclusive),
//! `gen_bool`, `gen`, and `fill`. The generator is xoshiro256** seeded
//! via SplitMix64 — deterministic per seed, which is all the synthetic
//! workload generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. Offline stand-in: derives the
    /// seed from the system clock and a counter.
    fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::time::{SystemTime, UNIX_EPOCH};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let t = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        Self::seed_from_u64(t ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard generator: xoshiro256**.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 never yields
        // four zero words for any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from a range.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng) as f32
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }

    /// Uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// A thread-local generator handle (API compatibility).
pub fn thread_rng() -> StdRng {
    StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..=4usize);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_rate_reasonable() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
