//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides `Distribution`, `Normal`, and `LogNormal` (the distributions
//! the synthetic workload generators draw from), using the Box-Muller
//! transform over the in-tree `rand` stand-in.

use rand::{Rng, RngCore};

/// Error constructing a distribution with invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale/shape parameter was not finite and positive.
    BadParameter,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Types that generate samples of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller; reject u1 == 0 so ln() stays finite.
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution with `mean` and `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(Error::BadParameter);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create a log-normal distribution from the underlying normal's
    /// `mu` and `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        if !sigma.is_finite() || sigma < 0.0 || !mu.is_finite() {
            return Err(Error::BadParameter);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{SeedableRng, StdRng};

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(5.0, 2.0).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_positive_and_median() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = LogNormal::new(3.0, 0.9).unwrap();
        let mut xs: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(f64::total_cmp);
        let median = xs[5_000];
        // Median of lognormal is exp(mu).
        assert!((median.ln() - 3.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
