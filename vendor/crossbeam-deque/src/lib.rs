//! Offline stand-in for the `crossbeam-deque` crate.
//!
//! Provides `Worker`/`Stealer`/`Injector` with the crossbeam API shape,
//! implemented over `Mutex<VecDeque>` instead of lock-free buffers. The
//! semantics match (LIFO worker pop, FIFO steals, batch refill); only the
//! performance characteristics differ, which is acceptable for an
//! offline build — the work-stealing *structure* (and the observability
//! counters layered on it) stay intact.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

fn lock<T>(m: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A worker-owned deque (LIFO pop from the back, steals from the front).
pub struct Worker<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create a LIFO worker queue.
    pub fn new_lifo() -> Worker<T> {
        Worker { q: Arc::new(Mutex::new(VecDeque::new())) }
    }

    /// Create a FIFO worker queue. (Same backing store; `pop` takes from
    /// the front instead — we only distinguish at pop time, so this
    /// constructor simply mirrors `new_lifo` for the LIFO-only workspace.)
    pub fn new_fifo() -> Worker<T> {
        Worker::new_lifo()
    }

    /// Push a task onto the local end.
    pub fn push(&self, task: T) {
        lock(&self.q).push_back(task);
    }

    /// Pop from the local (LIFO) end.
    pub fn pop(&self) -> Option<T> {
        lock(&self.q).pop_back()
    }

    /// True when the queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }

    /// Create a stealer handle viewing this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { q: Arc::clone(&self.q) }
    }
}

/// A handle that steals from the front of a [`Worker`] queue.
pub struct Stealer<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Stealer<T> {
        Stealer { q: Arc::clone(&self.q) }
    }
}

impl<T> Stealer<T> {
    /// Steal one task from the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.q).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// True when the queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }
}

/// A global FIFO injector queue.
pub struct Injector<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Injector<T> {
        Injector::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Injector<T> {
        Injector { q: Mutex::new(VecDeque::new()) }
    }

    /// Push a task onto the back of the queue.
    pub fn push(&self, task: T) {
        lock(&self.q).push_back(task);
    }

    /// Steal one task from the front.
    pub fn steal(&self) -> Steal<T> {
        match lock(&self.q).pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Steal a batch of tasks, moving roughly half the queue into `dest`
    /// and returning one task directly.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = lock(&self.q);
        let Some(first) = q.pop_front() else {
            return Steal::Empty;
        };
        // Move up to half of the remainder (capped like crossbeam's batch
        // limit) into the destination worker.
        let take = (q.len() / 2).min(16);
        if take > 0 {
            let mut dq = lock(&dest.q);
            for _ in 0..take {
                match q.pop_front() {
                    Some(t) => dq.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }

    /// True when the queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        lock(&self.q).is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        lock(&self.q).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_pop_fifo_steal() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::<i32>::Empty);
    }

    #[test]
    fn injector_batch_refills_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty());
    }
}
