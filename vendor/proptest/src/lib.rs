//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait (`prop_map`, `prop_recursive`, `boxed`), range /
//! tuple / regex-literal strategies, `prop::collection::{vec,
//! btree_set}`, `any`, `Just`, the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros, `ProptestConfig`, and
//! `TestCaseError`.
//!
//! Differences from real proptest: case generation is deterministic
//! (seeded per case index) and failing inputs are **not shrunk** — the
//! failing case's values should be printed by the assertion message.

use std::collections::BTreeSet;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

// --- deterministic rng -----------------------------------------------------

/// The per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Deterministic rng for case `index`.
    pub fn deterministic(index: u64) -> TestRng {
        TestRng { state: index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA076_1D64_78BD_642F) }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// --- strategy core ---------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `f` receives a strategy for the
    /// next-smaller level and returns the composite level. Composition
    /// is unrolled `depth` times over the leaf strategy (the
    /// `desired_size` / `expected_branch` hints are accepted for
    /// API compatibility but unused).
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = f(level).boxed();
        }
        level
    }

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { gen: Arc::new(move |rng| self.generate(rng)) }
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Arc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Strategy adapter mapping values through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from pre-boxed arms; panics on an empty list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// --- primitive strategies --------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// `any::<T>()` support: full-domain generation.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the full domain of `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// --- regex-literal string strategies ---------------------------------------

/// `&str` literals act as regex-subset strategies: concatenations of
/// literal characters and `[...]` classes, each optionally followed by
/// `{m}` / `{m,n}`. This covers patterns like `"[a-zA-Z0-9_]{1,12}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                    set.extend((lo..=hi).filter(|c| c.is_ascii()));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!class.is_empty(), "empty character class in {pattern:?}");
        // Optional {m} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad quantifier"),
                    n.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let m = body.trim().parse::<usize>().expect("bad quantifier");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

// --- collection strategies (under `prop::collection`) ----------------------

/// Module mirror so `prop::collection::vec(...)` resolves.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{BTreeSet, Range, Strategy, TestRng};

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generate vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.start
                    + rng.below((self.size.end - self.size.start).max(1) as u64) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generate ordered sets of `element` values; duplicates are
        /// retried a bounded number of times, so the set may come up
        /// short of the drawn size when the element domain is small.
        pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { element, size }
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = self.size.start
                    + rng.below((self.size.end - self.size.start).max(1) as u64) as usize;
                let mut out = BTreeSet::new();
                let mut attempts = 0;
                while out.len() < target && attempts < target * 10 + 10 {
                    out.insert(self.element.generate(rng));
                    attempts += 1;
                }
                out
            }
        }
    }
}

// --- runner ----------------------------------------------------------------

/// Test-runner types (`ProptestConfig`, `TestCaseError`).
pub mod test_runner {
    use super::TestRng;
    use std::fmt;

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// The case failed with the given reason.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }

        /// The input was rejected (treated like failure here).
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Run `body` for each configured case with a per-case deterministic
    /// rng; panics (failing the enclosing `#[test]`) on the first error.
    pub fn run<F>(config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::deterministic(u64::from(case));
            if let Err(e) = body(&mut rng) {
                panic!("proptest case {case}/{} failed: {e}", config.cases);
            }
        }
    }
}

// --- macros ----------------------------------------------------------------

/// Define property tests: each `fn name(x in strategy, ...)` body runs
/// for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, |__rng| {
                    $(let $p = $crate::Strategy::generate(&($s), __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    __outcome
                });
            }
        )*
    };
}

/// Assert a condition inside a proptest body (fails the case, not the
/// whole process, by returning `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pa_left, __pa_right) = (&($left), &($right));
        if !(__pa_left == __pa_right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __pa_left,
                __pa_right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pa_left, __pa_right) = (&($left), &($right));
        if !(__pa_left == __pa_right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __pa_left,
                __pa_right,
            )));
        }
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::prop;
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{any, Any, Arbitrary, BoxedStrategy, Just, OneOf, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::generate(&(1u64..2_000), &mut rng);
            assert!((1..2_000).contains(&u));
            let f = Strategy::generate(&(-1e3f64..1e3), &mut rng);
            assert!((-1e3..1e3).contains(&f));
        }
    }

    #[test]
    fn regex_literals_match_shape() {
        let mut rng = TestRng::deterministic(2);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-e]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='e').contains(&c)), "{s:?}");
            let t = Strategy::generate(&"[a-zA-Z0-9_]{1,12}", &mut rng);
            assert!((1..=12).contains(&t.len()));
            assert!(t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn collections_and_tuples_compose() {
        let mut rng = TestRng::deterministic(3);
        let strat = prop::collection::vec((0u64..10, 1u64..5), 0..7);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.len() < 7);
            assert!(v.iter().all(|&(a, b)| a < 10 && (1..5).contains(&b)));
        }
        let sets = prop::collection::btree_set("[a-c]{1,2}", 0..5);
        let s = Strategy::generate(&sets, &mut rng);
        assert!(s.len() < 5);
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Debug, Clone, PartialEq)]
        enum E {
            Leaf(i64),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> usize {
            match e {
                E::Leaf(_) => 1,
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0i64..5).prop_map(E::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner)
                    .prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = TestRng::deterministic(4);
        for _ in 0..50 {
            let e = Strategy::generate(&strat, &mut rng);
            assert!(depth(&e) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0u64..100, s in "[a-z]{1,4}") {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.chars().count(), "ascii only: {}", s);
        }
    }
}
