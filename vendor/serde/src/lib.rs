//! Offline stand-in for the `serde` crate.
//!
//! The real serde streams through a `Serializer`/`Deserializer` visitor
//! pair; this stand-in materialises a [`Content`] tree instead — every
//! `Serialize` renders to a `Content`, every `Deserialize` reads from
//! one, and `serde_json` (also vendored) converts `Content` to and from
//! JSON text. The derive macros (`serde_derive`, re-exported here under
//! the usual names) generate externally-tagged representations matching
//! serde's defaults, so files written by this stand-in look like files
//! written by real serde for the shapes this workspace uses.
//!
//! Supported derive attributes: `#[serde(transparent)]`,
//! `#[serde(skip)]`, `#[serde(default)]`, and the
//! `#[serde(try_from = "T", into = "T")]` container proxies.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The materialised data-model value every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON null / unit / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer beyond `i64` range (or any unsigned source).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map / struct. Keys are arbitrary `Content` (JSON requires string
    /// keys; non-string-keyed maps round-trip as sequences of pairs).
    Map(Vec<(Content, Content)>),
}

/// A `Content::Null` with a `'static` address, for missing-field lookups.
pub static NULL: Content = Content::Null;

impl Content {
    /// View as a map, if this is one.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// View as a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// View as a string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "unsigned integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError { msg: msg.to_string() }
    }

    /// "expected X, found Y" helper.
    pub fn expected(what: &str, found: &Content) -> DeError {
        DeError { msg: format!("expected {what}, found {}", found.kind()) }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the [`Content`] data model.
pub trait Serialize {
    /// Produce the content tree for this value.
    fn to_content(&self) -> Content;
}

/// Rebuild `Self` from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Parse the content tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Look up a struct field by name in a content map, yielding `Null` for
/// missing fields (so `Option` fields deserialize to `None`). Used by
/// derive-generated code.
pub fn field<'a>(map: &'a [(Content, Content)], name: &str) -> &'a Content {
    map.iter()
        .find(|(k, _)| matches!(k, Content::Str(s) if s == name))
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

// --- primitive impls -------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| DeError::custom("unsigned value out of i64 range"))?,
                    Content::F64(v) if v.fract() == 0.0 => v as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(concat!("value out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) => u64::try_from(v)
                        .map_err(|_| DeError::custom("negative value for unsigned field"))?,
                    Content::F64(v) if v.fract() == 0.0 && v >= 0.0 => v as u64,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(concat!("value out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        match u64::try_from(*self) {
            Ok(v) => Content::U64(v),
            // Out-of-range u128 round-trips through a string.
            Err(_) => Content::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::U64(v) => Ok(*v as u128),
            Content::I64(v) if *v >= 0 => Ok(*v as u128),
            Content::Str(s) => s.parse().map_err(|_| DeError::custom("bad u128 string")),
            other => Err(DeError::expected("u128", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            // JSON cannot carry NaN/inf; they are written as null.
            Content::Null => Ok(f64::NAN),
            ref other => Err(DeError::expected("float", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::expected("char", c))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", c))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence", c))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(VecDeque::from)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(|v| v.into_iter().collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Vec::<T>::from_content(c).map(|v| v.into_iter().collect())
    }
}

/// Shared map encoding: string-keyed maps become `Content::Map`,
/// anything else becomes a sequence of `[key, value]` pairs.
fn map_to_content<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)> + Clone,
) -> Content {
    let all_str = entries.clone().all(|(k, _)| matches!(k.to_content(), Content::Str(_)));
    if all_str {
        Content::Map(entries.map(|(k, v)| (k.to_content(), v.to_content())).collect())
    } else {
        Content::Seq(
            entries.map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()])).collect(),
        )
    }
}

fn map_from_content<K: Deserialize, V: Deserialize>(
    c: &Content,
) -> Result<Vec<(K, V)>, DeError> {
    match c {
        Content::Map(m) => {
            m.iter().map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?))).collect()
        }
        Content::Seq(s) => s
            .iter()
            .map(|pair| {
                let p = pair.as_seq().filter(|p| p.len() == 2).ok_or_else(|| {
                    DeError::custom("expected [key, value] pair in map sequence")
                })?;
                Ok((K::from_content(&p[0])?, V::from_content(&p[1])?))
            })
            .collect(),
        other => Err(DeError::expected("map", other)),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        map_from_content::<K, V>(c).map(|v| v.into_iter().collect())
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        map_from_content::<K, V>(c).map(|v| v.into_iter().collect())
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let s = c.as_seq().filter(|s| s.len() == LEN).ok_or_else(|| {
                    DeError::custom(format!("expected sequence of length {LEN}"))
                })?;
                Ok(($($t::from_content(&s[$n])?,)+))
            }
        }
    )+};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

// --- pointers --------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Arc::new)
    }
}

impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str().map(Arc::from).ok_or_else(|| DeError::expected("string", c))
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Rc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for std::path::PathBuf {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str().map(std::path::PathBuf::from).ok_or_else(|| DeError::expected("path", c))
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}
