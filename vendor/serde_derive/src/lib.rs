//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` over the
//! raw `proc_macro` token stream — no `syn`/`quote` (the container has no
//! network access to fetch them). Parses the item shape (struct with
//! named / tuple / unit fields, enums with unit / tuple / struct
//! variants) plus the `#[serde(...)]` attributes the workspace uses
//! (`transparent`, `skip`, `default`, `try_from = "T"`, `into = "T"`),
//! then emits impls of the vendored serde's `Serialize`/`Deserialize`
//! Content-tree traits as source text.
//!
//! Generic type parameters are intentionally unsupported (no in-tree
//! serialized type is generic); deriving on one produces a compile error
//! pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

#[derive(Debug, Default)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String, // named field name, or tuple index as a string
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, attrs: ContainerAttrs, shape: Shape },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derive the vendored serde `Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

/// Derive the vendored serde `Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("compile_error parses")
}

// --- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let mut container = ContainerAttrs::default();
    // Leading attributes (doc comments arrive as #[doc = "..."]).
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            parse_serde_attr_into(&g.stream(), &mut container, &mut FieldAttrs::default());
            i += 2;
        } else {
            return Err("malformed attribute".into());
        }
    }
    // Visibility: `pub` optionally followed by `(...)`.
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}` — \
             add a manual impl or drop the generics"
        ));
    }

    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(&g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(&g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, attrs: container, shape })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("unexpected enum body: {other:?}")),
            };
            Ok(Item::Enum { name, variants: parse_variants(&body)? })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Parse `[serde(...)]` attribute bodies into container/field attrs; other
/// attributes (docs, derives) are ignored.
fn parse_serde_attr_into(
    stream: &TokenStream,
    container: &mut ContainerAttrs,
    field: &mut FieldAttrs,
) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let [TokenTree::Ident(tag), TokenTree::Group(args)] = &tokens[..] else {
        return;
    };
    if tag.to_string() != "serde" {
        return;
    }
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let TokenTree::Ident(key) = &args[j] else {
            j += 1;
            continue;
        };
        let key = key.to_string();
        let value = match (args.get(j + 1), args.get(j + 2)) {
            (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                if eq.as_char() == '=' =>
            {
                j += 3;
                let text = lit.to_string();
                Some(text.trim_matches('"').to_owned())
            }
            _ => {
                j += 1;
                None
            }
        };
        match key.as_str() {
            "transparent" => container.transparent = true,
            "try_from" => container.try_from = value.clone(),
            "into" => container.into = value.clone(),
            "skip" | "skip_serializing" | "skip_deserializing" => field.skip = true,
            "default" => field.default = true,
            _ => {}
        }
        // Skip a separating comma if present.
        if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

/// Split a token stream at top-level commas. Angle brackets in types
/// (`BTreeMap<String, MetaEntry>`) are not token groups, so `<`/`>`
/// nesting is tracked by hand; `->` (whose `>` is not a closer) is
/// recognised via the preceding joint `-`.
fn split_commas(stream: &TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for t in stream.clone() {
        match &t {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                let after_dash = matches!(
                    cur.last(),
                    Some(TokenTree::Punct(prev)) if prev.as_char() == '-'
                );
                if !after_dash {
                    angle_depth = angle_depth.saturating_sub(1);
                }
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading attributes from a field/variant token list, collecting
/// serde field attrs; returns the index of the first non-attribute token.
fn take_attrs(tokens: &[TokenTree], field: &mut FieldAttrs) -> usize {
    let mut i = 0;
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            parse_serde_attr_into(&g.stream(), &mut ContainerAttrs::default(), field);
            i += 2;
        } else {
            break;
        }
    }
    i
}

fn parse_named_fields(stream: &TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for part in split_commas(stream) {
        let mut attrs = FieldAttrs::default();
        let mut i = take_attrs(&part, &mut attrs);
        if matches!(part.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(part.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(name)) = part.get(i) else {
            return Err(format!("expected field name, found {:?}", part.get(i)));
        };
        fields.push(Field { name: name.to_string(), attrs });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: &TokenStream) -> Result<Vec<Field>, String> {
    Ok(split_commas(stream)
        .into_iter()
        .enumerate()
        .map(|(idx, part)| {
            let mut attrs = FieldAttrs::default();
            take_attrs(&part, &mut attrs);
            Field { name: idx.to_string(), attrs }
        })
        .collect())
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_commas(stream) {
        let mut fattrs = FieldAttrs::default();
        let mut i = take_attrs(&part, &mut fattrs);
        let Some(TokenTree::Ident(name)) = part.get(i) else {
            return Err(format!("expected variant name, found {:?}", part.get(i)));
        };
        i += 1;
        let shape = match part.get(i) {
            None => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(&g.stream())?)
            }
            // `Variant = 3` discriminants: unit variant.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => Shape::Unit,
            other => return Err(format!("unexpected variant body: {other:?}")),
        };
        variants.push(Variant { name: name.to_string(), shape });
    }
    Ok(variants)
}

// --- codegen ---------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, attrs, shape } => {
            if let Some(proxy) = &attrs.into {
                return format!(
                    "impl ::serde::Serialize for {name} {{\n\
                       fn to_content(&self) -> ::serde::Content {{\n\
                         let proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
                         ::serde::Serialize::to_content(&proxy)\n\
                       }}\n\
                     }}"
                );
            }
            let body = match shape {
                Shape::Unit => "::serde::Content::Null".to_owned(),
                Shape::Tuple(fields) if fields.len() == 1 || attrs.transparent => {
                    let f = &fields[0];
                    format!("::serde::Serialize::to_content(&self.{})", f.name)
                }
                Shape::Named(fields) if attrs.transparent => {
                    let f = fields.iter().find(|f| !f.attrs.skip).expect("transparent field");
                    format!("::serde::Serialize::to_content(&self.{})", f.name)
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| format!("::serde::Serialize::to_content(&self.{})", f.name))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => gen_named_to_map(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_owned()),\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let inner = if fields.len() == 1 {
                            "::serde::Serialize::to_content(__f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![(\
                               ::serde::Content::Str(\"{vn}\".to_owned()), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str(\"{n}\".to_owned()), \
                                     ::serde::Serialize::to_content({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\
                               ::serde::Content::Str(\"{vn}\".to_owned()), \
                               ::serde::Content::Map(vec![{entries}]))]),\n",
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn to_content(&self) -> ::serde::Content {{\n\
                     match self {{\n{arms}\n}}\n\
                   }}\n\
                 }}"
            )
        }
    }
}

fn gen_named_to_map(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .filter(|f| !f.attrs.skip)
        .map(|f| {
            format!(
                "(::serde::Content::Str(\"{n}\".to_owned()), \
                 ::serde::Serialize::to_content(&{prefix}{n}))",
                n = f.name
            )
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, attrs, shape } => {
            if let Some(proxy) = &attrs.try_from {
                return format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                       fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let proxy: {proxy} = ::serde::Deserialize::from_content(c)?;\n\
                         ::std::convert::TryFrom::try_from(proxy)\n\
                           .map_err(|e| ::serde::DeError::custom(format!(\"{{e}}\")))\n\
                       }}\n\
                     }}"
                );
            }
            let body = match shape {
                Shape::Unit => format!("match c {{ ::serde::Content::Null => Ok({name}), other => Err(::serde::DeError::expected(\"null\", other)) }}"),
                Shape::Tuple(fields) if fields.len() == 1 || attrs.transparent => format!(
                    "Ok({name}(::serde::Deserialize::from_content(c)?))"
                ),
                Shape::Named(fields) if attrs.transparent => {
                    let f = fields.iter().find(|f| !f.attrs.skip).expect("transparent field");
                    let mut init = format!("{}: ::serde::Deserialize::from_content(c)?", f.name);
                    for skipped in fields.iter().filter(|g| g.attrs.skip) {
                        init.push_str(&format!(", {}: ::std::default::Default::default()", skipped.name));
                    }
                    format!("Ok({name} {{ {init} }})")
                }
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    let items: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                        .collect();
                    format!(
                        "{{ let s = c.as_seq().filter(|s| s.len() == {n}).ok_or_else(|| \
                           ::serde::DeError::custom(\"expected sequence of length {n} for {name}\"))?;\n\
                           Ok({name}({items})) }}",
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            if f.attrs.skip {
                                format!("{}: ::std::default::Default::default()", f.name)
                            } else if f.attrs.default {
                                format!(
                                    "{n}: match ::serde::field(m, \"{n}\") {{\n\
                                       ::serde::Content::Null => ::std::default::Default::default(),\n\
                                       other => ::serde::Deserialize::from_content(other)?,\n\
                                     }}",
                                    n = f.name
                                )
                            } else {
                                format!(
                                    "{n}: ::serde::Deserialize::from_content(::serde::field(m, \"{n}\"))\
                                       .map_err(|e| ::serde::DeError::custom(format!(\"{name}.{n}: {{e}}\")))?",
                                    n = f.name
                                )
                            }
                        })
                        .collect();
                    format!(
                        "{{ let m = c.as_map().ok_or_else(|| \
                           ::serde::DeError::expected(\"map for struct {name}\", c))?;\n\
                           Ok({name} {{ {inits} }}) }}",
                        inits = inits.join(",\n")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(fields) if fields.len() == 1 => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}(\
                               ::serde::Deserialize::from_content(value)\
                                 .map_err(|e| ::serde::DeError::custom(format!(\"{name}::{vn}: {{e}}\")))?)),\n"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let s = value.as_seq().filter(|s| s.len() == {n}).ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected {n}-tuple for {name}::{vn}\"))?;\n\
                               return Ok({name}::{vn}({items}));\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.attrs.skip {
                                    format!("{}: ::std::default::Default::default()", f.name)
                                } else if f.attrs.default {
                                    // Same missing-field handling as the
                                    // struct branch above: absent (Null)
                                    // fields take their Default.
                                    format!(
                                        "{n}: match ::serde::field(m, \"{n}\") {{\n\
                                           ::serde::Content::Null => ::std::default::Default::default(),\n\
                                           other => ::serde::Deserialize::from_content(other)\
                                             .map_err(|e| ::serde::DeError::custom(format!(\"{name}::{vn}.{n}: {{e}}\")))?,\n\
                                         }}",
                                        n = f.name
                                    )
                                } else {
                                    format!(
                                        "{n}: ::serde::Deserialize::from_content(::serde::field(m, \"{n}\"))\
                                           .map_err(|e| ::serde::DeError::custom(format!(\"{name}::{vn}.{n}: {{e}}\")))?",
                                        n = f.name
                                    )
                                }
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let m = value.as_map().ok_or_else(|| \
                                 ::serde::DeError::expected(\"map for {name}::{vn}\", value))?;\n\
                               return Ok({name}::{vn} {{ {inits} }});\n\
                             }}\n",
                            inits = inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                   fn from_content(c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     if let Some(tag) = c.as_str() {{\n\
                       match tag {{\n{unit_arms}\
                         _ => return Err(::serde::DeError::custom(format!(\"unknown {name} variant {{tag:?}}\"))),\n\
                       }}\n\
                     }}\n\
                     let m = c.as_map().filter(|m| m.len() == 1).ok_or_else(|| \
                       ::serde::DeError::expected(\"externally tagged {name} variant\", c))?;\n\
                     let (tag_c, value) = &m[0];\n\
                     let tag = tag_c.as_str().ok_or_else(|| \
                       ::serde::DeError::expected(\"string variant tag\", tag_c))?;\n\
                     #[allow(unused_variables)]\n\
                     match tag {{\n{tagged_arms}\
                       _ => {{}}\n\
                     }}\n\
                     Err(::serde::DeError::custom(format!(\"unknown {name} variant {{tag:?}}\")))\n\
                   }}\n\
                 }}"
            )
        }
    }
}
