//! Offline stand-in for the `criterion` crate.
//!
//! Implements the group / bench_function / bench_with_input surface the
//! workspace benches use, measuring mean wall-clock time per iteration.
//! Two modes:
//!
//! - **bench mode** (`--bench` present, as passed by `cargo bench`):
//!   each benchmark runs `sample_size` timed iterations after one
//!   warm-up call;
//! - **test mode** (no `--bench`, as when `cargo test` executes a
//!   `harness = false` bench target): each benchmark runs once, so the
//!   target doubles as a smoke test.
//!
//! Extra flag over real criterion: `--metrics-json <path>` writes a
//! JSON report of every benchmark's timing **plus a snapshot of the
//! `nggc-obs` global metrics registry**, so BENCH_*.json files carry
//! engine counters (pool utilization, steal counts, loader and
//! repository counters) next to the numbers they explain.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    iterations: u64,
    mean: Duration,
}

impl Bencher {
    /// Run `f` for the configured number of iterations and record the
    /// mean wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call (also the only call in test mode).
        std::hint::black_box(f());
        if self.iterations == 0 {
            self.mean = Duration::ZERO;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(f());
        }
        self.mean = start.elapsed() / self.iterations as u32;
    }
}

#[derive(Debug, Clone)]
struct BenchResult {
    group: String,
    name: String,
    mean: Duration,
    iterations: u64,
}

/// Benchmark driver; one per bench binary.
pub struct Criterion {
    default_sample_size: usize,
    bench_mode: bool,
    metrics_json: Option<String>,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            bench_mode: false,
            metrics_json: None,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Build from the process arguments (`--bench`, `--metrics-json`).
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => c.bench_mode = true,
                "--metrics-json" => c.metrics_json = args.next(),
                _ => {}
            }
        }
        c
    }

    /// Accepted for API compatibility; returns self unchanged.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Top-level `bench_function` (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Criterion {
        let mut group = self.benchmark_group("");
        group.bench_function_id(id.into(), f);
        group.finish();
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: &str,
        id: BenchmarkId,
        sample_size: usize,
        mut f: F,
    ) {
        let iterations = if self.bench_mode { sample_size as u64 } else { 0 };
        let mut bencher = Bencher { iterations, mean: Duration::ZERO };
        f(&mut bencher);
        let full = if group.is_empty() {
            id.id.clone()
        } else {
            format!("{group}/{}", id.id)
        };
        let shown = if self.bench_mode {
            format!("{:?}", bencher.mean)
        } else {
            "(test mode: 1 iteration)".to_owned()
        };
        println!("bench {full:<40} {shown}");
        self.results.push(BenchResult {
            group: group.to_owned(),
            name: id.id,
            mean: bencher.mean,
            iterations: iterations.max(1),
        });
    }

    /// Print the report and, with `--metrics-json`, write timings plus
    /// the global `nggc-obs` registry snapshot to the given path.
    pub fn final_summary(&self) {
        if let Some(path) = &self.metrics_json {
            let json = self.render_json();
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("criterion: failed to write {path}: {e}");
            } else {
                eprintln!("criterion: wrote metrics report to {path}");
            }
        }
    }

    fn render_json(&self) -> String {
        let mut out = String::from("{\"benchmarks\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"group\":{:?},\"name\":{:?},\"mean_ns\":{},\"iterations\":{}}}",
                r.group,
                r.name,
                r.mean.as_nanos(),
                r.iterations
            ));
        }
        out.push_str("],\"metrics\":");
        out.push_str(&nggc_obs::global().render_json());
        out.push('}');
        out
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark in bench mode.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.bench_function_id(id.into(), f);
        self
    }

    fn bench_function_id<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) {
        let sample_size = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let name = self.name.clone();
        self.criterion.run_one(&name, id, sample_size, f);
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function_id(id.into(), |b| f(b, input));
        self
    }

    /// Close the group (report output already happened per-bench).
    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Collect benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_bench_once() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // Test mode: warm-up call only.
        assert_eq!(calls, 1);
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].name, "one");
    }

    #[test]
    fn bench_mode_times_sample_size_iterations() {
        let mut c = Criterion { bench_mode: true, ..Criterion::default() };
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &n| {
                b.iter(|| calls += n)
            });
            g.finish();
        }
        // 1 warm-up + 5 timed.
        assert_eq!(calls, 3 * 6);
        assert_eq!(c.results[0].name, "param/3");
        assert_eq!(c.results[0].iterations, 5);
    }

    #[test]
    fn json_report_includes_benchmarks_and_metrics() {
        let mut c = Criterion::default();
        c.bench_function("solo", |b| b.iter(|| 1 + 1));
        let json = c.render_json();
        assert!(json.contains("\"benchmarks\":["), "{json}");
        assert!(json.contains("\"name\":\"solo\""), "{json}");
        assert!(json.contains("\"metrics\":["), "{json}");
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(100).id, "100");
    }
}
