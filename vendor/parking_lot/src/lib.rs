//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements the subset of the API this workspace uses — `Mutex`,
//! `RwLock`, and `Condvar` with parking_lot's non-poisoning signatures —
//! on top of `std::sync`. Poisoned std locks are recovered via
//! `into_inner`, matching parking_lot's "poisoning does not exist"
//! semantics.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` signature).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait_for` can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable compatible with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: sync::Condvar::new() }
    }

    /// Block until notified. (`T: Sized` because `std::sync::Condvar`
    /// requires it.)
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult { timed_out: res }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock (non-poisoning signatures).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        t.join().unwrap();
        assert!(*g);
    }
}
