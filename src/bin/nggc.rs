//! `nggc` — command-line interface to the genomic data-management stack.
//!
//! The §4.3 vision provides "integrated access to curated data ...
//! through user-friendly search services"; this CLI is the local
//! single-node version: manage a repository of GDM datasets, import
//! external formats, run GMQL queries, search metadata, and export
//! results for genome browsers.
//!
//! ```text
//! nggc [--repo PATH] <command> [args]
//!
//! commands:
//!   init                          initialise the repository
//!   import FILE [DATASET]         import a BED/narrowPeak/GTF/GFF3/VCF/bedGraph/WIG file
//!   import-dir DIR                import every recognised file in a directory
//!   list                          list datasets with statistics
//!   info DATASET                  schema + statistics of one dataset
//!   migrate [DATASET | --all]     rewrite datasets in the binary v2 storage format
//!   delete DATASET                remove a dataset (crash-safe: catalogued first,
//!                                 then moved to trash, then swept)
//!   fsck [--repair] [--deep]      verify repository integrity: catalog/dataset
//!                                 cross-checks, container headers, orphaned temp
//!                                 files, stale cached results; --deep adds a full
//!                                 checksum pass, --repair fixes what it can
//!        [--crashpoints]          print the registered crash-injection sites
//!   query (-e TEXT | FILE)        run a GMQL query; prints output statistics
//!         [--save] [--workers N] [--explain] [--explain-analyze [--json]]
//!         [--head K] [--profile] [--timeout DUR] [--max-memory BYTES]
//!         [--no-cache]            bypass the on-disk query result cache
//!   stats [--json]                dump the metrics registry (Prometheus text or JSON)
//!         [-e TEXT]               optionally run a query first so the registry is warm
//!         [--fed-selftest]        exercise a faulty 3-node federation first so the
//!                                 retry/timeout/breaker metrics carry real values
//!         [--profile]             render the stitched cross-node span tree collected
//!                                 while the selftest (or -e query) ran
//!   search KEYWORDS [--ontology]  search sample metadata
//!   export DATASET FILE.bed       export a dataset's regions as BED
//!   serve [--addr HOST:PORT]      run the concurrent multi-client query service
//!         [--workers N] [--max-inflight N] [--queue N] [--mem-pool SIZE]
//!         [--timeout DUR] [--drain-timeout DUR] [--result-cache SIZE]
//!   client [--addr HOST:PORT]     talk to a running serve instance
//!          (-e TEXT | FILE | --ping | --stats)
//!          [--timeout DUR] [--max-memory SIZE] [--head K] [--no-cache]
//! ```
//!
//! `--profile` renders the span tree and top-k operator table described
//! in `docs/observability.md`. `--explain` prints the optimized plan
//! tree without executing; `--explain-analyze` executes and annotates
//! each plan node with measured rows/bytes/wall time, governor memory
//! charged/released, repository cache hits/misses, and federation
//! retries/timeouts — `--json` switches to the machine-readable
//! document the bench harness diffs across runs.
//!
//! The slow-query flight recorder (`docs/observability.md`) arms when
//! `NGGC_SLOW_QUERY_MS` (threshold) or `NGGC_FLIGHT_RECORDER` (sink
//! path; stderr when unset) is present in the environment: a query that
//! overruns the threshold or trips the governor dumps one JSON line
//! with its full span trace and per-node stats.
//!
//! `query` runs under a resource governor (`docs/robustness.md`):
//! `--timeout`/`--max-memory` (or the `NGGC_QUERY_TIMEOUT` /
//! `NGGC_QUERY_MAX_MEMORY` environment variables) bound wall time and
//! governed memory, and Ctrl-C cancels the running query cooperatively.
//! A tripped query prints its partial progress and exits with a
//! distinctive code: 124 for a missed deadline (the `timeout(1)`
//! convention), 130 for cancellation (128 + SIGINT), 3 for a rejected
//! memory charge.

use nggc::formats::{write_bed, BedOptions, FileFormat};
use nggc::gdm::{Dataset, Sample};
use nggc::gmql::{ExecOptions, GmqlError, GovernorLimits, LogicalPlan, QueryGovernor};
use nggc::ontology::mini_umls;
use nggc::repository::Repository;
use nggc::search::{MetadataSearch, RankMode};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Exit code when the query deadline fires — the `timeout(1)` convention.
const EXIT_DEADLINE: u8 = 124;
/// Exit code when the query is cancelled (128 + SIGINT).
const EXIT_CANCELLED: u8 = 130;
/// Exit code when the memory budget rejects a charge.
const EXIT_MEMORY: u8 = 3;

/// A CLI failure: the message plus the process exit code it maps to.
/// Plain `String` errors convert to the generic failure code 1; the
/// governor's typed errors carry their distinctive codes.
struct CliError {
    message: String,
    code: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { message, code: 1 }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError { message: message.to_owned(), code: 1 }
    }
}

impl From<GmqlError> for CliError {
    fn from(e: GmqlError) -> CliError {
        let code = match &e {
            GmqlError::DeadlineExceeded { .. } => EXIT_DEADLINE,
            GmqlError::Cancelled { .. } => EXIT_CANCELLED,
            GmqlError::MemoryExhausted { .. } => EXIT_MEMORY,
            _ => 1,
        };
        CliError { message: e.to_string(), code }
    }
}

/// Cooperative Ctrl-C handling without any signal-handling dependency:
/// a raw `signal(2)` registration whose handler only flips an atomic
/// (the one async-signal-safe thing worth doing), and a watcher thread
/// that polls the flag and cancels the governed query. A second Ctrl-C
/// aborts the process immediately — the escape hatch when cooperative
/// cancellation is not fast enough for the user.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Duration;

    static PENDING: AtomicBool = AtomicBool::new(false);
    static SEEN: AtomicUsize = AtomicUsize::new(0);

    const SIGINT: i32 = 2;

    // std already links libc; declare the one symbol we need instead of
    // pulling in a crate.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_sig: i32) {
        if SEEN.fetch_add(1, Ordering::Relaxed) >= 1 {
            // Second Ctrl-C: the user insists; abort(3) is
            // async-signal-safe.
            std::process::abort();
        }
        PENDING.store(true, Ordering::SeqCst);
    }

    /// Install the handler and start a watcher thread that cancels
    /// `token` once Ctrl-C arrives. The thread is detached; it dies
    /// with the process.
    pub fn watch(token: nggc::engine::CancelToken) {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
        }
        std::thread::Builder::new()
            .name("nggc-sigint-watcher".into())
            .spawn(move || loop {
                if PENDING.load(Ordering::SeqCst) {
                    token.cancel();
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            })
            .ok();
    }

    const SIGTERM: i32 = 15;

    /// Serve-mode wiring: SIGINT **and** SIGTERM both trigger `on_stop`
    /// once (graceful drain); a second signal aborts the process.
    pub fn watch_shutdown(on_stop: impl FnOnce() + Send + 'static) {
        unsafe {
            signal(SIGINT, on_sigint as *const () as usize);
            signal(SIGTERM, on_sigint as *const () as usize);
        }
        std::thread::Builder::new()
            .name("nggc-shutdown-watcher".into())
            .spawn(move || loop {
                if PENDING.load(Ordering::SeqCst) {
                    on_stop();
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            })
            .ok();
    }
}

#[cfg(not(unix))]
mod sigint {
    /// No signal wiring off Unix; Ctrl-C falls back to process death.
    pub fn watch(_token: nggc::engine::CancelToken) {}

    /// No graceful-drain signal off Unix either.
    pub fn watch_shutdown(_on_stop: impl FnOnce() + Send + 'static) {}
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.code)
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), CliError> {
    // Opt out of metrics collection entirely (docs/observability.md).
    if matches!(std::env::var("NGGC_METRICS").as_deref(), Ok("off" | "0" | "false")) {
        nggc::obs::global().set_enabled(false);
    }
    let mut repo_path = PathBuf::from("nggc-repo");
    if let Some(pos) = args.iter().position(|a| a == "--repo") {
        if pos + 1 >= args.len() {
            return Err("--repo requires a path".into());
        }
        repo_path = PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
    }
    let Some(command) = args.first().cloned() else {
        return Err(usage().into());
    };
    let rest = args[1..].to_vec();
    match command.as_str() {
        "init" => cmd_init(&repo_path).map_err(CliError::from),
        "import" => cmd_import(&repo_path, &rest).map_err(CliError::from),
        "import-dir" => cmd_import_dir(&repo_path, &rest).map_err(CliError::from),
        "list" => cmd_list(&repo_path).map_err(CliError::from),
        "info" => cmd_info(&repo_path, &rest).map_err(CliError::from),
        "migrate" => cmd_migrate(&repo_path, &rest).map_err(CliError::from),
        "delete" => cmd_delete(&repo_path, &rest).map_err(CliError::from),
        "fsck" => cmd_fsck(&repo_path, &rest),
        "query" => cmd_query(&repo_path, &rest),
        "stats" => cmd_stats(&repo_path, &rest).map_err(CliError::from),
        "search" => cmd_search(&repo_path, &rest).map_err(CliError::from),
        "export" => cmd_export(&repo_path, &rest).map_err(CliError::from),
        "serve" => cmd_serve(&repo_path, &rest).map_err(CliError::from),
        "client" => cmd_client(&rest),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage()).into()),
    }
}

fn usage() -> String {
    "usage: nggc [--repo PATH] <init|import|import-dir|list|info|migrate|delete|fsck|query|stats|search|export|serve|client|help> [args]\n\
     fsck [--repair] [--deep] [--crashpoints]  verify repository integrity (--deep: full checksum pass)\n\
     delete DATASET                            remove a dataset from the repository\n\
     run `nggc help` for details"
        .to_owned()
}

fn open(repo_path: &Path) -> Result<Repository, String> {
    Repository::open(repo_path).map_err(|e| e.to_string())
}

fn cmd_init(repo_path: &Path) -> Result<(), String> {
    let repo = open(repo_path)?;
    println!("repository initialised at {}", repo.root().display());
    Ok(())
}

fn cmd_import(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let Some(file) = args.first() else {
        return Err("import requires a file path".into());
    };
    let path = Path::new(file);
    let format = FileFormat::from_path(path).map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let regions = format.parse(&text).map_err(|e| e.to_string())?;
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "imported".to_owned());
    let dataset_name = args.get(1).cloned().unwrap_or_else(|| stem.to_uppercase());

    let mut repo = open(repo_path)?;
    // Append to an existing dataset when schemas agree; create otherwise.
    // `load` returns a shared cache handle, so take an owned copy to edit.
    let mut dataset = match repo.load(&dataset_name) {
        Ok(existing) if existing.schema == format.schema() => (*existing).clone(),
        _ => Dataset::new(dataset_name.clone(), format.schema()),
    };
    let mut sample = Sample::new(stem, &dataset_name).with_regions(regions);
    sample.metadata.insert("imported_from", path.display().to_string());
    sample.metadata.insert("format", format!("{format:?}"));
    let n = sample.region_count();
    dataset.add_sample(sample).map_err(|e| e.to_string())?;
    repo.save(&dataset).map_err(|e| e.to_string())?;
    println!(
        "imported {n} regions into dataset {dataset_name} ({} samples total)",
        dataset.sample_count()
    );
    Ok(())
}

fn cmd_import_dir(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let Some(dir) = args.first() else {
        return Err("import-dir requires a directory".into());
    };
    let report = nggc::formats::load_directory(Path::new(dir)).map_err(|e| e.to_string())?;
    let mut repo = open(repo_path)?;
    for ds in &report.datasets {
        repo.save(ds).map_err(|e| e.to_string())?;
        println!("imported {} — {}", ds.name, ds.stats());
    }
    for (p, n) in &report.loaded {
        println!("loaded {} ({n} regions)", p.display());
    }
    for p in &report.skipped {
        println!("skipped {} (unrecognised extension)", p.display());
    }
    for (p, e) in &report.failed {
        eprintln!("failed {}: {e}", p.display());
    }
    if report.datasets.is_empty() {
        return Err("no recognised genomic files found".into());
    }
    Ok(())
}

fn cmd_list(repo_path: &Path) -> Result<(), String> {
    let repo = open(repo_path)?;
    let entries = repo.list();
    if entries.is_empty() {
        println!("(empty repository)");
        return Ok(());
    }
    for e in entries {
        let version =
            repo.storage_version(&e.name).map(|v| v.name()).unwrap_or("missing").to_owned();
        println!("{}  [{}]  {}  :: {}", e.name, version, e.stats, e.schema);
    }
    Ok(())
}

/// `nggc migrate [DATASET | --all]` — rewrite datasets in the binary v2
/// container format. With no argument (or `--all`) every dataset is
/// migrated; already-v2 datasets are recompacted in place.
fn cmd_migrate(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let mut repo = open(repo_path)?;
    let (reports, failed) = match args.first().map(|s| s.as_str()) {
        None | Some("--all") => {
            let sweep = repo.migrate_all();
            (sweep.migrated, sweep.failed)
        }
        Some(name) => (vec![repo.migrate(name).map_err(|e| e.to_string())?], Vec::new()),
    };
    if reports.is_empty() && failed.is_empty() {
        println!("(empty repository — nothing to migrate)");
        return Ok(());
    }
    for r in &reports {
        let pct = if r.bytes_before > 0 {
            100.0 * (1.0 - r.bytes_after as f64 / r.bytes_before as f64)
        } else {
            0.0
        };
        println!(
            "{}  {} -> v2  {} B -> {} B  ({pct:+.1}% saved)",
            r.name,
            r.from.name(),
            r.bytes_before,
            r.bytes_after
        );
    }
    for (name, err) in &failed {
        eprintln!("{name}  FAILED: {err}");
    }
    if !failed.is_empty() {
        return Err(format!(
            "{} of {} datasets failed to migrate (the rest completed)",
            failed.len(),
            reports.len() + failed.len()
        ));
    }
    Ok(())
}

/// `nggc delete DATASET` — crash-safe removal: the catalog forgets the
/// dataset (durably) before any bytes leave the disk, so a crash can
/// strand an orphan directory (repaired by `fsck`/reopen) but never a
/// catalog entry pointing at nothing it can't explain.
fn cmd_delete(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let Some(name) = args.first() else {
        return Err("delete requires a dataset name".into());
    };
    let mut repo = open(repo_path)?;
    repo.delete(name).map_err(|e| e.to_string())?;
    println!("deleted {name}");
    Ok(())
}

/// `nggc fsck [--repair] [--deep] [--crashpoints]` — verify (and
/// optionally repair) the repository. Operates on raw paths rather than
/// `Repository::open`, which auto-repairs and would mask damage. Exits
/// 0 when the repository is clean or every issue was repaired, 1 when
/// un-repaired issues remain.
fn cmd_fsck(repo_path: &Path, args: &[String]) -> Result<(), CliError> {
    use nggc::repository::{fsck, FsckOptions};
    let mut opts = FsckOptions::default();
    for arg in args {
        match arg.as_str() {
            "--repair" => opts.repair = true,
            "--deep" => opts.deep = true,
            "--crashpoints" => {
                for site in nggc::repository::CRASH_SITES {
                    println!("{site}");
                }
                return Ok(());
            }
            other => return Err(format!("fsck: unexpected argument {other:?}").into()),
        }
    }
    if !repo_path.exists() {
        return Err(format!("fsck: no repository at {}", repo_path.display()).into());
    }
    let report = fsck::fsck(repo_path, opts).map_err(|e| CliError::from(e.to_string()))?;
    let mode = if opts.deep { "deep" } else { "shallow" };
    for issue in &report.issues {
        let fixed = if issue.repaired { " [repaired]" } else { "" };
        println!("{}: {}: {}{fixed}", issue.kind.name(), issue.subject, issue.detail);
    }
    println!(
        "fsck ({mode}): {} datasets ok, {} quarantined, {} issues ({} repaired)",
        report.datasets_ok,
        report.quarantined,
        report.issues.len(),
        report.issues.iter().filter(|i| i.repaired).count()
    );
    let unrepaired = report.unrepaired();
    if unrepaired > 0 {
        return Err(format!("fsck: {unrepaired} unrepaired issue(s)").into());
    }
    Ok(())
}

fn cmd_info(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let Some(name) = args.first() else {
        return Err("info requires a dataset name".into());
    };
    let repo = open(repo_path)?;
    let ds = repo.load(name).map_err(|e| e.to_string())?;
    println!("dataset {}", ds.name);
    println!("schema  {}", ds.schema);
    println!("stats   {}", ds.stats());
    for s in &ds.samples {
        println!(
            "  sample {} — {} regions, {} metadata pairs",
            s.name,
            s.region_count(),
            s.metadata.len()
        );
        for (k, v) in s.metadata.iter() {
            println!("    {k}\t{v}");
        }
    }
    Ok(())
}

/// One span of a collected trace, as serialized in `--explain-analyze
/// --json` documents and flight-recorder lines. Durations are integer
/// microseconds so the output diffs cleanly.
#[derive(serde::Serialize)]
struct SpanJson {
    id: u64,
    parent: Option<u64>,
    trace_id: u64,
    name: String,
    start_us: u64,
    wall_us: u64,
    fields: Vec<(String, String)>,
}

impl From<&nggc::obs::SpanRecord> for SpanJson {
    fn from(r: &nggc::obs::SpanRecord) -> SpanJson {
        SpanJson {
            id: r.id,
            parent: r.parent,
            trace_id: r.trace_id,
            name: r.name.clone(),
            start_us: r.start.as_micros() as u64,
            wall_us: r.wall.as_micros() as u64,
            fields: r.fields.clone(),
        }
    }
}

/// Per-plan-node entry of the `--explain-analyze --json` document.
#[derive(serde::Serialize)]
struct NodeJson {
    id: usize,
    label: String,
    operator: String,
    inputs: Vec<usize>,
    samples_in: usize,
    regions_in: usize,
    samples_out: usize,
    regions_out: usize,
    bytes_out: usize,
    wall_us: u64,
    mem_charged: u64,
    mem_released: u64,
    cache_hits: u64,
    cache_misses: u64,
    fed_retries: u64,
    fed_timeouts: u64,
    scan_pruned: u64,
    scan_bytes_read: u64,
    scan_bytes_skipped: u64,
    scan_blocks_read: u64,
    scan_blocks_skipped: u64,
}

fn node_json(id: usize, inputs: Vec<usize>, m: &nggc::gmql::NodeMetrics) -> NodeJson {
    NodeJson {
        id,
        label: m.label.clone(),
        operator: m.operator.clone(),
        inputs,
        samples_in: m.samples_in,
        regions_in: m.regions_in,
        samples_out: m.samples_out,
        regions_out: m.regions_out,
        bytes_out: m.bytes_out,
        wall_us: m.wall.as_micros() as u64,
        mem_charged: m.mem_charged,
        mem_released: m.mem_released,
        cache_hits: m.cache_hits,
        cache_misses: m.cache_misses,
        fed_retries: m.fed_retries,
        fed_timeouts: m.fed_timeouts,
        scan_pruned: m.scan_pruned,
        scan_bytes_read: m.scan_bytes_read,
        scan_bytes_skipped: m.scan_bytes_skipped,
        scan_blocks_read: m.scan_blocks_read,
        scan_blocks_skipped: m.scan_blocks_skipped,
    }
}

#[derive(serde::Serialize)]
struct OutputJson {
    name: String,
    samples: usize,
    regions: usize,
}

#[derive(serde::Serialize)]
struct OptimizerJson {
    selects_fused: usize,
    nodes_deduplicated: usize,
}

#[derive(serde::Serialize)]
struct GovernorJson {
    charged_bytes: u64,
    peak_bytes: u64,
}

/// The `--explain-analyze --json` document.
#[derive(serde::Serialize)]
struct AnalyzeJson {
    query: String,
    elapsed_us: u64,
    optimizer: OptimizerJson,
    outputs: Vec<OutputJson>,
    nodes: Vec<NodeJson>,
    governor: GovernorJson,
}

/// One flight-recorder line (`docs/observability.md`).
#[derive(serde::Serialize)]
struct FlightRecordJson {
    kind: String,
    outcome: String,
    query: String,
    elapsed_us: u64,
    trace_id: u64,
    governor_charged_bytes: u64,
    governor_peak_bytes: u64,
    dropped_spans: u64,
    trace: Vec<SpanJson>,
    nodes: Vec<NodeJson>,
}

/// The per-node runtime annotation `--explain-analyze` appends to each
/// line of the rendered plan tree.
fn analyze_annotation(m: &nggc::gmql::NodeMetrics) -> String {
    let mut s = format!(
        "(rows {}→{} samples, {}→{} regions, {} B, {:.3} ms, mem +{}/-{} B, cache {}h/{}m",
        m.samples_in,
        m.samples_out,
        m.regions_in,
        m.regions_out,
        m.bytes_out,
        m.wall.as_secs_f64() * 1000.0,
        m.mem_charged,
        m.mem_released,
        m.cache_hits,
        m.cache_misses,
    );
    if m.fed_retries > 0 || m.fed_timeouts > 0 {
        s.push_str(&format!(", fed {}r/{}t", m.fed_retries, m.fed_timeouts));
    }
    if m.scan_pruned > 0 {
        s.push_str(&format!(
            ", scan {} B read/{} B skipped ({}/{} blocks)",
            m.scan_bytes_read,
            m.scan_bytes_skipped,
            m.scan_blocks_read,
            m.scan_blocks_read + m.scan_blocks_skipped,
        ));
    }
    s.push(')');
    s
}

/// Slow-query flight recorder configuration, from the environment:
/// `NGGC_SLOW_QUERY_MS` arms the elapsed-time trigger, and
/// `NGGC_FLIGHT_RECORDER` names the sink file (appended as JSON lines;
/// stderr when unset). Governor trips always trigger a dump once the
/// recorder is armed by either variable. Malformed values are errors,
/// same posture as [`GovernorLimits::from_env`].
struct FlightRecorder {
    threshold: Option<std::time::Duration>,
    sink: Option<PathBuf>,
}

impl FlightRecorder {
    fn from_env() -> Result<Option<FlightRecorder>, String> {
        let threshold = match std::env::var("NGGC_SLOW_QUERY_MS") {
            Ok(raw) => {
                let ms: u64 = raw.trim().parse().map_err(|_| {
                    format!("NGGC_SLOW_QUERY_MS: expected integer milliseconds, got {raw:?}")
                })?;
                Some(std::time::Duration::from_millis(ms))
            }
            Err(_) => None,
        };
        let sink = std::env::var("NGGC_FLIGHT_RECORDER").ok().map(PathBuf::from);
        if threshold.is_none() && sink.is_none() {
            return Ok(None);
        }
        Ok(Some(FlightRecorder { threshold, sink }))
    }

    fn should_record(&self, elapsed: std::time::Duration, tripped: bool) -> bool {
        tripped || self.threshold.is_some_and(|t| elapsed > t)
    }

    fn record(&self, doc: &FlightRecordJson) {
        let Ok(line) = serde_json::to_string(doc) else { return };
        match &self.sink {
            Some(path) => {
                use std::io::Write;
                let open = std::fs::OpenOptions::new().create(true).append(true).open(path);
                match open.and_then(|mut f| writeln!(f, "{line}")) {
                    Ok(()) => eprintln!(
                        "flight recorder: {} query recorded to {}",
                        doc.outcome,
                        path.display()
                    ),
                    Err(e) => eprintln!("flight recorder: {}: {e}", path.display()),
                }
            }
            None => eprintln!("{line}"),
        }
    }
}

/// Byte budget of the on-disk CLI result cache (`<repo>/result_cache`).
/// `NGGC_RESULT_CACHE_BYTES` overrides; `0` disables the cache.
fn result_store_bytes() -> u64 {
    std::env::var("NGGC_RESULT_CACHE_BYTES")
        .ok()
        .and_then(|raw| nggc::gmql::parse_bytes(&raw).ok())
        .unwrap_or(512 << 20)
}

fn cmd_query(repo_path: &Path, args: &[String]) -> Result<(), CliError> {
    let mut text = None;
    let mut save = false;
    let mut explain = false;
    let mut explain_analyze = false;
    let mut json = false;
    let mut analyze = false;
    let mut profile = false;
    let mut no_cache = false;
    let mut workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let mut head = 5usize;
    // Environment defaults, overridable by the flags below.
    let mut limits = GovernorLimits::from_env()?;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-e" => {
                i += 1;
                text =
                    Some(args.get(i).cloned().ok_or_else(|| "-e requires query text".to_owned())?);
            }
            "--save" => save = true,
            "--explain" => explain = true,
            "--explain-analyze" => explain_analyze = true,
            "--json" => json = true,
            "--analyze" => analyze = true,
            "--profile" => profile = true,
            "--no-cache" => no_cache = true,
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| "--workers requires a number".to_owned())?;
            }
            "--head" => {
                i += 1;
                head = args
                    .get(i)
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| "--head requires a number".to_owned())?;
            }
            "--timeout" => {
                i += 1;
                let raw = args.get(i).ok_or_else(|| "--timeout requires a duration".to_owned())?;
                limits.timeout =
                    Some(nggc::gmql::parse_duration(raw).map_err(|e| format!("--timeout: {e}"))?);
            }
            "--max-memory" => {
                i += 1;
                let raw = args.get(i).ok_or_else(|| "--max-memory requires a size".to_owned())?;
                limits.max_memory =
                    Some(nggc::gmql::parse_bytes(raw).map_err(|e| format!("--max-memory: {e}"))?);
            }
            file => {
                text = Some(std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?);
            }
        }
        i += 1;
    }
    let Some(query) = text else {
        return Err("query requires a file or -e TEXT".into());
    };
    if json && !explain_analyze {
        return Err("query: --json requires --explain-analyze".into());
    }

    let mut repo = open(repo_path)?;
    let ctx = nggc::engine::ExecContext::with_workers(workers);
    let mut opts = ExecOptions::default();

    if explain {
        let statements = nggc::gmql::parse(&query).map_err(|e| e.to_string())?;
        let plan = LogicalPlan::compile(&statements, &|name| repo.schema_of(name))
            .map_err(|e| e.to_string())?;
        let (optimized, report) = nggc::gmql::optimize(&plan);
        let none = |_| String::new();
        println!("-- logical plan --\n{}", plan.render_tree(&none));
        // Source nodes show what the scan-pruning pass will push down
        // into the container read: chromosomes, coordinate bound, and
        // decoded-vs-total column count.
        let specs = nggc::gmql::derive_scan_specs(&optimized);
        let scan_note = |id: usize| {
            let Some(spec) = specs.get(&id) else {
                return String::new();
            };
            let cols = match &optimized.nodes[id].op {
                nggc::gmql::PlanOp::Source(name) => repo.schema_of(name).map(|s| s.len()),
                _ => None,
            };
            format!("scan: {}", spec.render(cols))
        };
        println!("-- optimized ({report:?}) --\n{}", optimized.render_tree(&scan_note));
        return Ok(());
    }

    let recorder = FlightRecorder::from_env()?;

    // Collect every span emitted during execution — for `--profile`
    // rendering, and for the flight recorder when it is armed. One
    // bounded ring serves both; the whole run shares one trace id.
    let collector = if profile || recorder.is_some() {
        let c = std::sync::Arc::new(nggc::obs::MemorySubscriber::default());
        nggc::obs::add_subscriber(c.clone());
        Some(c)
    } else {
        None
    };
    let (trace_id, _trace_scope) = if collector.is_some() {
        let tc = nggc::obs::TraceContext::new();
        (tc.trace_id, Some(tc.enter()))
    } else {
        (0, None)
    };

    // The governor bounds the whole run: wall clock from here (parse
    // and compile spend the deadline too), memory from the first
    // materialised intermediate. Ctrl-C cancels through the same token.
    let governor = QueryGovernor::new(limits);
    sigint::watch(governor.cancel_token());

    let t0 = std::time::Instant::now();
    let statements = nggc::gmql::parse(&query).map_err(|e| e.to_string())?;
    let mut plan = LogicalPlan::compile(&statements, &|name| repo.schema_of(name))
        .map_err(|e| e.to_string())?;
    // The result cache keys on the fingerprint of the *optimized* plan;
    // modes that report per-node execution detail always run for real.
    let use_cache =
        !no_cache && !explain_analyze && !analyze && !profile && result_store_bytes() > 0;
    // EXPLAIN ANALYZE annotates the *optimized* plan, so optimize here
    // (instead of inside the executor) — `metrics[i]` then lines up
    // with `plan.nodes[i]` exactly. The cache needs the same
    // pre-optimization for its canonical fingerprint.
    let opt_report = if explain_analyze || use_cache {
        let (optimized, report) = nggc::gmql::optimize(&plan);
        opts.optimize = false;
        plan = optimized;
        Some(report)
    } else {
        None
    };

    // One-shot CLI queries share results across processes through an
    // on-disk store under the repository root, revalidated against the
    // source datasets' generation counters (docs/caching.md).
    type StorePlan = (nggc::repository::ResultStore, u64, Vec<(String, u64)>);
    let mut store_after: Option<StorePlan> = None;
    let mut cached_outputs = None;
    if use_cache {
        let store = nggc::repository::ResultStore::open(
            repo_path.join("result_cache"),
            result_store_bytes(),
        );
        let key = nggc::gmql::fingerprint(&plan).0;
        cached_outputs = store.lookup(key, &|name| repo.generation(name));
        if cached_outputs.is_none() {
            // Snapshot generations BEFORE executing: a dataset saved
            // mid-execution must invalidate this entry, not match it.
            let gens: Option<Vec<(String, u64)>> = nggc::gmql::source_datasets(&plan)
                .iter()
                .map(|name| repo.generation(name).map(|g| (name.clone(), g)))
                .collect();
            if let Some(gens) = gens {
                store_after = Some((store, key, gens));
            }
        }
    }
    let from_cache = cached_outputs.is_some();

    let (outputs, metrics) = if let Some(outputs) = cached_outputs {
        (outputs, Vec::new())
    } else {
        match nggc::gmql::execute_governed(
            &plan,
            &nggc::RepoProvider::governed(&repo, &governor),
            &ctx,
            &opts,
            Some(&governor),
        ) {
            Ok(out) => out,
            Err(e) if e.is_resource_limit() => {
                // Graceful trip: report partial progress, then exit with the
                // error's distinctive code.
                eprintln!("-- query interrupted: partial progress --");
                eprintln!("  elapsed              {:.2?}", t0.elapsed());
                eprintln!("  governed memory      {} B charged", governor.charged());
                eprintln!("  governed memory peak {} B", governor.mem_peak());
                let reg = nggc::obs::global();
                for counter in [
                    "nggc_query_cancelled_total",
                    "nggc_query_deadline_exceeded_total",
                    "nggc_query_mem_rejections_total",
                ] {
                    let v = reg.counter(counter).get();
                    if v > 0 {
                        eprintln!("  {counter} {v}");
                    }
                }
                // A governor trip always triggers the flight recorder: the
                // trace of the aborted run is exactly what post-hoc
                // diagnosis needs.
                if let Some(c) = &collector {
                    nggc::obs::clear_subscribers();
                    if let Some(rec) = &recorder {
                        let outcome = match &e {
                            GmqlError::DeadlineExceeded { .. } => "deadline",
                            GmqlError::Cancelled { .. } => "cancelled",
                            GmqlError::MemoryExhausted { .. } => "memory",
                            _ => "tripped",
                        };
                        rec.record(&FlightRecordJson {
                            kind: "nggc_flight_record".to_owned(),
                            outcome: outcome.to_owned(),
                            query: query.clone(),
                            elapsed_us: t0.elapsed().as_micros() as u64,
                            trace_id,
                            governor_charged_bytes: governor.charged(),
                            governor_peak_bytes: governor.mem_peak(),
                            dropped_spans: c.dropped(),
                            trace: c.records().iter().map(SpanJson::from).collect(),
                            nodes: Vec::new(),
                        });
                    }
                }
                return Err(e.into());
            }
            Err(e) => return Err(e.to_string().into()),
        }
    };
    let elapsed = t0.elapsed();
    // Persist the freshly computed result for the next invocation. Skipped
    // when any source generation was unknown (pre-generation catalogs).
    if let Some((store, key, gens)) = &store_after {
        store.store(*key, gens, &outputs).map_err(|e| e.to_string())?;
    }
    // Stop collecting before rendering; everything below is reporting.
    if collector.is_some() {
        nggc::obs::clear_subscribers();
    }
    if let (Some(rec), Some(c)) = (&recorder, &collector) {
        if rec.should_record(elapsed, false) {
            rec.record(&FlightRecordJson {
                kind: "nggc_flight_record".to_owned(),
                outcome: "slow".to_owned(),
                query: query.clone(),
                elapsed_us: elapsed.as_micros() as u64,
                trace_id,
                governor_charged_bytes: governor.charged(),
                governor_peak_bytes: governor.mem_peak(),
                dropped_spans: c.dropped(),
                trace: c.records().iter().map(SpanJson::from).collect(),
                nodes: metrics
                    .iter()
                    .enumerate()
                    .map(|(i, m)| node_json(i, plan.nodes[i].inputs.clone(), m))
                    .collect(),
            });
        }
    }
    if explain_analyze {
        let report = opt_report.unwrap_or_default();
        if json {
            let mut names: Vec<&String> = outputs.keys().collect();
            names.sort();
            let doc = AnalyzeJson {
                query: query.clone(),
                elapsed_us: elapsed.as_micros() as u64,
                optimizer: OptimizerJson {
                    selects_fused: report.selects_fused,
                    nodes_deduplicated: report.nodes_deduplicated,
                },
                outputs: names
                    .iter()
                    .map(|n| OutputJson {
                        name: (*n).clone(),
                        samples: outputs[*n].sample_count(),
                        regions: outputs[*n].region_count(),
                    })
                    .collect(),
                nodes: metrics
                    .iter()
                    .enumerate()
                    .map(|(i, m)| node_json(i, plan.nodes[i].inputs.clone(), m))
                    .collect(),
                governor: GovernorJson {
                    charged_bytes: governor.charged(),
                    peak_bytes: governor.mem_peak(),
                },
            };
            println!("{}", serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?);
        } else {
            println!("-- explain analyze ({report:?}) --");
            print!("{}", plan.render_tree(&|id| analyze_annotation(&metrics[id])));
            println!("-- total: {elapsed:.2?} --");
        }
    }
    if analyze {
        println!("-- execution metrics --");
        for m in &metrics {
            println!("  {m}");
        }
    }
    if profile {
        if let Some(collector) = &collector {
            let records = collector.records();
            println!("-- profile: span tree --");
            print!("{}", nggc::obs::render_span_tree(&records));
            println!("-- profile: top operators by self time --");
            print!("{}", nggc::obs::render_top_k(&records, Some("op"), 10));
            if collector.dropped() > 0 {
                println!("-- profile: {} spans dropped (ring full) --", collector.dropped());
            }
        }
    }

    if !json {
        let mut names: Vec<&String> = outputs.keys().collect();
        names.sort();
        for name in names {
            let ds = &outputs[name];
            println!("== {name} :: {} ==", ds.schema);
            println!("{}", ds.stats());
            for s in ds.samples.iter().take(head) {
                println!("  sample {} ({} regions)", s.name, s.region_count());
                for r in s.regions.iter().take(head) {
                    println!("    {r}");
                }
                if s.region_count() > head {
                    println!("    … {} more", s.region_count() - head);
                }
            }
            if ds.sample_count() > head {
                println!("  … {} more samples", ds.sample_count() - head);
            }
        }
        if from_cache {
            println!("({elapsed:.2?}, cached)");
        } else {
            println!("({elapsed:.2?})");
        }
    }

    if save {
        for ds in outputs.values() {
            repo.save(ds).map_err(|e| e.to_string())?;
            // Keep stdout machine-readable under --json.
            if json {
                eprintln!("saved {} to repository", ds.name);
            } else {
                println!("saved {} to repository", ds.name);
            }
        }
    }
    Ok(())
}

/// `nggc stats [--json] [-e QUERY] [--fed-selftest]` — dump the global
/// metrics registry.
///
/// Each CLI invocation is its own process, so the registry only holds
/// what this invocation did; `-e QUERY` runs a query first (against the
/// repository, discarding outputs) so the dump reflects real engine
/// activity. `--fed-selftest` runs an in-process three-node federation
/// with one flaky and one hung peer so the fault-tolerance metrics
/// (`nggc_fed_retries_total`, `nggc_fed_timeouts_total`, breaker
/// gauges) show up in the dump with real values.
fn cmd_stats(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut query = None;
    let mut fed_selftest = false;
    let mut profile = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--fed-selftest" => fed_selftest = true,
            "--profile" => profile = true,
            "-e" => {
                i += 1;
                query =
                    Some(args.get(i).cloned().ok_or_else(|| "-e requires query text".to_owned())?);
            }
            other => return Err(format!("stats: unexpected argument {other:?}")),
        }
        i += 1;
    }
    // Under --profile the self-test and any -e query run inside one
    // trace; remote-node spans shipped back by the federation layer are
    // stitched into the same tree (see docs/observability.md).
    let collector = if profile {
        let c = std::sync::Arc::new(nggc::obs::MemorySubscriber::default());
        nggc::obs::add_subscriber(c.clone());
        Some(c)
    } else {
        None
    };
    let _trace_scope = collector.as_ref().map(|_| nggc::obs::TraceContext::new().enter());
    // One-line repo health summary (stderr keeps `--json` stdout
    // machine-readable); only for an existing repository — `stats`
    // must not create one as a side effect.
    if repo_path.exists() {
        if let Ok(repo) = Repository::open(repo_path) {
            eprintln!("repo health: {}", repo.health());
        }
    }
    if fed_selftest {
        run_fed_selftest()?;
    }
    if let Some(query) = query {
        let repo = open(repo_path)?;
        let ctx = nggc::engine::ExecContext::with_workers(
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
        );
        let statements = nggc::gmql::parse(&query).map_err(|e| e.to_string())?;
        let plan = LogicalPlan::compile(&statements, &|name| repo.schema_of(name))
            .map_err(|e| e.to_string())?;
        nggc::gmql::execute(&plan, &nggc::RepoProvider::new(&repo), &ctx, &ExecOptions::default())
            .map_err(|e| e.to_string())?;
    }
    if let Some(collector) = &collector {
        nggc::obs::clear_subscribers();
        let records = collector.records();
        if !records.is_empty() {
            // stderr keeps `--json` stdout machine-readable.
            eprintln!("-- profile: stitched span tree --");
            eprint!("{}", nggc::obs::render_span_tree(&records));
        }
    }
    let reg = nggc::obs::global();
    if json {
        println!("{}", reg.render_json());
    } else {
        print!("{}", reg.render_prometheus());
    }
    Ok(())
}

/// Exercise the federation fault-tolerance machinery against synthetic
/// in-process peers: "alpha" is healthy and owns the bulk of the data,
/// "flaky" drops its first response (recovers on retry), and "hung"
/// never answers within the deadline. The degraded execution must still
/// complete, and every retry/timeout/breaker transition lands in the
/// global registry for the dump that follows.
fn run_fed_selftest() -> Result<(), String> {
    use nggc::federation::{CallPolicy, ChaosConfig, ChaosNode, Federation, FederationNode};
    use nggc::gdm::{Attribute, GRegion, Metadata, Schema, Strand, ValueType};
    use std::time::Duration;

    fn dataset(name: &str, samples: usize, regions_per_sample: usize) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        for i in 0..samples {
            let regions = (0..regions_per_sample)
                .map(|j| {
                    GRegion::new(
                        "chr1",
                        (j * 500) as u64,
                        (j * 500 + 100) as u64,
                        Strand::Unstranded,
                    )
                    .with_values(vec![0.01.into()])
                })
                .collect();
            ds.add_sample(
                Sample::new(format!("s{i}"), name)
                    .with_regions(regions)
                    .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
            )
            .unwrap();
        }
        ds
    }

    let policy = CallPolicy {
        deadline: Duration::from_millis(30),
        max_retries: 2,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        jitter_seed: 1,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
    };
    let mut fed = Federation::with_policy(policy);

    let mut alpha = FederationNode::new("alpha", 2);
    alpha.own(dataset("BULK", 4, 40));
    fed.add_node(alpha);

    let mut flaky = FederationNode::new("flaky", 2);
    flaky.own(dataset("SMALL", 1, 4));
    fed.add_node(ChaosNode::new(flaky, ChaosConfig::flaky(1)));

    let mut hung = FederationNode::new("hung", 2);
    hung.own(dataset("ELSEWHERE", 1, 4));
    fed.add_node(ChaosNode::new(hung, ChaosConfig::hung(Duration::from_millis(120))));

    let query = "R = MAP(n AS COUNT) SMALL BULK;\nMATERIALIZE R;";
    let outcome = fed.execute_distributed_degraded(query, 32 * 1024).map_err(|e| e.to_string())?;
    println!("fed-selftest: host={} shipped={:?}", outcome.plan.host, outcome.plan.shipped);
    for h in &outcome.health {
        println!(
            "fed-selftest: node={} status={:?} breaker={:?} retries={}{}",
            h.node,
            h.status,
            h.breaker,
            h.retries,
            h.error.as_deref().map(|e| format!(" error={e:?}")).unwrap_or_default()
        );
    }
    for (name, ds) in &outcome.outputs {
        println!(
            "fed-selftest: output {name}: {} samples, {} regions",
            ds.sample_count(),
            ds.region_count()
        );
    }
    Ok(())
}

fn cmd_search(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let ontology_mode = args.iter().any(|a| a == "--ontology");
    let keywords: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if keywords.is_empty() {
        return Err("search requires keywords".into());
    }
    let query = keywords.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" ");
    let repo = open(repo_path)?;
    let index = repo.meta_index().map_err(|e| e.to_string())?;
    let onto = mini_umls();
    let search = MetadataSearch::new(&index, Some(&onto));
    let mode = if ontology_mode { RankMode::Expanded } else { RankMode::TfIdf };
    let hits = search.search(&query, mode);
    if hits.is_empty() {
        println!("no samples match {query:?}");
        return Ok(());
    }
    for hit in hits.iter().take(20) {
        println!("{:.3}  {}/{}", hit.score, hit.sample.dataset, hit.sample.sample);
    }
    Ok(())
}

fn cmd_export(repo_path: &Path, args: &[String]) -> Result<(), String> {
    let (Some(name), Some(out)) = (args.first(), args.get(1)) else {
        return Err("export requires DATASET and OUTPUT.bed".into());
    };
    let repo = open(repo_path)?;
    let ds = repo.load(name).map_err(|e| e.to_string())?;
    // BED export for genome browsers (§4.3: "visualize results on genome
    // browsers"): coordinates only; attribute values go to the name
    // column rendering.
    let mut text = String::new();
    for s in &ds.samples {
        text.push_str(&format!("track name=\"{}\" description=\"nggc export\"\n", s.name));
        text.push_str(&write_bed(&s.regions, &BedOptions::bed3()));
    }
    std::fs::write(out, text).map_err(|e| format!("{out}: {e}"))?;
    println!("exported {} regions to {out}", ds.region_count());
    Ok(())
}

/// `nggc serve` — run the concurrent multi-client query service
/// (docs/serving.md). Blocks until SIGINT/SIGTERM, then drains
/// in-flight queries and exits 0.
fn cmd_serve(repo_path: &Path, args: &[String]) -> Result<(), String> {
    use nggc::server::{ServeConfig, Server};

    let mut addr = "127.0.0.1:7781".to_owned();
    // Environment arms the flight recorder; flags override the rest.
    let mut config = ServeConfig::from_env()?;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().ok_or("--addr requires HOST:PORT")?;
            }
            "--workers" => {
                i += 1;
                config.workers = args
                    .get(i)
                    .and_then(|w| w.parse().ok())
                    .ok_or("--workers requires a number")?;
            }
            "--max-inflight" => {
                i += 1;
                config.max_inflight = args
                    .get(i)
                    .and_then(|w| w.parse().ok())
                    .ok_or("--max-inflight requires a number")?;
            }
            "--queue" => {
                i += 1;
                config.max_queue =
                    args.get(i).and_then(|w| w.parse().ok()).ok_or("--queue requires a number")?;
            }
            "--mem-pool" => {
                i += 1;
                let raw = args.get(i).ok_or("--mem-pool requires a size")?;
                config.mem_pool_bytes =
                    nggc::gmql::parse_bytes(raw).map_err(|e| format!("--mem-pool: {e}"))?;
            }
            "--timeout" => {
                i += 1;
                let raw = args.get(i).ok_or("--timeout requires a duration")?;
                config.default_timeout =
                    Some(nggc::gmql::parse_duration(raw).map_err(|e| format!("--timeout: {e}"))?);
            }
            "--drain-timeout" => {
                i += 1;
                let raw = args.get(i).ok_or("--drain-timeout requires a duration")?;
                config.drain_timeout =
                    nggc::gmql::parse_duration(raw).map_err(|e| format!("--drain-timeout: {e}"))?;
            }
            "--result-cache" => {
                i += 1;
                let raw = args.get(i).ok_or("--result-cache requires a size (0 disables)")?;
                config.result_cache_bytes =
                    nggc::gmql::parse_bytes(raw).map_err(|e| format!("--result-cache: {e}"))?;
            }
            other => return Err(format!("serve: unknown flag {other:?}")),
        }
        i += 1;
    }
    let repo = open(repo_path)?;
    let datasets = repo.list().len();
    // stderr: the stdout banner below stays machine-parseable (tests
    // and scripts read the bound address from stdout's first line).
    eprintln!("repo health: {}", repo.health());
    let server = Server::bind(&addr, repo, config).map_err(|e| format!("bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    let handle = server.handle();
    sigint::watch_shutdown(move || handle.shutdown());
    // Machine-parseable banner: tests and scripts read the bound
    // address (which resolves `:0`) from this line.
    println!("listening on {bound}");
    println!("serving {datasets} datasets from {}", repo_path.display());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run().map_err(|e| e.to_string())?;
    println!("drained; bye");
    Ok(())
}

/// Exit code for retryable capacity rejections (EX_TEMPFAIL).
const EXIT_RETRYABLE: u8 = 75;

/// `nggc client` — one-shot client for a running `nggc serve`.
fn cmd_client(args: &[String]) -> Result<(), CliError> {
    use nggc::server::{Client, ServeErrorKind, ServerReply};

    let mut addr = "127.0.0.1:7781".to_owned();
    let mut text: Option<String> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut max_memory: Option<u64> = None;
    let mut head = 5usize;
    let mut ping = false;
    let mut stats = false;
    let mut no_cache = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().ok_or("--addr requires HOST:PORT")?;
            }
            "-e" => {
                i += 1;
                text = Some(args.get(i).cloned().ok_or("-e requires query text")?);
            }
            "--timeout" => {
                i += 1;
                let raw = args.get(i).ok_or("--timeout requires a duration")?;
                let d = nggc::gmql::parse_duration(raw).map_err(|e| format!("--timeout: {e}"))?;
                timeout_ms = Some(d.as_millis() as u64);
            }
            "--max-memory" => {
                i += 1;
                let raw = args.get(i).ok_or("--max-memory requires a size")?;
                max_memory =
                    Some(nggc::gmql::parse_bytes(raw).map_err(|e| format!("--max-memory: {e}"))?);
            }
            "--head" => {
                i += 1;
                head =
                    args.get(i).and_then(|w| w.parse().ok()).ok_or("--head requires a number")?;
            }
            "--ping" => ping = true,
            "--stats" => stats = true,
            "--no-cache" => no_cache = true,
            file => {
                text = Some(std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?);
            }
        }
        i += 1;
    }
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let reply = if ping {
        client.ping()
    } else if stats {
        client.stats()
    } else {
        let Some(query) = text else {
            return Err("client requires -e TEXT, a query file, --ping, or --stats".into());
        };
        client.query_full(&query, timeout_ms, max_memory, head, no_cache)
    }
    .map_err(|e| format!("{addr}: {e}"))?;
    match reply {
        ServerReply::Result { trace_id, elapsed_us, outputs, cached } => {
            for out in &outputs {
                println!("== {} :: {} samples, {} regions ==", out.name, out.samples, out.regions);
                for row in &out.head {
                    println!("  {row}");
                }
            }
            println!(
                "({:.2?}, trace {trace_id:016x}{})",
                std::time::Duration::from_micros(elapsed_us),
                if cached { ", cached" } else { "" }
            );
            Ok(())
        }
        ServerReply::Error { kind, message, retry_after_ms } => {
            let code = match kind {
                ServeErrorKind::DeadlineExceeded => EXIT_DEADLINE,
                ServeErrorKind::Cancelled => EXIT_CANCELLED,
                ServeErrorKind::MemoryExhausted => EXIT_MEMORY,
                ServeErrorKind::Rejected
                | ServeErrorKind::PoolExhausted
                | ServeErrorKind::ShuttingDown => EXIT_RETRYABLE,
                _ => 1,
            };
            let mut message = format!("{kind:?}: {message}");
            if let Some(ms) = retry_after_ms {
                message.push_str(&format!(" (retry after {ms} ms)"));
            }
            Err(CliError { message, code })
        }
        ServerReply::Pong { inflight, queued } => {
            println!("pong: {inflight} in flight, {queued} queued");
            Ok(())
        }
        ServerReply::Stats(s) => {
            println!("inflight      {}", s.inflight);
            println!("queued        {}", s.queued);
            println!("requests      {}", s.requests);
            println!("rejected      {}", s.rejected);
            println!("mem_reserved  {} / {} B", s.mem_reserved, s.mem_capacity);
            println!("result_cache_hits          {}", s.result_cache_hits);
            println!("result_cache_misses        {}", s.result_cache_misses);
            println!("result_cache_coalesced     {}", s.result_cache_coalesced);
            println!("result_cache_evictions     {}", s.result_cache_evictions);
            println!("result_cache_invalidations {}", s.result_cache_invalidations);
            println!("result_cache_entries       {}", s.result_cache_entries);
            println!(
                "result_cache_bytes         {} / {} B",
                s.result_cache_bytes, s.result_cache_capacity
            );
            Ok(())
        }
    }
}
