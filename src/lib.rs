//! # `nggc` — Next-Generation Genomic Computing
//!
//! A Rust implementation of the data-management stack proposed in
//! *"Data Management for Next Generation Genomic Computing"*
//! (S. Ceri, A. Kaitoua, M. Masseroli, P. Pinoli, F. Venco — EDBT 2016):
//! the **GDM** data model, the **GMQL** query language, a hand-built
//! parallel execution engine, and the paper's §4 vision services
//! (analysis bridge, repositories, ontology mediation, federation,
//! search, Internet of Genomes).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`gdm`] | `nggc-gdm` | §2 data model |
//! | [`formats`] | `nggc-formats` | §1–2 interoperability |
//! | [`engine`] | `nggc-engine` | §4.2 parallel runtime |
//! | [`gmql`] | `nggc-core` | §2 query language |
//! | [`repository`] | `nggc-repository` | §4.3 curated repositories |
//! | [`ontology`] | `nggc-ontology` | §4.3 ontological mediation |
//! | [`search`] | `nggc-search` | §4.5 search + Internet of Genomes |
//! | [`federation`] | `nggc-federation` | §4.4 federated processing |
//! | [`analysis`] | `nggc-analysis` | §4.1 genome spaces & networks |
//! | [`synth`] | `nggc-synth` | synthetic workloads (substitutions) |
//! | [`obs`] | `nggc-obs` | metrics, tracing, profiling (docs/observability.md) |
//!
//! ## Quickstart
//!
//! ```
//! use nggc::gdm::*;
//! use nggc::gmql::GmqlEngine;
//!
//! // Build the paper's Figure-2 PEAKS dataset.
//! let schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
//! let mut peaks = Dataset::new("PEAKS", schema);
//! peaks.add_sample(
//!     Sample::new("sample_1", "PEAKS")
//!         .with_regions(vec![
//!             GRegion::new("chr1", 2940, 3400, Strand::Pos).with_values(vec![0.0001.into()]),
//!         ])
//!         .with_metadata(Metadata::from_pairs([("karyotype", "cancer")])),
//! ).unwrap();
//!
//! // Run GMQL over it.
//! let mut engine = GmqlEngine::with_workers(2);
//! engine.register(peaks);
//! let out = engine.run("R = SELECT(karyotype == 'cancer') PEAKS; MATERIALIZE R;").unwrap();
//! assert_eq!(out["R"].sample_count(), 1);
//! ```

use std::sync::Arc;

pub use nggc_analysis as analysis;
pub use nggc_core as gmql;
pub use nggc_engine as engine;
pub use nggc_federation as federation;
pub use nggc_formats as formats;
pub use nggc_gdm as gdm;
pub use nggc_obs as obs;
pub use nggc_ontology as ontology;
pub use nggc_repository as repository;
pub use nggc_search as search;
pub use nggc_server as server;
pub use nggc_synth as synth;

/// GMQL source provider backed by a [`repository::Repository`].
///
/// `Repository::load` hands out `Arc<Dataset>` from its LRU cache;
/// this adapter forwards that shared pointer through
/// [`gmql::DatasetProvider::load_shared`], so a query over a warm
/// repository never deep-copies its source datasets.
///
/// With [`RepoProvider::governed`] the adapter also enforces a
/// [`gmql::QueryGovernor`]: every load first passes a cancel/deadline
/// checkpoint, and when the governor carries a memory budget the
/// repository's catalog estimate is checked **before** any region data
/// is read ([`repository::Repository::load_bounded`]), so an oversized
/// source dataset is refused without allocating.
pub struct RepoProvider<'a> {
    repo: &'a repository::Repository,
    governor: Option<gmql::QueryGovernor>,
}

impl<'a> RepoProvider<'a> {
    /// Wrap a repository for use as a query source provider.
    pub fn new(repo: &'a repository::Repository) -> Self {
        RepoProvider { repo, governor: None }
    }

    /// Wrap a repository so loads honor `governor`'s cancellation,
    /// deadline, and memory budget.
    pub fn governed(repo: &'a repository::Repository, governor: &gmql::QueryGovernor) -> Self {
        RepoProvider { repo, governor: Some(governor.clone()) }
    }
}

impl gmql::DatasetProvider for RepoProvider<'_> {
    fn load(&self, name: &str) -> Result<gdm::Dataset, gmql::GmqlError> {
        self.load_shared(name).map(|d| (*d).clone())
    }

    fn load_shared(&self, name: &str) -> Result<Arc<gdm::Dataset>, gmql::GmqlError> {
        let node = || format!("LOAD {name}");
        if let Some(g) = &self.governor {
            g.check(&node())?;
            if let Some(budget) = g.remaining_memory() {
                return match self.repo.load_bounded(name, budget) {
                    Ok(d) => Ok(d),
                    Err(repository::RepoError::Budget { estimated, .. }) => {
                        Err(g.refuse_allocation(&node(), estimated))
                    }
                    Err(e) => Err(gmql::GmqlError::runtime(e.to_string())),
                };
            }
        }
        self.repo.load(name).map_err(|e| gmql::GmqlError::runtime(e.to_string()))
    }

    fn load_pruned(
        &self,
        name: &str,
        spec: &gmql::ScanSpec,
    ) -> Result<Arc<gdm::Dataset>, gmql::GmqlError> {
        let node = || format!("LOAD {name}");
        let opts = formats::native_v2::ScanOptions {
            chroms: spec.chroms.clone(),
            columns: spec.columns.clone(),
        };
        if let Some(g) = &self.governor {
            g.check(&node())?;
            if let Some(budget) = g.remaining_memory() {
                // The catalog estimate covers the full dataset; a pruned
                // load reads at most that, so the full-size check keeps
                // the same conservative budget discipline as `load`.
                if let Some(entry) = self.repo.entry(name) {
                    let estimated = entry.stats.bytes as u64;
                    if estimated > budget {
                        return Err(g.refuse_allocation(&node(), estimated));
                    }
                }
            }
        }
        self.repo.load_pruned(name, &opts).map_err(|e| gmql::GmqlError::runtime(e.to_string()))
    }
}
