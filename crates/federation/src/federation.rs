//! The federation coordinator.
//!
//! Nodes run on their own threads and communicate exclusively through
//! protocol messages over channels — the in-process stand-in for the
//! networked federation of §4.4 (DESIGN.md substitution table). The
//! coordinator implements both execution strategies that experiment E7
//! compares:
//!
//! * **ship-query** ([`Federation::ship_query`]) — "this paradigm allows
//!   for distributing the processing to data, transferring only query
//!   results which are usually small in size";
//! * **ship-data** ([`Federation::ship_data`]) — today's practice the
//!   paper argues against: "most of today's implementations requires
//!   first a full data transmission and then to evaluate server-side
//!   imperative programs".

use crate::node::{decode_staged, NodeService};
use crate::policy::{Breaker, BreakerState, CallPolicy, NodeHealth, NodeStatus};
use crate::protocol::{
    DatasetSummary, Request, Response, SizeEstimate, TraceHeader, TransferLog, WireSpan,
};
use crossbeam_channel::{unbounded, RecvTimeoutError, Sender};
use nggc_core::{GmqlEngine, QueryGovernor};
use nggc_gdm::Dataset;
use std::collections::HashMap;
use std::sync::Mutex;
use std::thread::JoinHandle;

// Channel message to a node thread: the request, the coordinator's
// trace context (when a trace is being recorded), and the reply channel
// — responses piggyback the spans the node captured while serving.
type Envelope = (Request, Option<TraceHeader>, Sender<(Response, Vec<WireSpan>)>);

struct NodeHandle {
    id: String,
    tx: Sender<Envelope>,
    join: Option<JoinHandle<()>>,
}

/// A federation of nodes plus a coordinating client.
///
/// Every exchange goes through [`Federation::call`], which enforces the
/// [`CallPolicy`]: a per-request deadline, bounded retries with
/// deterministic backoff for idempotent request kinds, and a per-node
/// circuit breaker with half-open probing. Degraded-mode entry points
/// ([`discover_degraded`](Federation::discover_degraded),
/// [`execute_distributed_degraded`](Federation::execute_distributed_degraded))
/// keep going when a minority of nodes is down and report per-node
/// [`NodeHealth`] instead of failing the whole federation.
pub struct Federation {
    nodes: Vec<NodeHandle>,
    policy: CallPolicy,
    breakers: Mutex<HashMap<String, Breaker>>,
}

/// Error type of federation calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// No node with the given id.
    UnknownNode(String),
    /// The node answered with a protocol error.
    Remote(String),
    /// The node thread is gone.
    NodeDown(String),
    /// Unexpected response variant.
    Protocol(String),
    /// The node failed to answer within the policy deadline.
    Timeout(String),
    /// The node's circuit breaker is open; the call was rejected locally
    /// without touching the node.
    CircuitOpen(String),
    /// The local query governor tripped (cancellation, deadline, or
    /// memory budget) while the federated conversation was in flight;
    /// the message is the governor's typed error rendered as text.
    Interrupted(String),
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            FederationError::Remote(e) => write!(f, "remote error: {e}"),
            FederationError::NodeDown(n) => write!(f, "node {n:?} is down"),
            FederationError::Protocol(e) => write!(f, "protocol violation: {e}"),
            FederationError::Timeout(n) => write!(f, "node {n:?} timed out"),
            FederationError::CircuitOpen(n) => write!(f, "node {n:?} circuit breaker is open"),
            FederationError::Interrupted(e) => write!(f, "query interrupted: {e}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl FederationError {
    /// Transport-level failures count against the node's breaker and are
    /// retryable (for idempotent requests); application/protocol errors
    /// are deterministic and propagate immediately.
    fn is_transport(&self) -> bool {
        matches!(self, FederationError::Timeout(_) | FederationError::NodeDown(_))
    }
}

impl Federation {
    /// Empty federation with the default [`CallPolicy`].
    pub fn new() -> Federation {
        Federation::with_policy(CallPolicy::default())
    }

    /// Empty federation with an explicit fault-tolerance policy.
    pub fn with_policy(policy: CallPolicy) -> Federation {
        Federation { nodes: Vec::new(), policy, breakers: Mutex::new(HashMap::new()) }
    }

    /// Replace the fault-tolerance policy.
    pub fn set_policy(&mut self, policy: CallPolicy) {
        self.policy = policy;
    }

    /// The active fault-tolerance policy.
    pub fn policy(&self) -> &CallPolicy {
        &self.policy
    }

    /// Add a node; it starts serving requests on its own thread. Accepts
    /// any [`NodeService`] — a real [`FederationNode`](crate::FederationNode)
    /// or a fault-injecting [`ChaosNode`](crate::ChaosNode).
    pub fn add_node(&mut self, mut node: impl NodeService + 'static) {
        let id = node.id().to_owned();
        let (tx, rx) = unbounded::<Envelope>();
        let join = std::thread::Builder::new()
            .name(format!("nggc-fed-{id}"))
            .spawn(move || {
                // Withheld replies (`serve` returned `None`) keep their
                // sender alive until shutdown: the caller must observe
                // silence — a lost response whose deadline fires — not a
                // visibly closed connection.
                let mut withheld = Vec::new();
                while let Ok((req, trace, reply)) = rx.recv() {
                    // With a trace header present, serve under the
                    // coordinator's context and capture this node's
                    // spans locally (they must not reach the
                    // coordinator's subscribers directly — that would
                    // double-count once they are shipped back and
                    // re-emitted). The `node.serve` envelope span
                    // guarantees even metadata-only requests yield at
                    // least one span for stitching.
                    let (resp, spans) = match trace {
                        Some(h) => {
                            let ctx =
                                nggc_obs::TraceContext::with_id(h.trace_id).child_of(h.parent_span);
                            let (resp, recs) = nggc_obs::collect_local(ctx, || {
                                let mut s = nggc_obs::span("node.serve");
                                s.field("kind", req.kind());
                                node.serve(&req)
                            });
                            (resp, recs.iter().map(WireSpan::from).collect())
                        }
                        None => (node.serve(&req), Vec::new()),
                    };
                    match resp {
                        Some(resp) => {
                            let _ = reply.send((resp, spans));
                        }
                        None => withheld.push(reply),
                    }
                }
            })
            .expect("failed to spawn node thread");
        self.nodes.push(NodeHandle { id, tx, join: Some(join) });
    }

    /// Node ids.
    pub fn node_ids(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.id.as_str()).collect()
    }

    /// Current breaker state for a node (`Closed` if never called). An
    /// open breaker reads as `Open` until the next admitted call probes
    /// it, even after the cooldown has elapsed.
    pub fn breaker_state(&self, node_id: &str) -> BreakerState {
        let mut breakers = self.breakers.lock().unwrap();
        breakers.entry(node_id.to_owned()).or_default().state()
    }

    /// Check breaker admission for a call, exporting the state gauge.
    fn breaker_admit(&self, node_id: &str) -> bool {
        let mut breakers = self.breakers.lock().unwrap();
        let b = breakers.entry(node_id.to_owned()).or_default();
        let admitted = b.admit(&self.policy);
        let state = b.state();
        drop(breakers);
        Self::export_breaker_state(node_id, state);
        admitted
    }

    fn breaker_success(&self, node_id: &str) {
        let mut breakers = self.breakers.lock().unwrap();
        let b = breakers.entry(node_id.to_owned()).or_default();
        b.on_success();
        let state = b.state();
        drop(breakers);
        Self::export_breaker_state(node_id, state);
    }

    fn breaker_failure(&self, node_id: &str) {
        let mut breakers = self.breakers.lock().unwrap();
        let b = breakers.entry(node_id.to_owned()).or_default();
        let opened = b.on_transport_failure(&self.policy);
        let state = b.state();
        drop(breakers);
        if opened {
            nggc_obs::global()
                .counter_with("nggc_fed_breaker_opens_total", &[("node", node_id)])
                .inc();
        }
        Self::export_breaker_state(node_id, state);
    }

    fn export_breaker_state(node_id: &str, state: BreakerState) {
        nggc_obs::global()
            .gauge_with("nggc_fed_breaker_state", &[("node", node_id)])
            .set(state.as_gauge());
    }

    /// One request/response exchange with a node under the federation's
    /// [`CallPolicy`]: deadline via `recv_timeout`, bounded retries with
    /// deterministic backoff for idempotent request kinds, per-node
    /// circuit breaker. Recorded in `log` and in the `nggc_fed_*`
    /// metrics (request/byte/failure counters, latency histogram,
    /// retry/timeout counters, breaker gauges).
    pub fn call(
        &self,
        node_id: &str,
        request: Request,
        log: &mut TransferLog,
    ) -> Result<Response, FederationError> {
        self.call_with_policy(node_id, request, log, &self.policy)
    }

    /// [`Federation::call`] under an explicit policy — the governed
    /// entry points clamp the federation policy to a query's remaining
    /// wall time and route their calls through here. Breaker bookkeeping
    /// (threshold, cooldown) always follows the federation's own policy;
    /// only the per-call spend (deadline, retries, backoff) varies.
    fn call_with_policy(
        &self,
        node_id: &str,
        request: Request,
        log: &mut TransferLog,
        policy: &CallPolicy,
    ) -> Result<Response, FederationError> {
        let reg = nggc_obs::global();
        let kind = request.kind();
        let fail = |reason: &str| {
            reg.counter_with("nggc_fed_failures_total", &[("node", node_id), ("reason", reason)])
                .inc();
        };
        let node = self.nodes.iter().find(|n| n.id == node_id).ok_or_else(|| {
            fail("unknown_node");
            FederationError::UnknownNode(node_id.to_owned())
        })?;
        if !self.breaker_admit(node_id) {
            fail("circuit_open");
            return Err(FederationError::CircuitOpen(node_id.to_owned()));
        }
        // The coordinator-side anchor for this exchange. When a trace is
        // being recorded, its id travels to the node as a TraceHeader so
        // the node's spans come back parented under it — rendering one
        // stitched tree across the process boundary.
        let mut call_span = nggc_obs::span("fed.call");
        call_span.field("node", node_id).field("kind", kind);
        let trace = call_span
            .id()
            .map(|id| TraceHeader { trace_id: nggc_obs::current_trace_id(), parent_span: id });
        let retry_budget = if request.is_idempotent() { policy.max_retries } else { 0 };
        let mut attempt = 0usize;
        loop {
            reg.counter_with("nggc_fed_requests_total", &[("node", node_id), ("kind", kind)]).inc();
            let t0 = std::time::Instant::now();
            let (reply_tx, reply_rx) = unbounded();
            let outcome: Result<(Response, Vec<WireSpan>), FederationError> =
                if node.tx.send((request.clone(), trace, reply_tx)).is_err() {
                    Err(FederationError::NodeDown(node_id.to_owned()))
                } else {
                    match reply_rx.recv_timeout(policy.deadline) {
                        Ok(resp) => Ok(resp),
                        Err(RecvTimeoutError::Timeout) => {
                            reg.counter_with("nggc_fed_timeouts_total", &[("node", node_id)]).inc();
                            Err(FederationError::Timeout(node_id.to_owned()))
                        }
                        Err(RecvTimeoutError::Disconnected) => {
                            Err(FederationError::NodeDown(node_id.to_owned()))
                        }
                    }
                };
            match outcome {
                Ok((response, spans)) => {
                    reg.histogram_with("nggc_fed_request_ns", &[("node", node_id)])
                        .record_duration(t0.elapsed());
                    log.record(&request, &response);
                    // Stitch the node's spans into the coordinator's
                    // trace, tagging each with its origin node. A node
                    // that shipped nothing (e.g. one that answered after
                    // its reply channel was abandoned) simply leaves a
                    // childless fed.call span — degraded outcomes stay
                    // renderable.
                    if !spans.is_empty() {
                        reg.counter_with("nggc_fed_spans_shipped_total", &[("node", node_id)])
                            .add(spans.len() as u64);
                        for ws in spans {
                            let mut rec = ws.into_record();
                            rec.fields.push(("node".to_owned(), node_id.to_owned()));
                            nggc_obs::emit_record(&rec);
                        }
                    }
                    call_span.field("attempts", attempt + 1);
                    reg.counter_with("nggc_fed_bytes_sent_total", &[("node", node_id)])
                        .add(request.wire_size() as u64);
                    reg.counter_with("nggc_fed_bytes_received_total", &[("node", node_id)])
                        .add(response.wire_size() as u64);
                    // The transport worked even if the answer is an
                    // application error — the breaker only tracks
                    // transport health.
                    self.breaker_success(node_id);
                    if let Response::Error(e) = &response {
                        fail("remote_error");
                        return Err(FederationError::Remote(e.clone()));
                    }
                    return Ok(response);
                }
                Err(err) => {
                    debug_assert!(err.is_transport());
                    fail(if matches!(err, FederationError::Timeout(_)) {
                        "timeout"
                    } else {
                        "node_down"
                    });
                    self.breaker_failure(node_id);
                    // The request bytes crossed the wire even though no
                    // response came back; keep the accounting truthful.
                    log.requests += 1;
                    log.bytes_sent += request.wire_size();
                    reg.counter_with("nggc_fed_bytes_sent_total", &[("node", node_id)])
                        .add(request.wire_size() as u64);
                    if attempt >= retry_budget || !self.breaker_admit(node_id) {
                        return Err(err);
                    }
                    reg.counter_with("nggc_fed_retries_total", &[("node", node_id)]).inc();
                    std::thread::sleep(policy.backoff(node_id, attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Discover every node's datasets (metadata-only, cheap). Strict:
    /// the first unreachable node fails the whole discovery — use
    /// [`discover_degraded`](Federation::discover_degraded) to keep
    /// going with a partial inventory.
    pub fn discover(
        &self,
        log: &mut TransferLog,
    ) -> Result<Vec<(String, Vec<DatasetSummary>)>, FederationError> {
        let mut out = Vec::new();
        for id in self.node_ids().into_iter().map(str::to_owned).collect::<Vec<_>>() {
            match self.call(&id, Request::ListDatasets, log)? {
                Response::Datasets(ds) => out.push((id, ds)),
                other => return Err(FederationError::Protocol(format!("{other:?}"))),
            }
        }
        Ok(out)
    }

    /// Degraded-mode discovery: query every node, tolerate individual
    /// failures, and return whatever inventory was reachable together
    /// with a per-node [`NodeHealth`] report. The inventory covers
    /// exactly the nodes whose health status is not
    /// [`NodeStatus::Unavailable`].
    pub fn discover_degraded(
        &self,
        log: &mut TransferLog,
    ) -> (Vec<(String, Vec<DatasetSummary>)>, Vec<NodeHealth>) {
        let reg = nggc_obs::global();
        let mut inventory = Vec::new();
        let mut health = Vec::new();
        for id in self.node_ids().into_iter().map(str::to_owned).collect::<Vec<_>>() {
            let retries_before = reg.counter_with("nggc_fed_retries_total", &[("node", &id)]).get();
            let outcome = self.call(&id, Request::ListDatasets, log);
            let retries = reg
                .counter_with("nggc_fed_retries_total", &[("node", &id)])
                .get()
                .saturating_sub(retries_before);
            let report = |status, error| NodeHealth {
                node: id.clone(),
                status,
                breaker: self.breaker_state(&id),
                retries,
                error,
            };
            match outcome {
                Ok(Response::Datasets(ds)) => {
                    let status =
                        if retries > 0 { NodeStatus::Degraded } else { NodeStatus::Healthy };
                    health.push(report(status, None));
                    inventory.push((id, ds));
                }
                Ok(other) => health.push(report(
                    NodeStatus::Unavailable,
                    Some(format!("protocol violation: {other:?}")),
                )),
                Err(e) => health.push(report(NodeStatus::Unavailable, Some(e.to_string()))),
            }
        }
        (inventory, health)
    }

    /// Number of results currently staged on a node, via a `Status`
    /// exchange — lets clients verify that a failed conversation left no
    /// tickets behind.
    pub fn staged_results(&self, node_id: &str) -> Result<usize, FederationError> {
        let mut log = TransferLog::default();
        match self.call(node_id, Request::Status, &mut log)? {
            Response::Status { staged_results, .. } => Ok(staged_results),
            other => Err(FederationError::Protocol(format!("{other:?}"))),
        }
    }

    /// Compile remotely: correctness + schemas + size estimates, without
    /// moving any region data.
    pub fn compile_remote(
        &self,
        node_id: &str,
        query: &str,
        log: &mut TransferLog,
    ) -> Result<Vec<SizeEstimate>, FederationError> {
        match self.call(node_id, Request::Compile { query: query.to_owned() }, log)? {
            Response::Compiled { estimates, .. } => Ok(estimates),
            other => Err(FederationError::Protocol(format!("{other:?}"))),
        }
    }

    /// **Ship-query**: execute remotely, stream results back in chunks.
    pub fn ship_query(
        &self,
        node_id: &str,
        query: &str,
        chunk_bytes: usize,
    ) -> Result<(HashMap<String, Dataset>, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        let outputs = self.ship_query_into(node_id, query, chunk_bytes, &mut log)?;
        Ok((outputs, log))
    }

    /// Ship-query core, accumulating into a caller-owned log so transfer
    /// accounting survives failures. The staged ticket is **always**
    /// released, success or not — a failed chunk fetch must not leak
    /// staging resources on the remote node.
    fn ship_query_into(
        &self,
        node_id: &str,
        query: &str,
        chunk_bytes: usize,
        log: &mut TransferLog,
    ) -> Result<HashMap<String, Dataset>, FederationError> {
        let (ticket, chunks) = match self.call(
            node_id,
            Request::Execute { query: query.to_owned(), chunk_bytes },
            log,
        )? {
            Response::Accepted { ticket, chunks, .. } => (ticket, chunks),
            other => return Err(FederationError::Protocol(format!("{other:?}"))),
        };
        let fetched: Result<Vec<u8>, FederationError> =
            (0..chunks).try_fold(Vec::new(), |mut payload, i| {
                match self.call(node_id, Request::FetchChunk { ticket, chunk: i }, log)? {
                    Response::Chunk { data, .. } => {
                        payload.extend(data);
                        Ok(payload)
                    }
                    other => Err(FederationError::Protocol(format!("{other:?}"))),
                }
            });
        // Release before propagating any fetch error; the node-side
        // ticket TTL remains the backstop if even the release is lost.
        let released = self.call(node_id, Request::Release { ticket }, log);
        let payload = fetched?;
        released?;
        let decoded = decode_staged(&payload).map_err(FederationError::Protocol)?;
        Ok(decoded.into_iter().collect())
    }

    /// **Ship-query under a query governor**: every exchange's deadline
    /// (and retry/backoff spend) is clamped to the governor's remaining
    /// wall time via [`CallPolicy::clamped_to`], and cancellation is
    /// polled before every round trip — so a local `--timeout` or Ctrl-C
    /// bounds the whole federated conversation, not just local
    /// execution. An interrupted conversation still releases its staged
    /// ticket: the release runs under the federation's *unclamped*
    /// policy (cleanup is exempt from the query deadline, bounded by the
    /// base per-call deadline instead), so no staging resources leak on
    /// the remote node.
    pub fn ship_query_governed(
        &self,
        node_id: &str,
        query: &str,
        chunk_bytes: usize,
        governor: &QueryGovernor,
    ) -> Result<(HashMap<String, Dataset>, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        let label = format!("SHIP-QUERY {node_id}");
        let check = |g: &QueryGovernor| -> Result<(), FederationError> {
            g.check(&label).map_err(|e| FederationError::Interrupted(e.to_string()))
        };
        let clamped = |g: &QueryGovernor| match g.remaining() {
            Some(rem) => self.policy.clamped_to(rem),
            None => self.policy.clone(),
        };
        check(governor)?;
        let (ticket, chunks) = match self.call_with_policy(
            node_id,
            Request::Execute { query: query.to_owned(), chunk_bytes },
            &mut log,
            &clamped(governor),
        )? {
            Response::Accepted { ticket, chunks, .. } => (ticket, chunks),
            other => return Err(FederationError::Protocol(format!("{other:?}"))),
        };
        let mut payload = Vec::new();
        let mut failure: Option<FederationError> = None;
        for i in 0..chunks {
            if let Err(e) = check(governor) {
                failure = Some(e);
                break;
            }
            match self.call_with_policy(
                node_id,
                Request::FetchChunk { ticket, chunk: i },
                &mut log,
                &clamped(governor),
            ) {
                Ok(Response::Chunk { data, .. }) => payload.extend(data),
                Ok(other) => {
                    failure = Some(FederationError::Protocol(format!("{other:?}")));
                    break;
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let released = self.call(node_id, Request::Release { ticket }, &mut log);
        if let Some(e) = failure {
            return Err(e);
        }
        released?;
        // A deadline can fire after the last chunk arrived; surface it
        // rather than returning data the caller no longer wants.
        check(governor)?;
        let decoded = decode_staged(&payload).map_err(FederationError::Protocol)?;
        Ok((decoded.into_iter().collect(), log))
    }

    /// **Ship-query with user samples** (§4.3): upload a private local
    /// dataset to the node, run a query that may reference it, retrieve
    /// the results, and drop the upload — the node never lists it and
    /// holds it only for the duration of the conversation.
    pub fn ship_query_with_upload(
        &self,
        node_id: &str,
        upload: &Dataset,
        query: &str,
        chunk_bytes: usize,
    ) -> Result<(HashMap<String, Dataset>, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        let data = serde_json::to_vec(upload)
            .map_err(|e| FederationError::Protocol(format!("serialising upload: {e}")))?;
        self.call(node_id, Request::Upload { name: upload.name.clone(), data }, &mut log)?;
        // Run the query straight into the shared log so the transfer
        // accounting of a *failed* query is still merged; always attempt
        // the drop, even on failure, so the privacy guarantee holds.
        let result = self.ship_query_into(node_id, query, chunk_bytes, &mut log);
        let dropped =
            self.call(node_id, Request::DropUpload { name: upload.name.clone() }, &mut log);
        let outputs = result?;
        dropped?;
        Ok((outputs, log))
    }

    /// **Ship-data**: fetch the named datasets wholesale, then run the
    /// query locally with `local_workers` threads.
    pub fn ship_data(
        &self,
        node_id: &str,
        datasets: &[&str],
        query: &str,
        local_workers: usize,
    ) -> Result<(HashMap<String, Dataset>, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        let mut engine = GmqlEngine::with_workers(local_workers);
        for name in datasets {
            match self.call(
                node_id,
                Request::FetchDataset { name: (*name).to_owned() },
                &mut log,
            )? {
                Response::WholeDataset { data } => {
                    let ds: Dataset = serde_json::from_slice(&data).map_err(|e| {
                        FederationError::Protocol(format!("bad dataset payload: {e}"))
                    })?;
                    engine.register(ds);
                }
                other => return Err(FederationError::Protocol(format!("{other:?}"))),
            }
        }
        let outputs = engine.run(query).map_err(|e| FederationError::Remote(e.to_string()))?;
        Ok((outputs, log))
    }
}

/// Where each dataset of a distributed query lives and where it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedPlan {
    /// The node chosen to execute the query.
    pub host: String,
    /// Datasets shipped to the host from other nodes: `(dataset, owner)`.
    pub shipped: Vec<(String, String)>,
}

/// Outcome of a degraded-mode distributed execution: the results, how
/// they were computed, what it cost, and which nodes (if any) were
/// unreachable while computing them.
#[derive(Debug)]
pub struct DegradedOutcome {
    /// Materialized outputs.
    pub outputs: HashMap<String, Dataset>,
    /// Placement decisions.
    pub plan: DistributedPlan,
    /// Combined transfer accounting, including failed exchanges.
    pub log: TransferLog,
    /// Per-node reachability observed during discovery.
    pub health: Vec<NodeHealth>,
}

impl DegradedOutcome {
    /// True when every federation node answered discovery first try.
    pub fn fully_healthy(&self) -> bool {
        self.health.iter().all(|h| h.status == NodeStatus::Healthy)
    }

    /// Nodes that could not be reached during the operation.
    pub fn unavailable_nodes(&self) -> Vec<&str> {
        self.health
            .iter()
            .filter(|h| h.status == NodeStatus::Unavailable)
            .map(|h| h.node.as_str())
            .collect()
    }
}

impl Federation {
    /// Execute a query whose source datasets may live on **different
    /// nodes** (§4.4 federated processing proper). Strategy: pick the
    /// node owning the largest share of referenced bytes as the host,
    /// move the (smaller) remaining datasets to it as private temporary
    /// uploads, execute there, retrieve results, and drop the uploads.
    ///
    /// Returns the outputs, the placement decisions, and the combined
    /// transfer log.
    pub fn execute_distributed(
        &self,
        query: &str,
        chunk_bytes: usize,
    ) -> Result<(HashMap<String, Dataset>, DistributedPlan, TransferLog), FederationError> {
        let outcome = self.execute_distributed_degraded(query, chunk_bytes)?;
        Ok((outcome.outputs, outcome.plan, outcome.log))
    }

    /// Degraded-mode federated execution: tolerate unreachable nodes as
    /// long as every dataset the query references is owned by a node
    /// that answered discovery. The returned [`DegradedOutcome`] carries
    /// the per-node [`NodeHealth`] report so callers can tell a
    /// full-strength answer from one computed while part of the
    /// federation was down.
    pub fn execute_distributed_degraded(
        &self,
        query: &str,
        chunk_bytes: usize,
    ) -> Result<DegradedOutcome, FederationError> {
        let mut log = TransferLog::default();
        // 1. Discover ownership and sizes from every reachable node.
        let (inventory, health) = self.discover_degraded(&mut log);
        if inventory.is_empty() {
            return Err(FederationError::Remote(format!(
                "no reachable nodes ({} unreachable)",
                health.len()
            )));
        }
        let mut location: HashMap<String, (String, usize)> = HashMap::new();
        for (node, datasets) in &inventory {
            for d in datasets {
                location.insert(d.name.clone(), (node.clone(), d.stats.bytes));
            }
        }
        // 2. Which datasets does the query reference? Ask each node to
        // compile until one accepts — cheaper: extract source names via
        // nggc-core's parser.
        let statements =
            nggc_core::parse(query).map_err(|e| FederationError::Remote(e.to_string()))?;
        let mut defined: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut sources: Vec<String> = Vec::new();
        for stmt in &statements {
            if let nggc_core::Statement::Assign { var, call } = stmt {
                let mut referenced: Vec<&String> = call.operands.iter().collect();
                if let nggc_core::Operator::Select { semijoin: Some(sj), .. } = &call.op {
                    referenced.push(&sj.external);
                }
                for op in referenced {
                    if !defined.contains(op) && !sources.contains(op) {
                        sources.push(op.clone());
                    }
                }
                defined.insert(var.clone());
            }
        }
        // 3. Validate availability and pick the host. An unowned source
        // may simply live on an unreachable node — say so.
        let mut per_node_bytes: HashMap<&str, usize> = HashMap::new();
        for src in &sources {
            let (node, bytes) = location.get(src).ok_or_else(|| {
                let down = health
                    .iter()
                    .filter(|h| h.status == NodeStatus::Unavailable)
                    .map(|h| h.node.as_str())
                    .collect::<Vec<_>>();
                if down.is_empty() {
                    FederationError::Remote(format!("no node owns {src:?}"))
                } else {
                    FederationError::Remote(format!(
                        "no reachable node owns {src:?} (unreachable: {down:?})"
                    ))
                }
            })?;
            *per_node_bytes.entry(node.as_str()).or_insert(0) += bytes;
        }
        // Deterministic placement: most referenced bytes first, node id
        // (lexicographic, ascending) as the tie-break — never the
        // iteration order of a HashMap or the length of a node name.
        let host = per_node_bytes
            .iter()
            .map(|(node, bytes)| (*bytes, *node))
            .max_by_key(|&(bytes, node)| (bytes, std::cmp::Reverse(node)))
            .map(|(_, node)| node.to_owned())
            .ok_or_else(|| FederationError::Remote("query references no datasets".into()))?;
        // 4. Ship foreign datasets to the host as temporary uploads. On
        // failure, best-effort drop whatever was already uploaded so a
        // half-shipped query doesn't strand private data on the host.
        let mut shipped = Vec::new();
        let ship_result: Result<(), FederationError> = sources.iter().try_for_each(|src| {
            let (owner, _) = &location[src];
            if owner == &host {
                return Ok(());
            }
            let data =
                match self.call(owner, Request::FetchDataset { name: src.clone() }, &mut log)? {
                    Response::WholeDataset { data } => data,
                    other => return Err(FederationError::Protocol(format!("{other:?}"))),
                };
            self.call(&host, Request::Upload { name: src.clone(), data }, &mut log)?;
            shipped.push((src.clone(), owner.clone()));
            Ok(())
        });
        // 5. Execute on the host (only if shipping succeeded) and always
        // drop the uploads.
        let result =
            ship_result.and_then(|()| self.ship_query_into(&host, query, chunk_bytes, &mut log));
        for (name, _) in &shipped {
            let _ = self.call(&host, Request::DropUpload { name: name.clone() }, &mut log);
        }
        let outputs = result?;
        Ok(DegradedOutcome { outputs, plan: DistributedPlan { host, shipped }, log, health })
    }
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        for node in &mut self.nodes {
            // Closing the channel stops the node loop.
            let (tx, _) = unbounded();
            let old = std::mem::replace(&mut node.tx, tx);
            drop(old);
            if let Some(join) = node.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FederationNode;
    use nggc_gdm::{Attribute, GRegion, Metadata, Sample, Schema, Strand, ValueType};

    fn peaks(n_samples: usize, regions_per_sample: usize) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("PEAKS", schema);
        for i in 0..n_samples {
            let regions = (0..regions_per_sample)
                .map(|j| {
                    GRegion::new(
                        "chr1",
                        (j * 1000) as u64,
                        (j * 1000 + 200) as u64,
                        Strand::Unstranded,
                    )
                    .with_values(vec![0.001.into()])
                })
                .collect();
            ds.add_sample(
                Sample::new(format!("s{i}"), "PEAKS").with_regions(regions).with_metadata(
                    Metadata::from_pairs([("cell", if i % 2 == 0 { "HeLa" } else { "K562" })]),
                ),
            )
            .unwrap();
        }
        ds
    }

    fn federation() -> Federation {
        let mut fed = Federation::new();
        let mut node = FederationNode::new("polimi", 2);
        node.own(peaks(6, 50));
        fed.add_node(node);
        fed
    }

    const QUERY: &str = "X = SELECT(cell == 'HeLa'; region: left < 5000) PEAKS; MATERIALIZE X;";

    #[test]
    fn discovery_lists_remote_datasets() {
        let fed = federation();
        let mut log = TransferLog::default();
        let found = fed.discover(&mut log).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1[0].name, "PEAKS");
        assert!(log.total() > 0);
    }

    #[test]
    fn ship_query_returns_results() {
        let fed = federation();
        let (out, log) = fed.ship_query("polimi", QUERY, 4096).unwrap();
        assert_eq!(out["X"].sample_count(), 3);
        assert_eq!(out["X"].samples[0].region_count(), 5);
        assert!(log.total() > 0);
    }

    #[test]
    fn ship_data_agrees_but_moves_more_bytes() {
        let fed = federation();
        let (q_out, q_log) = fed.ship_query("polimi", QUERY, 4096).unwrap();
        let (d_out, d_log) = fed.ship_data("polimi", &["PEAKS"], QUERY, 2).unwrap();
        assert_eq!(q_out["X"].sample_count(), d_out["X"].sample_count());
        assert_eq!(q_out["X"].region_count(), d_out["X"].region_count());
        assert!(
            d_log.bytes_received > q_log.bytes_received,
            "ship-data {} must exceed ship-query {}",
            d_log.bytes_received,
            q_log.bytes_received
        );
    }

    #[test]
    fn compile_remote_estimates_before_moving_data() {
        let fed = federation();
        let mut log = TransferLog::default();
        let est = fed.compile_remote("polimi", QUERY, &mut log).unwrap();
        assert_eq!(est[0].name, "X");
        assert!(est[0].bytes > 0);
        // Compilation exchanges only small messages.
        assert!(log.total() < 10_000, "compile moved {} bytes", log.total());
    }

    #[test]
    fn chunked_retrieval_with_tiny_chunks() {
        let fed = federation();
        let (out, log) = fed.ship_query("polimi", QUERY, 1024).unwrap();
        assert_eq!(out["X"].sample_count(), 3);
        assert!(log.requests > 3, "multiple chunk fetches: {}", log.requests);
    }

    fn annotations() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("annType", ValueType::Str)]).unwrap();
        let mut ds = Dataset::new("ANNOTATIONS", schema);
        ds.add_sample(Sample::new("ucsc", "ANNOTATIONS").with_regions(vec![
            GRegion::new("chr1", 0, 10_000, Strand::Unstranded)
                .with_values(vec!["promoter".into()]),
        ]))
        .unwrap();
        ds
    }

    #[test]
    fn distributed_query_spans_two_nodes() {
        // PEAKS lives on polimi (large), ANNOTATIONS on broad (small).
        let mut fed = Federation::new();
        let mut n1 = FederationNode::new("polimi", 2);
        n1.own(peaks(6, 60));
        fed.add_node(n1);
        let mut n2 = FederationNode::new("broad", 2);
        n2.own(annotations());
        fed.add_node(n2);

        const Q: &str = "
            PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
            R = MAP(n AS COUNT) PROMS PEAKS;
            MATERIALIZE R;
        ";
        let (out, plan, log) = fed.execute_distributed(Q, 32 * 1024).unwrap();
        assert_eq!(plan.host, "polimi", "host = owner of the larger dataset");
        assert_eq!(plan.shipped, vec![("ANNOTATIONS".to_string(), "broad".to_string())]);
        assert_eq!(out["R"].sample_count(), 6);
        assert!(log.total() > 0);

        // Reference: both datasets local.
        let mut local = GmqlEngine::with_workers(2);
        local.register(peaks(6, 60));
        local.register(annotations());
        let expected = local.run(Q).unwrap();
        assert_eq!(out["R"].region_count(), expected["R"].region_count());

        // The shipped annotation upload was dropped from the host.
        assert!(matches!(
            fed.ship_query("polimi", "X = SELECT() ANNOTATIONS; MATERIALIZE X;", 4096),
            Err(FederationError::Remote(_))
        ));
    }

    #[test]
    fn distributed_query_errors_on_unknown_dataset() {
        let mut fed = Federation::new();
        let mut n1 = FederationNode::new("polimi", 1);
        n1.own(peaks(2, 5));
        fed.add_node(n1);
        assert!(matches!(
            fed.execute_distributed("R = SELECT() NOWHERE; MATERIALIZE R;", 4096),
            Err(FederationError::Remote(msg)) if msg.contains("NOWHERE")
        ));
    }

    #[test]
    fn user_upload_is_private_and_dropped() {
        let fed = federation();
        // A private user sample: one region overlapping the node's peaks.
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut mine = Dataset::new("MY_REGIONS", schema);
        mine.add_sample(Sample::new("user", "MY_REGIONS").with_regions(vec![
            GRegion::new("chr1", 0, 2_000, Strand::Unstranded).with_values(vec![0.5.into()]),
        ]))
        .unwrap();

        let (out, log) = fed
            .ship_query_with_upload(
                "polimi",
                &mine,
                "R = MAP(n AS COUNT) MY_REGIONS PEAKS; MATERIALIZE R;",
                8192,
            )
            .unwrap();
        assert_eq!(out["R"].sample_count(), 6, "one output per (user, peak-sample) pair");
        assert!(log.bytes_sent > 0);

        // The upload is gone: the same query now fails to compile, and it
        // never appeared in the public listing.
        assert!(matches!(
            fed.ship_query("polimi", "R = MAP(n AS COUNT) MY_REGIONS PEAKS; MATERIALIZE R;", 8192),
            Err(FederationError::Remote(_))
        ));
        let mut dlog = TransferLog::default();
        let listed = fed.discover(&mut dlog).unwrap();
        assert!(listed[0].1.iter().all(|d| d.name != "MY_REGIONS"));
    }

    #[test]
    fn upload_cannot_shadow_repository_dataset() {
        let fed = federation();
        let shadow = Dataset::new("PEAKS", Schema::empty());
        assert!(matches!(
            fed.ship_query_with_upload(
                "polimi",
                &shadow,
                "R = SELECT() PEAKS; MATERIALIZE R;",
                8192
            ),
            Err(FederationError::Remote(_))
        ));
    }

    #[test]
    fn staging_capacity_enforced() {
        let mut fed = Federation::new();
        let mut node = FederationNode::new("tiny", 1).with_staging_capacity(1);
        node.own(peaks(2, 5));
        fed.add_node(node);
        let mut log = TransferLog::default();
        // First Execute fills the single staging slot.
        let r1 = fed.call(
            "tiny",
            Request::Execute {
                query: "X = SELECT() PEAKS; MATERIALIZE X;".into(),
                chunk_bytes: 4096,
            },
            &mut log,
        );
        let ticket = match r1.unwrap() {
            Response::Accepted { ticket, .. } => ticket,
            other => panic!("{other:?}"),
        };
        // Second Execute is refused until the ticket is released.
        let r2 = fed.call(
            "tiny",
            Request::Execute {
                query: "X = SELECT() PEAKS; MATERIALIZE X;".into(),
                chunk_bytes: 4096,
            },
            &mut log,
        );
        assert!(matches!(r2, Err(FederationError::Remote(msg)) if msg.contains("staging full")));
        fed.call("tiny", Request::Release { ticket }, &mut log).unwrap();
        let r3 = fed.call(
            "tiny",
            Request::Execute {
                query: "X = SELECT() PEAKS; MATERIALIZE X;".into(),
                chunk_bytes: 4096,
            },
            &mut log,
        );
        assert!(matches!(r3, Ok(Response::Accepted { .. })));
    }

    #[test]
    fn equal_sized_nodes_host_tie_breaks_lexicographically() {
        // Two nodes with byte-identical datasets (same-length names, same
        // regions): placement must not depend on insertion order, HashMap
        // iteration order, or node-name length.
        let equal_ds = |name: &str| {
            let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
            let mut ds = Dataset::new(name, schema);
            ds.add_sample(Sample::new("s", name).with_regions(vec![
                GRegion::new("chr1", 0, 100, Strand::Unstranded).with_values(vec![0.5.into()]),
            ]))
            .unwrap();
            ds
        };
        const Q: &str = "R = MAP(n AS COUNT) AAA BBB; MATERIALIZE R;";
        for order in [["zeta", "alpha"], ["alpha", "zeta"]] {
            let mut fed = Federation::new();
            let mut first = FederationNode::new(order[0], 1);
            first.own(equal_ds(if order[0] == "zeta" { "AAA" } else { "BBB" }));
            fed.add_node(first);
            let mut second = FederationNode::new(order[1], 1);
            second.own(equal_ds(if order[1] == "zeta" { "AAA" } else { "BBB" }));
            fed.add_node(second);
            let (_, plan, _) = fed.execute_distributed(Q, 4096).unwrap();
            assert_eq!(
                plan.host, "alpha",
                "tie on bytes must resolve to the lexicographically first node (order {order:?})"
            );
        }
    }

    #[test]
    fn degraded_outcome_reports_full_health_when_all_nodes_up() {
        let mut fed = Federation::new();
        let mut n1 = FederationNode::new("polimi", 2);
        n1.own(peaks(4, 20));
        fed.add_node(n1);
        let outcome = fed.execute_distributed_degraded(QUERY, 4096).unwrap();
        assert!(outcome.fully_healthy());
        assert!(outcome.unavailable_nodes().is_empty());
        assert_eq!(outcome.health.len(), 1);
        assert_eq!(outcome.health[0].breaker, crate::BreakerState::Closed);
        assert_eq!(outcome.outputs["X"].sample_count(), 2);
        // No staged tickets left behind.
        assert_eq!(fed.staged_results("polimi").unwrap(), 0);
    }

    #[test]
    fn status_roundtrip_reports_staging() {
        let fed = federation();
        assert_eq!(fed.staged_results("polimi").unwrap(), 0);
        let mut log = TransferLog::default();
        let ticket = match fed
            .call("polimi", Request::Execute { query: QUERY.into(), chunk_bytes: 4096 }, &mut log)
            .unwrap()
        {
            Response::Accepted { ticket, .. } => ticket,
            other => panic!("{other:?}"),
        };
        assert_eq!(fed.staged_results("polimi").unwrap(), 1);
        fed.call("polimi", Request::Release { ticket }, &mut log).unwrap();
        assert_eq!(fed.staged_results("polimi").unwrap(), 0);
    }

    #[test]
    fn errors_propagate() {
        let fed = federation();
        assert!(matches!(
            fed.ship_query("nowhere", QUERY, 1024),
            Err(FederationError::UnknownNode(_))
        ));
        assert!(matches!(
            fed.ship_query("polimi", "X = SELECT(a == 1) NOPE;", 1024),
            Err(FederationError::Remote(_))
        ));
    }
}
