//! The federation coordinator.
//!
//! Nodes run on their own threads and communicate exclusively through
//! protocol messages over channels — the in-process stand-in for the
//! networked federation of §4.4 (DESIGN.md substitution table). The
//! coordinator implements both execution strategies that experiment E7
//! compares:
//!
//! * **ship-query** ([`Federation::ship_query`]) — "this paradigm allows
//!   for distributing the processing to data, transferring only query
//!   results which are usually small in size";
//! * **ship-data** ([`Federation::ship_data`]) — today's practice the
//!   paper argues against: "most of today's implementations requires
//!   first a full data transmission and then to evaluate server-side
//!   imperative programs".

use crate::node::{decode_staged, FederationNode};
use crate::protocol::{DatasetSummary, Request, Response, SizeEstimate, TransferLog};
use crossbeam_channel::{unbounded, Sender};
use nggc_core::GmqlEngine;
use nggc_gdm::Dataset;
use std::collections::HashMap;
use std::thread::JoinHandle;

type Envelope = (Request, Sender<Response>);

struct NodeHandle {
    id: String,
    tx: Sender<Envelope>,
    join: Option<JoinHandle<()>>,
}

/// A federation of nodes plus a coordinating client.
pub struct Federation {
    nodes: Vec<NodeHandle>,
}

/// Error type of federation calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// No node with the given id.
    UnknownNode(String),
    /// The node answered with a protocol error.
    Remote(String),
    /// The node thread is gone.
    NodeDown(String),
    /// Unexpected response variant.
    Protocol(String),
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::UnknownNode(n) => write!(f, "unknown node {n:?}"),
            FederationError::Remote(e) => write!(f, "remote error: {e}"),
            FederationError::NodeDown(n) => write!(f, "node {n:?} is down"),
            FederationError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for FederationError {}

impl Federation {
    /// Empty federation.
    pub fn new() -> Federation {
        Federation { nodes: Vec::new() }
    }

    /// Add a node; it starts serving requests on its own thread.
    pub fn add_node(&mut self, mut node: FederationNode) {
        let id = node.id.clone();
        let (tx, rx) = unbounded::<Envelope>();
        let join = std::thread::Builder::new()
            .name(format!("nggc-fed-{id}"))
            .spawn(move || {
                while let Ok((req, reply)) = rx.recv() {
                    let resp = node.handle(&req);
                    let _ = reply.send(resp);
                }
            })
            .expect("failed to spawn node thread");
        self.nodes.push(NodeHandle { id, tx, join: Some(join) });
    }

    /// Node ids.
    pub fn node_ids(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.id.as_str()).collect()
    }

    /// One request/response exchange with a node, recorded in `log` and
    /// in the `nggc_fed_*` metrics (per-node request counts, latency
    /// histogram, failure counts).
    pub fn call(
        &self,
        node_id: &str,
        request: Request,
        log: &mut TransferLog,
    ) -> Result<Response, FederationError> {
        let reg = nggc_obs::global();
        let kind = request.kind();
        reg.counter_with("nggc_fed_requests_total", &[("node", node_id), ("kind", kind)]).inc();
        let fail = |reason: &str| {
            reg.counter_with("nggc_fed_failures_total", &[("node", node_id), ("reason", reason)])
                .inc();
        };
        let node = self.nodes.iter().find(|n| n.id == node_id).ok_or_else(|| {
            fail("unknown_node");
            FederationError::UnknownNode(node_id.to_owned())
        })?;
        let t0 = std::time::Instant::now();
        let (reply_tx, reply_rx) = unbounded();
        node.tx.send((request.clone(), reply_tx)).map_err(|_| {
            fail("node_down");
            FederationError::NodeDown(node_id.to_owned())
        })?;
        let response = reply_rx.recv().map_err(|_| {
            fail("node_down");
            FederationError::NodeDown(node_id.to_owned())
        })?;
        reg.histogram_with("nggc_fed_request_ns", &[("node", node_id)])
            .record_duration(t0.elapsed());
        log.record(&request, &response);
        if let Response::Error(e) = &response {
            fail("remote_error");
            return Err(FederationError::Remote(e.clone()));
        }
        Ok(response)
    }

    /// Discover every node's datasets (metadata-only, cheap).
    pub fn discover(
        &self,
        log: &mut TransferLog,
    ) -> Result<Vec<(String, Vec<DatasetSummary>)>, FederationError> {
        let mut out = Vec::new();
        for id in self.node_ids().into_iter().map(str::to_owned).collect::<Vec<_>>() {
            match self.call(&id, Request::ListDatasets, log)? {
                Response::Datasets(ds) => out.push((id, ds)),
                other => return Err(FederationError::Protocol(format!("{other:?}"))),
            }
        }
        Ok(out)
    }

    /// Compile remotely: correctness + schemas + size estimates, without
    /// moving any region data.
    pub fn compile_remote(
        &self,
        node_id: &str,
        query: &str,
        log: &mut TransferLog,
    ) -> Result<Vec<SizeEstimate>, FederationError> {
        match self.call(node_id, Request::Compile { query: query.to_owned() }, log)? {
            Response::Compiled { estimates, .. } => Ok(estimates),
            other => Err(FederationError::Protocol(format!("{other:?}"))),
        }
    }

    /// **Ship-query**: execute remotely, stream results back in chunks.
    pub fn ship_query(
        &self,
        node_id: &str,
        query: &str,
        chunk_bytes: usize,
    ) -> Result<(HashMap<String, Dataset>, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        let (ticket, chunks) = match self.call(
            node_id,
            Request::Execute { query: query.to_owned(), chunk_bytes },
            &mut log,
        )? {
            Response::Accepted { ticket, chunks, .. } => (ticket, chunks),
            other => return Err(FederationError::Protocol(format!("{other:?}"))),
        };
        let mut payload = Vec::new();
        for i in 0..chunks {
            match self.call(node_id, Request::FetchChunk { ticket, chunk: i }, &mut log)? {
                Response::Chunk { data, .. } => payload.extend(data),
                other => return Err(FederationError::Protocol(format!("{other:?}"))),
            }
        }
        self.call(node_id, Request::Release { ticket }, &mut log)?;
        let decoded = decode_staged(&payload).map_err(FederationError::Protocol)?;
        Ok((decoded.into_iter().collect(), log))
    }

    /// **Ship-query with user samples** (§4.3): upload a private local
    /// dataset to the node, run a query that may reference it, retrieve
    /// the results, and drop the upload — the node never lists it and
    /// holds it only for the duration of the conversation.
    pub fn ship_query_with_upload(
        &self,
        node_id: &str,
        upload: &Dataset,
        query: &str,
        chunk_bytes: usize,
    ) -> Result<(HashMap<String, Dataset>, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        let data = serde_json::to_vec(upload)
            .map_err(|e| FederationError::Protocol(format!("serialising upload: {e}")))?;
        self.call(node_id, Request::Upload { name: upload.name.clone(), data }, &mut log)?;
        // Run the query; always attempt the drop, even on failure, so the
        // privacy guarantee holds.
        let result = self.ship_query(node_id, query, chunk_bytes);
        let mut drop_log = TransferLog::default();
        let dropped =
            self.call(node_id, Request::DropUpload { name: upload.name.clone() }, &mut drop_log);
        let (outputs, qlog) = result?;
        dropped?;
        log.requests += qlog.requests + drop_log.requests;
        log.bytes_sent += qlog.bytes_sent + drop_log.bytes_sent;
        log.bytes_received += qlog.bytes_received + drop_log.bytes_received;
        Ok((outputs, log))
    }

    /// **Ship-data**: fetch the named datasets wholesale, then run the
    /// query locally with `local_workers` threads.
    pub fn ship_data(
        &self,
        node_id: &str,
        datasets: &[&str],
        query: &str,
        local_workers: usize,
    ) -> Result<(HashMap<String, Dataset>, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        let mut engine = GmqlEngine::with_workers(local_workers);
        for name in datasets {
            match self.call(
                node_id,
                Request::FetchDataset { name: (*name).to_owned() },
                &mut log,
            )? {
                Response::WholeDataset { data } => {
                    let ds: Dataset = serde_json::from_slice(&data).map_err(|e| {
                        FederationError::Protocol(format!("bad dataset payload: {e}"))
                    })?;
                    engine.register(ds);
                }
                other => return Err(FederationError::Protocol(format!("{other:?}"))),
            }
        }
        let outputs = engine.run(query).map_err(|e| FederationError::Remote(e.to_string()))?;
        Ok((outputs, log))
    }
}

/// Where each dataset of a distributed query lives and where it ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistributedPlan {
    /// The node chosen to execute the query.
    pub host: String,
    /// Datasets shipped to the host from other nodes: `(dataset, owner)`.
    pub shipped: Vec<(String, String)>,
}

impl Federation {
    /// Execute a query whose source datasets may live on **different
    /// nodes** (§4.4 federated processing proper). Strategy: pick the
    /// node owning the largest share of referenced bytes as the host,
    /// move the (smaller) remaining datasets to it as private temporary
    /// uploads, execute there, retrieve results, and drop the uploads.
    ///
    /// Returns the outputs, the placement decisions, and the combined
    /// transfer log.
    pub fn execute_distributed(
        &self,
        query: &str,
        chunk_bytes: usize,
    ) -> Result<(HashMap<String, Dataset>, DistributedPlan, TransferLog), FederationError> {
        let mut log = TransferLog::default();
        // 1. Discover ownership and sizes.
        let inventory = self.discover(&mut log)?;
        let mut location: HashMap<String, (String, usize)> = HashMap::new();
        for (node, datasets) in &inventory {
            for d in datasets {
                location.insert(d.name.clone(), (node.clone(), d.stats.bytes));
            }
        }
        // 2. Which datasets does the query reference? Ask each node to
        // compile until one accepts — cheaper: extract source names via
        // nggc-core's parser.
        let statements =
            nggc_core::parse(query).map_err(|e| FederationError::Remote(e.to_string()))?;
        let mut defined: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut sources: Vec<String> = Vec::new();
        for stmt in &statements {
            if let nggc_core::Statement::Assign { var, call } = stmt {
                let mut referenced: Vec<&String> = call.operands.iter().collect();
                if let nggc_core::Operator::Select { semijoin: Some(sj), .. } = &call.op {
                    referenced.push(&sj.external);
                }
                for op in referenced {
                    if !defined.contains(op) && !sources.contains(op) {
                        sources.push(op.clone());
                    }
                }
                defined.insert(var.clone());
            }
        }
        // 3. Validate availability and pick the host.
        let mut per_node_bytes: HashMap<&str, usize> = HashMap::new();
        for src in &sources {
            let (node, bytes) = location
                .get(src)
                .ok_or_else(|| FederationError::Remote(format!("no node owns {src:?}")))?;
            *per_node_bytes.entry(node.as_str()).or_insert(0) += bytes;
        }
        let host = per_node_bytes
            .iter()
            .max_by_key(|(node, bytes)| (**bytes, std::cmp::Reverse(node.len())))
            .map(|(node, _)| (*node).to_owned())
            .ok_or_else(|| FederationError::Remote("query references no datasets".into()))?;
        // 4. Ship foreign datasets to the host as temporary uploads.
        let mut shipped = Vec::new();
        for src in &sources {
            let (owner, _) = &location[src];
            if owner == &host {
                continue;
            }
            let data =
                match self.call(owner, Request::FetchDataset { name: src.clone() }, &mut log)? {
                    Response::WholeDataset { data } => data,
                    other => return Err(FederationError::Protocol(format!("{other:?}"))),
                };
            self.call(&host, Request::Upload { name: src.clone(), data }, &mut log)?;
            shipped.push((src.clone(), owner.clone()));
        }
        // 5. Execute on the host and always drop the uploads.
        let result = self.ship_query(&host, query, chunk_bytes);
        for (name, _) in &shipped {
            let mut drop_log = TransferLog::default();
            let _ = self.call(&host, Request::DropUpload { name: name.clone() }, &mut drop_log);
            log.requests += drop_log.requests;
            log.bytes_sent += drop_log.bytes_sent;
            log.bytes_received += drop_log.bytes_received;
        }
        let (outputs, qlog) = result?;
        log.requests += qlog.requests;
        log.bytes_sent += qlog.bytes_sent;
        log.bytes_received += qlog.bytes_received;
        Ok((outputs, DistributedPlan { host, shipped }, log))
    }
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

impl Drop for Federation {
    fn drop(&mut self) {
        for node in &mut self.nodes {
            // Closing the channel stops the node loop.
            let (tx, _) = unbounded();
            let old = std::mem::replace(&mut node.tx, tx);
            drop(old);
            if let Some(join) = node.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Metadata, Sample, Schema, Strand, ValueType};

    fn peaks(n_samples: usize, regions_per_sample: usize) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("PEAKS", schema);
        for i in 0..n_samples {
            let regions = (0..regions_per_sample)
                .map(|j| {
                    GRegion::new(
                        "chr1",
                        (j * 1000) as u64,
                        (j * 1000 + 200) as u64,
                        Strand::Unstranded,
                    )
                    .with_values(vec![0.001.into()])
                })
                .collect();
            ds.add_sample(
                Sample::new(format!("s{i}"), "PEAKS").with_regions(regions).with_metadata(
                    Metadata::from_pairs([("cell", if i % 2 == 0 { "HeLa" } else { "K562" })]),
                ),
            )
            .unwrap();
        }
        ds
    }

    fn federation() -> Federation {
        let mut fed = Federation::new();
        let mut node = FederationNode::new("polimi", 2);
        node.own(peaks(6, 50));
        fed.add_node(node);
        fed
    }

    const QUERY: &str = "X = SELECT(cell == 'HeLa'; region: left < 5000) PEAKS; MATERIALIZE X;";

    #[test]
    fn discovery_lists_remote_datasets() {
        let fed = federation();
        let mut log = TransferLog::default();
        let found = fed.discover(&mut log).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].1[0].name, "PEAKS");
        assert!(log.total() > 0);
    }

    #[test]
    fn ship_query_returns_results() {
        let fed = federation();
        let (out, log) = fed.ship_query("polimi", QUERY, 4096).unwrap();
        assert_eq!(out["X"].sample_count(), 3);
        assert_eq!(out["X"].samples[0].region_count(), 5);
        assert!(log.total() > 0);
    }

    #[test]
    fn ship_data_agrees_but_moves_more_bytes() {
        let fed = federation();
        let (q_out, q_log) = fed.ship_query("polimi", QUERY, 4096).unwrap();
        let (d_out, d_log) = fed.ship_data("polimi", &["PEAKS"], QUERY, 2).unwrap();
        assert_eq!(q_out["X"].sample_count(), d_out["X"].sample_count());
        assert_eq!(q_out["X"].region_count(), d_out["X"].region_count());
        assert!(
            d_log.bytes_received > q_log.bytes_received,
            "ship-data {} must exceed ship-query {}",
            d_log.bytes_received,
            q_log.bytes_received
        );
    }

    #[test]
    fn compile_remote_estimates_before_moving_data() {
        let fed = federation();
        let mut log = TransferLog::default();
        let est = fed.compile_remote("polimi", QUERY, &mut log).unwrap();
        assert_eq!(est[0].name, "X");
        assert!(est[0].bytes > 0);
        // Compilation exchanges only small messages.
        assert!(log.total() < 10_000, "compile moved {} bytes", log.total());
    }

    #[test]
    fn chunked_retrieval_with_tiny_chunks() {
        let fed = federation();
        let (out, log) = fed.ship_query("polimi", QUERY, 1024).unwrap();
        assert_eq!(out["X"].sample_count(), 3);
        assert!(log.requests > 3, "multiple chunk fetches: {}", log.requests);
    }

    fn annotations() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("annType", ValueType::Str)]).unwrap();
        let mut ds = Dataset::new("ANNOTATIONS", schema);
        ds.add_sample(Sample::new("ucsc", "ANNOTATIONS").with_regions(vec![
            GRegion::new("chr1", 0, 10_000, Strand::Unstranded)
                .with_values(vec!["promoter".into()]),
        ]))
        .unwrap();
        ds
    }

    #[test]
    fn distributed_query_spans_two_nodes() {
        // PEAKS lives on polimi (large), ANNOTATIONS on broad (small).
        let mut fed = Federation::new();
        let mut n1 = FederationNode::new("polimi", 2);
        n1.own(peaks(6, 60));
        fed.add_node(n1);
        let mut n2 = FederationNode::new("broad", 2);
        n2.own(annotations());
        fed.add_node(n2);

        const Q: &str = "
            PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
            R = MAP(n AS COUNT) PROMS PEAKS;
            MATERIALIZE R;
        ";
        let (out, plan, log) = fed.execute_distributed(Q, 32 * 1024).unwrap();
        assert_eq!(plan.host, "polimi", "host = owner of the larger dataset");
        assert_eq!(plan.shipped, vec![("ANNOTATIONS".to_string(), "broad".to_string())]);
        assert_eq!(out["R"].sample_count(), 6);
        assert!(log.total() > 0);

        // Reference: both datasets local.
        let mut local = GmqlEngine::with_workers(2);
        local.register(peaks(6, 60));
        local.register(annotations());
        let expected = local.run(Q).unwrap();
        assert_eq!(out["R"].region_count(), expected["R"].region_count());

        // The shipped annotation upload was dropped from the host.
        assert!(matches!(
            fed.ship_query("polimi", "X = SELECT() ANNOTATIONS; MATERIALIZE X;", 4096),
            Err(FederationError::Remote(_))
        ));
    }

    #[test]
    fn distributed_query_errors_on_unknown_dataset() {
        let mut fed = Federation::new();
        let mut n1 = FederationNode::new("polimi", 1);
        n1.own(peaks(2, 5));
        fed.add_node(n1);
        assert!(matches!(
            fed.execute_distributed("R = SELECT() NOWHERE; MATERIALIZE R;", 4096),
            Err(FederationError::Remote(msg)) if msg.contains("NOWHERE")
        ));
    }

    #[test]
    fn user_upload_is_private_and_dropped() {
        let fed = federation();
        // A private user sample: one region overlapping the node's peaks.
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut mine = Dataset::new("MY_REGIONS", schema);
        mine.add_sample(Sample::new("user", "MY_REGIONS").with_regions(vec![
            GRegion::new("chr1", 0, 2_000, Strand::Unstranded).with_values(vec![0.5.into()]),
        ]))
        .unwrap();

        let (out, log) = fed
            .ship_query_with_upload(
                "polimi",
                &mine,
                "R = MAP(n AS COUNT) MY_REGIONS PEAKS; MATERIALIZE R;",
                8192,
            )
            .unwrap();
        assert_eq!(out["R"].sample_count(), 6, "one output per (user, peak-sample) pair");
        assert!(log.bytes_sent > 0);

        // The upload is gone: the same query now fails to compile, and it
        // never appeared in the public listing.
        assert!(matches!(
            fed.ship_query("polimi", "R = MAP(n AS COUNT) MY_REGIONS PEAKS; MATERIALIZE R;", 8192),
            Err(FederationError::Remote(_))
        ));
        let mut dlog = TransferLog::default();
        let listed = fed.discover(&mut dlog).unwrap();
        assert!(listed[0].1.iter().all(|d| d.name != "MY_REGIONS"));
    }

    #[test]
    fn upload_cannot_shadow_repository_dataset() {
        let fed = federation();
        let shadow = Dataset::new("PEAKS", Schema::empty());
        assert!(matches!(
            fed.ship_query_with_upload(
                "polimi",
                &shadow,
                "R = SELECT() PEAKS; MATERIALIZE R;",
                8192
            ),
            Err(FederationError::Remote(_))
        ));
    }

    #[test]
    fn staging_capacity_enforced() {
        let mut fed = Federation::new();
        let mut node = FederationNode::new("tiny", 1).with_staging_capacity(1);
        node.own(peaks(2, 5));
        fed.add_node(node);
        let mut log = TransferLog::default();
        // First Execute fills the single staging slot.
        let r1 = fed.call(
            "tiny",
            Request::Execute {
                query: "X = SELECT() PEAKS; MATERIALIZE X;".into(),
                chunk_bytes: 4096,
            },
            &mut log,
        );
        let ticket = match r1.unwrap() {
            Response::Accepted { ticket, .. } => ticket,
            other => panic!("{other:?}"),
        };
        // Second Execute is refused until the ticket is released.
        let r2 = fed.call(
            "tiny",
            Request::Execute {
                query: "X = SELECT() PEAKS; MATERIALIZE X;".into(),
                chunk_bytes: 4096,
            },
            &mut log,
        );
        assert!(matches!(r2, Err(FederationError::Remote(msg)) if msg.contains("staging full")));
        fed.call("tiny", Request::Release { ticket }, &mut log).unwrap();
        let r3 = fed.call(
            "tiny",
            Request::Execute {
                query: "X = SELECT() PEAKS; MATERIALIZE X;".into(),
                chunk_bytes: 4096,
            },
            &mut log,
        );
        assert!(matches!(r3, Ok(Response::Accepted { .. })));
    }

    #[test]
    fn errors_propagate() {
        let fed = federation();
        assert!(matches!(
            fed.ship_query("nowhere", QUERY, 1024),
            Err(FederationError::UnknownNode(_))
        ));
        assert!(matches!(
            fed.ship_query("polimi", "X = SELECT(a == 1) NOPE;", 1024),
            Err(FederationError::Remote(_))
        ));
    }
}
