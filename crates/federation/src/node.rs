//! A federation node: owns datasets, answers protocol requests.
//!
//! "Each data repository will be the owner of the data that are locally
//! produced ... queries move from a requesting node to a remote node, are
//! locally executed, and results are communicated back" (§4.4). A node
//! wraps a [`GmqlEngine`] over its local datasets, compiles and executes
//! incoming GMQL text, and stages serialized results for chunked
//! retrieval so the requester stays "in control of staging resources and
//! of communication load".

use crate::protocol::{DatasetSummary, Request, Response, SizeEstimate};
use nggc_core::GmqlEngine;
use nggc_gdm::Dataset;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Anything that can serve federation protocol requests on a node
/// thread. [`FederationNode`] is the real implementation;
/// [`ChaosNode`](crate::ChaosNode) wraps one to inject faults.
pub trait NodeService: Send {
    /// Node identifier.
    fn id(&self) -> &str;

    /// Serve one request. `None` models a lost response: the caller gets
    /// no reply and its deadline fires.
    fn serve(&mut self, request: &Request) -> Option<Response>;
}

/// One federated node.
pub struct FederationNode {
    /// Node identifier.
    pub id: String,
    engine: GmqlEngine,
    datasets: Vec<(String, nggc_gdm::DatasetStats)>,
    staged: HashMap<u64, StagedResult>,
    next_ticket: u64,
    /// Temporary user uploads (private: never listed, dropped on request).
    uploads: Vec<String>,
    /// Maximum concurrently staged results ("control of staging
    /// resources", §4.4).
    max_staged: usize,
    /// Backstop against clients that vanish mid-conversation: staged
    /// results older than this are reaped on the next request.
    ticket_ttl: Duration,
}

struct StagedResult {
    chunks: Vec<Vec<u8>>,
    created: Instant,
}

impl FederationNode {
    /// Create a node with `workers` local threads and the default
    /// staging capacity (8 concurrent results).
    pub fn new(id: impl Into<String>, workers: usize) -> FederationNode {
        FederationNode {
            id: id.into(),
            engine: GmqlEngine::with_workers(workers),
            datasets: Vec::new(),
            staged: HashMap::new(),
            next_ticket: 1,
            uploads: Vec::new(),
            max_staged: 8,
            ticket_ttl: Duration::from_secs(600),
        }
    }

    /// Override the staging capacity.
    pub fn with_staging_capacity(mut self, max_staged: usize) -> FederationNode {
        self.max_staged = max_staged.max(1);
        self
    }

    /// Override the staged-ticket time-to-live (default 10 minutes).
    pub fn with_ticket_ttl(mut self, ttl: Duration) -> FederationNode {
        self.ticket_ttl = ttl;
        self
    }

    /// Reap staged results whose ticket outlived
    /// [`ticket_ttl`](Self::with_ticket_ttl) — the backstop for clients
    /// that timed out (or crashed) between `Execute` and `Release`.
    fn expire_stale_tickets(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        let ttl = self.ticket_ttl;
        let before = self.staged.len();
        self.staged.retain(|_, s| s.created.elapsed() < ttl);
        let expired = before - self.staged.len();
        if expired > 0 {
            nggc_obs::global()
                .counter_with("nggc_fed_tickets_expired_total", &[("node", &self.id)])
                .add(expired as u64);
        }
    }

    /// Make the node own a dataset.
    pub fn own(&mut self, dataset: Dataset) {
        self.datasets.push((dataset.name.clone(), dataset.stats()));
        self.engine.register(dataset);
    }

    /// Names of owned datasets.
    pub fn owned(&self) -> Vec<&str> {
        self.datasets.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Handle one protocol request.
    pub fn handle(&mut self, request: &Request) -> Response {
        self.expire_stale_tickets();
        match request {
            Request::ListDatasets => Response::Datasets(
                self.datasets
                    .iter()
                    .map(|(name, stats)| DatasetSummary {
                        name: name.clone(),
                        schema: self
                            .engine
                            .dataset(name)
                            .map(|d| d.schema.clone())
                            .unwrap_or_default(),
                        stats: *stats,
                    })
                    .collect(),
            ),
            Request::DatasetInfo { name } => match self.engine.dataset(name) {
                Some(d) => Response::Info(DatasetSummary {
                    name: name.clone(),
                    schema: d.schema.clone(),
                    stats: d.stats(),
                }),
                None => Response::Error(format!("unknown dataset {name:?}")),
            },
            Request::Compile { query } => {
                let plan = match self.engine.compile(query) {
                    Ok(p) => p,
                    Err(e) => return Response::Error(e.to_string()),
                };
                let outputs = plan
                    .outputs
                    .iter()
                    .map(|(name, id)| (name.clone(), plan.nodes[*id].schema.clone()))
                    .collect();
                let estimates = match self.engine.estimate(query) {
                    Ok(est) => est
                        .outputs
                        .into_iter()
                        .map(|o| SizeEstimate {
                            name: o.name,
                            samples: o.samples,
                            regions: o.regions,
                            bytes: o.bytes,
                        })
                        .collect(),
                    Err(e) => return Response::Error(e.to_string()),
                };
                Response::Compiled { outputs, estimates }
            }
            Request::Execute { query, chunk_bytes } => {
                if self.staged.len() >= self.max_staged {
                    return Response::Error(format!(
                        "staging full ({} results held); release a ticket first",
                        self.staged.len()
                    ));
                }
                let results = match self.engine.run(query) {
                    Ok(r) => r,
                    Err(e) => return Response::Error(e.to_string()),
                };
                let mut outputs: Vec<String> = results.keys().cloned().collect();
                outputs.sort();
                let mut payload = Vec::new();
                for name in &outputs {
                    let bytes = match serde_json::to_vec(&results[name]) {
                        Ok(b) => b,
                        Err(e) => return Response::Error(e.to_string()),
                    };
                    // Frame: name length, name, body length, body.
                    payload.extend((name.len() as u64).to_le_bytes());
                    payload.extend(name.as_bytes());
                    payload.extend((bytes.len() as u64).to_le_bytes());
                    payload.extend(bytes);
                }
                let chunk_bytes = (*chunk_bytes).max(1024);
                let chunks: Vec<Vec<u8>> =
                    payload.chunks(chunk_bytes).map(|c| c.to_vec()).collect();
                let total_bytes = payload.len();
                let n_chunks = chunks.len().max(1);
                let ticket = self.next_ticket;
                self.next_ticket += 1;
                self.staged.insert(
                    ticket,
                    StagedResult {
                        chunks: if chunks.is_empty() { vec![Vec::new()] } else { chunks },
                        created: Instant::now(),
                    },
                );
                Response::Accepted { ticket, outputs, chunks: n_chunks, total_bytes }
            }
            Request::FetchChunk { ticket, chunk } => match self.staged.get(ticket) {
                Some(staged) => match staged.chunks.get(*chunk) {
                    Some(data) => Response::Chunk {
                        ticket: *ticket,
                        index: *chunk,
                        data: data.clone(),
                        last: *chunk + 1 == staged.chunks.len(),
                    },
                    None => Response::Error(format!("chunk {chunk} out of range")),
                },
                None => Response::Error(format!("unknown ticket {ticket}")),
            },
            Request::FetchDataset { name } => match self.engine.dataset(name) {
                Some(d) => match serde_json::to_vec(d) {
                    Ok(data) => Response::WholeDataset { data },
                    Err(e) => Response::Error(e.to_string()),
                },
                None => Response::Error(format!("unknown dataset {name:?}")),
            },
            Request::Release { ticket } => {
                if self.staged.remove(ticket).is_some() {
                    Response::Ok
                } else {
                    Response::Error(format!("unknown ticket {ticket}"))
                }
            }
            Request::Upload { name, data } => {
                if self.datasets.iter().any(|(n, _)| n == name) {
                    return Response::Error(format!("{name:?} collides with a repository dataset"));
                }
                match serde_json::from_slice::<Dataset>(data) {
                    Ok(mut ds) => {
                        ds.name = name.clone();
                        if !self.uploads.contains(name) {
                            self.uploads.push(name.clone());
                        }
                        self.engine.register(ds);
                        Response::Ok
                    }
                    Err(e) => Response::Error(format!("bad upload payload: {e}")),
                }
            }
            Request::DropUpload { name } => {
                if let Some(pos) = self.uploads.iter().position(|n| n == name) {
                    self.uploads.remove(pos);
                    self.engine.unregister(name);
                    Response::Ok
                } else {
                    Response::Error(format!("no upload named {name:?}"))
                }
            }
            Request::Status => {
                Response::Status { staged_results: self.staged.len(), uploads: self.uploads.len() }
            }
        }
    }

    /// Names of live user uploads (test/observability hook).
    pub fn uploads(&self) -> &[String] {
        &self.uploads
    }

    /// Number of currently staged results (staging-resource control).
    pub fn staged_results(&self) -> usize {
        self.staged.len()
    }
}

impl NodeService for FederationNode {
    fn id(&self) -> &str {
        &self.id
    }

    fn serve(&mut self, request: &Request) -> Option<Response> {
        Some(self.handle(request))
    }
}

/// Reassemble the framed payload of a staged result into named datasets.
pub fn decode_staged(payload: &[u8]) -> Result<Vec<(String, Dataset)>, String> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < payload.len() {
        let take_u64 = |pos: &mut usize| -> Result<u64, String> {
            let end = *pos + 8;
            if end > payload.len() {
                return Err("truncated frame header".to_owned());
            }
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&payload[*pos..end]);
            *pos = end;
            Ok(u64::from_le_bytes(buf))
        };
        let name_len = take_u64(&mut pos)? as usize;
        if pos + name_len > payload.len() {
            return Err("truncated name".to_owned());
        }
        let name = String::from_utf8_lossy(&payload[pos..pos + name_len]).into_owned();
        pos += name_len;
        let body_len = take_u64(&mut pos)? as usize;
        if pos + body_len > payload.len() {
            return Err("truncated body".to_owned());
        }
        let dataset: Dataset =
            serde_json::from_slice(&payload[pos..pos + body_len]).map_err(|e| e.to_string())?;
        pos += body_len;
        out.push((name, dataset));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Metadata, Sample, Schema, Strand, ValueType};

    fn node() -> FederationNode {
        let mut node = FederationNode::new("polimi", 2);
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("PEAKS", schema);
        for i in 0..3 {
            ds.add_sample(
                Sample::new(format!("s{i}"), "PEAKS")
                    .with_regions(vec![GRegion::new(
                        "chr1",
                        i * 100,
                        i * 100 + 50,
                        Strand::Unstranded,
                    )
                    .with_values(vec![0.01.into()])])
                    .with_metadata(Metadata::from_pairs([(
                        "cell",
                        if i == 0 { "HeLa" } else { "K562" },
                    )])),
            )
            .unwrap();
        }
        node.own(ds);
        node
    }

    #[test]
    fn list_and_info() {
        let mut n = node();
        match n.handle(&Request::ListDatasets) {
            Response::Datasets(ds) => {
                assert_eq!(ds.len(), 1);
                assert_eq!(ds[0].stats.samples, 3);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            n.handle(&Request::DatasetInfo { name: "PEAKS".into() }),
            Response::Info(_)
        ));
        assert!(matches!(
            n.handle(&Request::DatasetInfo { name: "NOPE".into() }),
            Response::Error(_)
        ));
    }

    #[test]
    fn compile_returns_schema_and_estimate() {
        let mut n = node();
        match n.handle(&Request::Compile {
            query: "X = SELECT(cell == 'K562') PEAKS; MATERIALIZE X;".into(),
        }) {
            Response::Compiled { outputs, estimates } => {
                assert_eq!(outputs[0].0, "X");
                assert!(outputs[0].1.get("p").is_some());
                assert!(estimates[0].bytes > 0);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            n.handle(&Request::Compile { query: "X = SELEKT() P;".into() }),
            Response::Error(_)
        ));
    }

    #[test]
    fn execute_stage_fetch_release() {
        let mut n = node();
        let (ticket, chunks) = match n.handle(&Request::Execute {
            query: "X = SELECT(cell == 'K562') PEAKS; MATERIALIZE X;".into(),
            chunk_bytes: 1024,
        }) {
            Response::Accepted { ticket, chunks, total_bytes, .. } => {
                assert!(total_bytes > 0);
                (ticket, chunks)
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(n.staged_results(), 1);
        let mut payload = Vec::new();
        for i in 0..chunks {
            match n.handle(&Request::FetchChunk { ticket, chunk: i }) {
                Response::Chunk { data, last, .. } => {
                    payload.extend(data);
                    assert_eq!(last, i + 1 == chunks);
                }
                other => panic!("{other:?}"),
            }
        }
        let results = decode_staged(&payload).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, "X");
        assert_eq!(results[0].1.sample_count(), 2, "two K562 samples");
        assert!(matches!(n.handle(&Request::Release { ticket }), Response::Ok));
        assert_eq!(n.staged_results(), 0);
        assert!(matches!(n.handle(&Request::Release { ticket }), Response::Error(_)));
    }

    #[test]
    fn stale_tickets_expire_as_backstop() {
        let mut n = node().with_ticket_ttl(Duration::from_millis(20));
        let ticket = match n.handle(&Request::Execute {
            query: "X = SELECT() PEAKS; MATERIALIZE X;".into(),
            chunk_bytes: 1024,
        }) {
            Response::Accepted { ticket, .. } => ticket,
            other => panic!("{other:?}"),
        };
        assert_eq!(n.staged_results(), 1);
        std::thread::sleep(Duration::from_millis(40));
        // Any subsequent request sweeps the stale ticket first.
        match n.handle(&Request::Status) {
            Response::Status { staged_results, .. } => assert_eq!(staged_results, 0),
            other => panic!("{other:?}"),
        }
        assert_eq!(n.staged_results(), 0);
        // The reaped ticket is gone for good.
        assert!(matches!(n.handle(&Request::FetchChunk { ticket, chunk: 0 }), Response::Error(_)));
    }

    #[test]
    fn whole_dataset_fetch() {
        let mut n = node();
        match n.handle(&Request::FetchDataset { name: "PEAKS".into() }) {
            Response::WholeDataset { data } => {
                let ds: Dataset = serde_json::from_slice(&data).unwrap();
                assert_eq!(ds.sample_count(), 3);
            }
            other => panic!("{other:?}"),
        }
    }
}
