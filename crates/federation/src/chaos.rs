//! Deterministic fault injection for federation testing.
//!
//! [`ChaosNode`] wraps a [`FederationNode`] and misbehaves on purpose:
//! it can **drop** responses (the request is served but the reply is
//! lost, so the caller's deadline fires), **delay** them (the node
//! thread stalls, modelling a hung peer), answer with injected
//! **errors**, or **garble** the reply (corrupted chunk bytes or a
//! wrong response variant). Faults are driven by a seeded xorshift
//! generator plus deterministic "first N requests" windows, so every
//! failure scenario replays bit-for-bit — the in-process stand-in for
//! the network faults a real §4.4 consortium federation must survive.

use crate::node::{FederationNode, NodeService};
use crate::protocol::{Request, Response};
use std::time::Duration;

/// What a [`ChaosNode`] injects, and when.
///
/// Deterministic windows (`drop_first`, `fail_first`) apply to the
/// first matching requests in arrival order; after those are exhausted,
/// the `*_rate` probabilities are sampled from the seeded generator.
/// With an empty [`only_kinds`](Self::only_kinds) every request is
/// eligible; otherwise only the listed
/// [`Request::kind`] names are tampered with.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the deterministic fault generator.
    pub seed: u64,
    /// Drop the responses of the first N matching requests.
    pub drop_first: usize,
    /// After the drop window: answer the next N matching requests with
    /// an injected `Response::Error`.
    pub fail_first: usize,
    /// Probability (0..=1) of dropping a response.
    pub drop_rate: f64,
    /// Probability of answering with an injected error.
    pub error_rate: f64,
    /// Probability of garbling the response.
    pub garble_rate: f64,
    /// Probability of stalling for [`delay`](Self::delay) before serving.
    pub delay_rate: f64,
    /// Stall duration; the node thread sleeps, so queued requests stall
    /// too — exactly how a hung peer looks from the coordinator.
    pub delay: Duration,
    /// Restrict chaos to these [`Request::kind`] names (empty = all).
    pub only_kinds: Vec<String>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            drop_first: 0,
            fail_first: 0,
            drop_rate: 0.0,
            error_rate: 0.0,
            garble_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::ZERO,
            only_kinds: Vec::new(),
        }
    }
}

impl ChaosConfig {
    /// A peer that never answers: every matching response is dropped.
    pub fn unresponsive() -> ChaosConfig {
        ChaosConfig { drop_rate: 1.0, ..ChaosConfig::default() }
    }

    /// A hung peer: every matching request stalls for `delay` first.
    /// Keep `delay` modest (a few hundred ms) — the node thread really
    /// sleeps, and `Federation::drop` joins it.
    pub fn hung(delay: Duration) -> ChaosConfig {
        ChaosConfig { delay_rate: 1.0, delay, ..ChaosConfig::default() }
    }

    /// A flaky peer: loses the first `n` matching responses, then
    /// behaves — made for exercising the retry budget.
    pub fn flaky(n: usize) -> ChaosConfig {
        ChaosConfig { drop_first: n, ..ChaosConfig::default() }
    }
}

/// A [`FederationNode`] wrapped in configurable, seeded misbehaviour.
pub struct ChaosNode {
    inner: FederationNode,
    config: ChaosConfig,
    rng: u64,
    /// Matching requests seen so far (drives the deterministic windows).
    seen: usize,
}

impl ChaosNode {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: FederationNode, config: ChaosConfig) -> ChaosNode {
        // A zero seed would lock xorshift at zero; nudge it.
        let rng = config.seed | 1;
        ChaosNode { inner, config, rng, seen: 0 }
    }

    /// The wrapped node (e.g. to inspect `staged_results` in tests).
    pub fn inner(&self) -> &FederationNode {
        &self.inner
    }

    fn applies(&self, request: &Request) -> bool {
        self.config.only_kinds.is_empty()
            || self.config.only_kinds.iter().any(|k| k == request.kind())
    }

    /// Deterministic uniform draw in `[0, 1)`.
    fn draw(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng >> 11) as f64 / (1u64 << 53) as f64
    }

    fn garble(response: Response) -> Response {
        match response {
            // Flip a byte mid-payload: the framing survives transport but
            // `decode_staged` rejects the corrupted body.
            Response::Chunk { ticket, index, mut data, last } => {
                if data.is_empty() {
                    data.push(0xFF);
                } else {
                    let mid = data.len() / 2;
                    data[mid] ^= 0xA5;
                }
                Response::Chunk { ticket, index, data, last }
            }
            // Everything else degrades to a wrong variant, which callers
            // must surface as a protocol violation, not a panic.
            _ => Response::Ok,
        }
    }
}

impl NodeService for ChaosNode {
    fn id(&self) -> &str {
        &self.inner.id
    }

    fn serve(&mut self, request: &Request) -> Option<Response> {
        if !self.applies(request) {
            return self.inner.serve(request);
        }
        self.seen += 1;
        let n = self.seen;
        if n <= self.config.drop_first {
            // Served but the reply is lost — state changes still happen,
            // exactly like a response lost on the wire.
            let _ = self.inner.serve(request);
            return None;
        }
        if n <= self.config.drop_first + self.config.fail_first {
            return Some(Response::Error(format!("chaos: injected fault #{n}")));
        }
        if self.config.delay_rate > 0.0 && self.draw() < self.config.delay_rate {
            std::thread::sleep(self.config.delay);
        }
        if self.config.drop_rate > 0.0 && self.draw() < self.config.drop_rate {
            let _ = self.inner.serve(request);
            return None;
        }
        if self.config.error_rate > 0.0 && self.draw() < self.config.error_rate {
            return Some(Response::Error(format!("chaos: injected fault #{n}")));
        }
        let response = self.inner.serve(request)?;
        if self.config.garble_rate > 0.0 && self.draw() < self.config.garble_rate {
            return Some(Self::garble(response));
        }
        Some(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bare_node() -> FederationNode {
        FederationNode::new("chaotic", 1)
    }

    #[test]
    fn deterministic_windows_then_clean() {
        let config = ChaosConfig { drop_first: 1, fail_first: 1, ..ChaosConfig::default() };
        let mut chaos = ChaosNode::new(bare_node(), config);
        assert!(chaos.serve(&Request::Status).is_none(), "first response dropped");
        assert!(
            matches!(chaos.serve(&Request::Status), Some(Response::Error(_))),
            "second response errors"
        );
        assert!(
            matches!(chaos.serve(&Request::Status), Some(Response::Status { .. })),
            "then the node behaves"
        );
    }

    #[test]
    fn only_kinds_scopes_the_chaos() {
        let config = ChaosConfig {
            fail_first: 100,
            only_kinds: vec!["ListDatasets".to_owned()],
            ..ChaosConfig::default()
        };
        let mut chaos = ChaosNode::new(bare_node(), config);
        assert!(matches!(chaos.serve(&Request::Status), Some(Response::Status { .. })));
        assert!(matches!(chaos.serve(&Request::ListDatasets), Some(Response::Error(_))));
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let config = ChaosConfig { drop_rate: 0.5, ..ChaosConfig::default() };
        let mut a = ChaosNode::new(bare_node(), config.clone());
        let mut b = ChaosNode::new(bare_node(), config);
        for _ in 0..64 {
            let ra = a.serve(&Request::Status).is_some();
            let rb = b.serve(&Request::Status).is_some();
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn garbled_chunk_is_corrupt_not_missing() {
        match ChaosNode::garble(Response::Chunk {
            ticket: 1,
            index: 0,
            data: vec![1, 2, 3, 4],
            last: true,
        }) {
            Response::Chunk { data, .. } => assert_ne!(data, vec![1, 2, 3, 4]),
            other => panic!("{other:?}"),
        }
        assert!(matches!(ChaosNode::garble(Response::Ok), Response::Ok));
        assert!(matches!(ChaosNode::garble(Response::Error("e".into())), Response::Ok));
    }
}
