//! Fault-tolerance policy for federation calls.
//!
//! Remote peers in the §4.4 federation can stall, crash mid-conversation,
//! or answer garbage. [`CallPolicy`] bounds what one request/response
//! exchange may cost: a per-request **deadline**, bounded **retries** with
//! exponential backoff and deterministic jitter (idempotent request kinds
//! only), and a per-node **circuit breaker** that fails fast once a node
//! keeps missing its deadlines and probes it again after a cooldown
//! (half-open). [`NodeHealth`] is how degraded operations report which
//! peers they could and could not reach.

use std::time::{Duration, Instant};

/// Bounds on one federation request/response exchange.
///
/// The policy lives on the [`Federation`](crate::Federation) and applies
/// to every `call` — and therefore to `discover`, `ship_query`,
/// `ship_data`, and `execute_distributed`, which are all built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallPolicy {
    /// Maximum wall time to wait for a single response.
    pub deadline: Duration,
    /// Retries after the first attempt. Only idempotent request kinds
    /// (see [`Request::is_idempotent`](crate::Request::is_idempotent))
    /// are retried; a lost `Execute` or `Upload` is never replayed.
    pub max_retries: usize,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter. Two federations with
    /// the same seed sleep the same amounts — failure runs reproduce.
    pub jitter_seed: u64,
    /// Consecutive transport failures (timeout / node down) that open a
    /// node's circuit breaker. Remote application errors do not count.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects calls before letting one
    /// half-open probe through.
    pub breaker_cooldown: Duration,
}

impl Default for CallPolicy {
    fn default() -> CallPolicy {
        CallPolicy {
            deadline: Duration::from_secs(30),
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5eed_f00d,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_secs(1),
        }
    }
}

impl CallPolicy {
    /// Backoff before retry number `attempt` (0-based) against `node`:
    /// exponential growth capped at [`backoff_cap`](Self::backoff_cap),
    /// with deterministic jitter in `[50%, 100%]` of the nominal value so
    /// concurrent retriers de-synchronise without a shared clock or RNG.
    pub fn backoff(&self, node: &str, attempt: usize) -> Duration {
        let nominal =
            self.backoff_base.saturating_mul(1u32 << attempt.min(16) as u32).min(self.backoff_cap);
        let nanos = nominal.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos < 2 {
            return nominal;
        }
        // FNV-mix the (seed, node, attempt) identity, then xorshift.
        let mut h = self.jitter_seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in node.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        h = (h ^ attempt as u64).wrapping_mul(0x1000_0000_01b3);
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        let half = nanos / 2;
        Duration::from_nanos(half + h % (nanos - half + 1))
    }

    /// A copy of this policy whose per-call spend fits inside
    /// `remaining` wall time — used to make federated calls inherit a
    /// query governor's deadline. The per-request deadline and the
    /// backoff bounds shrink to at most `remaining`, and retries that
    /// could not possibly start before the budget runs out are dropped
    /// (each attempt needs a deadline wait, each retry a backoff sleep).
    /// With `remaining` = zero the result admits a single attempt that
    /// times out immediately, so callers still get a typed timeout
    /// rather than a hang.
    pub fn clamped_to(&self, remaining: Duration) -> CallPolicy {
        let deadline = self.deadline.min(remaining);
        let backoff_cap = self.backoff_cap.min(remaining);
        let backoff_base = self.backoff_base.min(backoff_cap);
        // Worst-case wall time of attempt k (0-based): k+1 deadline
        // waits plus k capped backoffs. Keep retries whose attempt can
        // begin within the budget.
        let mut max_retries = 0;
        for k in 1..=self.max_retries {
            let waits = deadline.saturating_mul(k as u32);
            let sleeps = backoff_cap.saturating_mul(k as u32);
            if waits.saturating_add(sleeps) < remaining {
                max_retries = k;
            } else {
                break;
            }
        }
        CallPolicy { deadline, max_retries, backoff_base, backoff_cap, ..self.clone() }
    }
}

/// Circuit breaker state of one node, as seen by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are rejected locally without touching the node.
    Open,
    /// Cooldown elapsed; one probe call is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding used by `nggc_fed_breaker_state`:
    /// 0 closed, 1 half-open, 2 open.
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::HalfOpen => 1,
            BreakerState::Open => 2,
        }
    }
}

/// Per-node breaker bookkeeping (coordinator side).
#[derive(Debug)]
pub(crate) struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker { state: BreakerState::Closed, consecutive_failures: 0, opened_at: None }
    }
}

impl Breaker {
    /// Current state (transitions Open → HalfOpen when the cooldown has
    /// elapsed, so callers observe the probe-eligible state).
    pub(crate) fn state(&self) -> BreakerState {
        self.state
    }

    /// May a call proceed right now? Open breakers transition to
    /// half-open once the cooldown has elapsed and admit one probe.
    pub(crate) fn admit(&mut self, policy: &CallPolicy) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let cooled =
                    self.opened_at.map(|t| t.elapsed() >= policy.breaker_cooldown).unwrap_or(true);
                if cooled {
                    self.state = BreakerState::HalfOpen;
                }
                cooled
            }
        }
    }

    /// The node answered (even with an application error): the transport
    /// is healthy, so close the breaker and reset the failure streak.
    pub(crate) fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.opened_at = None;
    }

    /// A transport failure (timeout or node down). Returns `true` when
    /// this failure opened the breaker.
    pub(crate) fn on_transport_failure(&mut self, policy: &CallPolicy) -> bool {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let should_open = self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= policy.breaker_threshold;
        if should_open && self.state != BreakerState::Open {
            self.state = BreakerState::Open;
            self.opened_at = Some(Instant::now());
            return true;
        }
        if should_open {
            // Already open; restart the cooldown.
            self.opened_at = Some(Instant::now());
        }
        false
    }
}

/// How reachable one node was during a degraded-mode operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Answered on the first attempt.
    Healthy,
    /// Answered, but only after one or more retries.
    Degraded,
    /// Did not answer within the retry budget (or its breaker is open).
    Unavailable,
}

/// Per-node health report attached to degraded-mode results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeHealth {
    /// Node identifier.
    pub node: String,
    /// Reachability during the reported operation.
    pub status: NodeStatus,
    /// Breaker state after the operation.
    pub breaker: BreakerState,
    /// Retries spent reaching the node during the operation.
    pub retries: u64,
    /// The terminal error, for unavailable nodes.
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = CallPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            jitter_seed: 7,
            ..CallPolicy::default()
        };
        for attempt in 0..12 {
            let a = policy.backoff("node-a", attempt);
            let b = policy.backoff("node-a", attempt);
            assert_eq!(a, b, "same identity, same jitter");
            let nominal = policy
                .backoff_base
                .saturating_mul(1 << attempt.min(16) as u32)
                .min(policy.backoff_cap);
            assert!(a <= nominal, "attempt {attempt}: {a:?} > {nominal:?}");
            assert!(a >= nominal / 2, "attempt {attempt}: {a:?} < half of {nominal:?}");
        }
        // Different nodes jitter differently (with overwhelming likelihood).
        assert_ne!(policy.backoff("node-a", 3), policy.backoff("node-b", 3));
    }

    #[test]
    fn clamped_policy_fits_inside_remaining_time() {
        let policy = CallPolicy {
            deadline: Duration::from_secs(30),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            ..CallPolicy::default()
        };
        // Plenty of time: nothing changes.
        let roomy = policy.clamped_to(Duration::from_secs(600));
        assert_eq!(roomy, policy);
        // 100 ms left: deadline and backoffs shrink, retries vanish
        // (a second attempt could not start before the budget ends).
        let tight = policy.clamped_to(Duration::from_millis(100));
        assert_eq!(tight.deadline, Duration::from_millis(100));
        assert!(tight.backoff_cap <= Duration::from_millis(100));
        assert_eq!(tight.max_retries, 0);
        // Zero budget: still one immediate-timeout attempt, no hang.
        let zero = policy.clamped_to(Duration::ZERO);
        assert_eq!(zero.deadline, Duration::ZERO);
        assert_eq!(zero.max_retries, 0);
        // Intermediate budget keeps only the retries that fit.
        let some = CallPolicy {
            deadline: Duration::from_millis(10),
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(1),
            ..CallPolicy::default()
        }
        .clamped_to(Duration::from_millis(20));
        assert_eq!(some.max_retries, 1, "one retry fits in 20 ms, two do not");
    }

    #[test]
    fn breaker_state_machine() {
        let policy = CallPolicy {
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(20),
            ..CallPolicy::default()
        };
        let mut b = Breaker::default();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(&policy));
        assert!(!b.on_transport_failure(&policy));
        assert!(!b.on_transport_failure(&policy));
        assert!(b.admit(&policy), "still closed below threshold");
        assert!(b.on_transport_failure(&policy), "third failure opens");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.admit(&policy), "open rejects before cooldown");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit(&policy), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-opens immediately…
        b.on_transport_failure(&policy);
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit(&policy));
        // …and a successful probe closes and resets the streak.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(&policy));
    }
}
