//! The federation wire protocol.
//!
//! §4.4 sketches "simple interaction protocols, typically for: requesting
//! information about remote datasets ...; transmitting a query in
//! high-level format and obtain[ing] data about its compilation, not only
//! limited to correctness, but including also estimates of the data sizes
//! of results; launching query execution and then controlling the
//! transmission of results, so as to be in control of staging resources
//! and of communication load." The three message families below map to
//! those three bullets; results stream back in fixed-size chunks the
//! client pulls at its own pace.

use nggc_gdm::{DatasetStats, Schema};
use serde::{Deserialize, Serialize};

/// A request from a coordinator to a federation node.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum Request {
    /// List the datasets the node owns.
    ListDatasets,
    /// Detailed information about one dataset.
    DatasetInfo {
        /// Dataset name.
        name: String,
    },
    /// Compile a GMQL query: correctness + schemas + size estimates.
    Compile {
        /// GMQL query text.
        query: String,
    },
    /// Execute a GMQL query; the node stages results for chunked
    /// retrieval and returns a ticket.
    Execute {
        /// GMQL query text.
        query: String,
        /// Preferred chunk size in bytes.
        chunk_bytes: usize,
    },
    /// Pull one chunk of a staged result.
    FetchChunk {
        /// Ticket from [`Response::Accepted`].
        ticket: u64,
        /// Chunk index (0-based).
        chunk: usize,
    },
    /// Fetch a whole dataset (the ship-data anti-pattern E7 measures).
    FetchDataset {
        /// Dataset name.
        name: String,
    },
    /// Release a staged result.
    Release {
        /// Ticket to release.
        ticket: u64,
    },
    /// Upload a user dataset for use in subsequent queries. §4.3: "It
    /// will be possible to provide user input samples to the services,
    /// whose privacy will be protected" — uploads are marked temporary
    /// and dropped on request (or when the node is shut down), and they
    /// never appear in ListDatasets.
    Upload {
        /// Temporary dataset name (queries reference it directly).
        name: String,
        /// Serialized dataset.
        data: Vec<u8>,
    },
    /// Drop a previously uploaded user dataset.
    DropUpload {
        /// The temporary name.
        name: String,
    },
    /// Ask the node how many results it holds staged and how many user
    /// uploads are live — the observability hook degraded-mode clients
    /// use to verify no tickets leaked after a failed conversation.
    Status,
}

/// Summary of one remote dataset.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Region schema (enough to formalise queries, §4.4).
    pub schema: Schema,
    /// Cardinality statistics.
    pub stats: DatasetStats,
}

/// Estimated output size returned by Compile.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct SizeEstimate {
    /// Output name.
    pub name: String,
    /// Estimated samples.
    pub samples: usize,
    /// Estimated regions.
    pub regions: usize,
    /// Estimated serialized bytes.
    pub bytes: usize,
}

/// A response from a node.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum Response {
    /// Answer to ListDatasets.
    Datasets(Vec<DatasetSummary>),
    /// Answer to DatasetInfo.
    Info(DatasetSummary),
    /// Answer to Compile.
    Compiled {
        /// `(output name, schema)` for each MATERIALIZE.
        outputs: Vec<(String, Schema)>,
        /// Size estimates per output.
        estimates: Vec<SizeEstimate>,
    },
    /// Answer to Execute: results are staged.
    Accepted {
        /// Retrieval ticket.
        ticket: u64,
        /// Output names staged under the ticket.
        outputs: Vec<String>,
        /// Number of chunks to fetch.
        chunks: usize,
        /// Total staged bytes.
        total_bytes: usize,
    },
    /// One chunk of a staged result.
    Chunk {
        /// The ticket.
        ticket: u64,
        /// Chunk index.
        index: usize,
        /// Serialized payload bytes.
        data: Vec<u8>,
        /// True when this is the final chunk.
        last: bool,
    },
    /// A whole dataset (ship-data path).
    WholeDataset {
        /// Serialized dataset.
        data: Vec<u8>,
    },
    /// Answer to Status.
    Status {
        /// Results currently staged for chunked retrieval.
        staged_results: usize,
        /// Live (not yet dropped) user uploads.
        uploads: usize,
    },
    /// Acknowledgement (Release).
    Ok,
    /// An error.
    Error(String),
}

impl Request {
    /// Serialized size of the message, for transfer accounting.
    pub fn wire_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Variant name, used as the `kind` label of federation metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::ListDatasets => "ListDatasets",
            Request::DatasetInfo { .. } => "DatasetInfo",
            Request::Compile { .. } => "Compile",
            Request::Execute { .. } => "Execute",
            Request::FetchChunk { .. } => "FetchChunk",
            Request::FetchDataset { .. } => "FetchDataset",
            Request::Release { .. } => "Release",
            Request::Upload { .. } => "Upload",
            Request::DropUpload { .. } => "DropUpload",
            Request::Status => "Status",
        }
    }

    /// Whether replaying the request after a lost response is safe.
    ///
    /// Read-only exchanges (listings, compilation, chunk and dataset
    /// fetches) can repeat without changing node state, so the retry
    /// machinery in [`Federation::call`](crate::Federation::call) may
    /// replay them. `Execute` stages a fresh ticket per send, `Upload`
    /// re-registers, and `Release`/`DropUpload` fail on the second
    /// delivery — none of those are retried automatically.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::ListDatasets
                | Request::DatasetInfo { .. }
                | Request::Compile { .. }
                | Request::FetchChunk { .. }
                | Request::FetchDataset { .. }
                | Request::Status
        )
    }
}

impl Response {
    /// Serialized size of the message, for transfer accounting.
    pub fn wire_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }
}

/// Trace context attached to a request so the node records its spans
/// under the coordinator's trace (`nggc-obs` stays dependency-free, so
/// the serde mirror lives here).
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct TraceHeader {
    /// The coordinator's trace id.
    pub trace_id: u64,
    /// The coordinator-side span (`fed.call`) the node's spans are
    /// parented under.
    pub parent_span: u64,
}

/// A finished span serialized for shipping back to the coordinator,
/// piggybacked on the response.
///
/// Durations travel as integer nanoseconds; span ids are process-global
/// on both sides, and since the in-process harness shares one id
/// counter they never collide at stitch time.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct WireSpan {
    /// Span id.
    pub id: u64,
    /// Parent span id (possibly a coordinator-side span).
    pub parent: Option<u64>,
    /// Trace the span belongs to.
    pub trace_id: u64,
    /// Span name.
    pub name: String,
    /// Start offset from the recording process's trace epoch, in ns.
    pub start_ns: u64,
    /// Wall time in ns.
    pub wall_ns: u64,
    /// `key=value` fields.
    pub fields: Vec<(String, String)>,
}

impl From<&nggc_obs::SpanRecord> for WireSpan {
    fn from(rec: &nggc_obs::SpanRecord) -> WireSpan {
        WireSpan {
            id: rec.id,
            parent: rec.parent,
            trace_id: rec.trace_id,
            name: rec.name.clone(),
            start_ns: rec.start.as_nanos() as u64,
            wall_ns: rec.wall.as_nanos() as u64,
            fields: rec.fields.clone(),
        }
    }
}

impl WireSpan {
    /// Convert back into a [`nggc_obs::SpanRecord`] for re-injection on
    /// the coordinator side.
    pub fn into_record(self) -> nggc_obs::SpanRecord {
        nggc_obs::SpanRecord {
            id: self.id,
            parent: self.parent,
            trace_id: self.trace_id,
            name: self.name,
            start: std::time::Duration::from_nanos(self.start_ns),
            wall: std::time::Duration::from_nanos(self.wall_ns),
            fields: self.fields,
        }
    }
}

/// Bidirectional transfer accounting for one conversation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferLog {
    /// Messages sent (requests).
    pub requests: usize,
    /// Bytes sent to the node.
    pub bytes_sent: usize,
    /// Bytes received from the node.
    pub bytes_received: usize,
}

impl TransferLog {
    /// Record one request/response exchange.
    pub fn record(&mut self, req: &Request, resp: &Response) {
        self.requests += 1;
        self.bytes_sent += req.wire_size();
        self.bytes_received += resp.wire_size();
    }

    /// Total bytes moved in either direction.
    pub fn total(&self) -> usize {
        self.bytes_sent + self.bytes_received
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_positive_and_roundtrip() {
        let req = Request::Compile { query: "X = SELECT(a == 1) D;".into() };
        assert!(req.wire_size() > 10);
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn wire_span_roundtrips_through_record() {
        let rec = nggc_obs::SpanRecord {
            id: 9,
            parent: Some(4),
            trace_id: 77,
            name: "exec.node".into(),
            start: std::time::Duration::from_micros(12),
            wall: std::time::Duration::from_micros(340),
            fields: vec![("op".into(), "MAP".into())],
        };
        let wire = WireSpan::from(&rec);
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireSpan = serde_json::from_str(&json).unwrap();
        let rec2 = back.into_record();
        assert_eq!(rec2.id, rec.id);
        assert_eq!(rec2.parent, rec.parent);
        assert_eq!(rec2.trace_id, rec.trace_id);
        assert_eq!(rec2.name, rec.name);
        assert_eq!(rec2.start, rec.start);
        assert_eq!(rec2.wall, rec.wall);
        assert_eq!(rec2.fields, rec.fields);
    }

    #[test]
    fn transfer_log_accumulates() {
        let mut log = TransferLog::default();
        let req = Request::ListDatasets;
        let resp = Response::Ok;
        log.record(&req, &resp);
        log.record(&req, &resp);
        assert_eq!(log.requests, 2);
        assert_eq!(log.total(), 2 * (req.wire_size() + resp.wire_size()));
    }
}
