//! # `nggc-federation` — federated GMQL query processing
//!
//! Implements the §4.4 vision: cooperating repository nodes form a
//! federation; GMQL queries ship to the node owning the data, execute
//! there, and only (small) results travel back, with compile-time size
//! estimates and client-controlled staged retrieval. Every message is
//! byte-accounted, which is how experiment E7 quantifies the paper's
//! "move processing to data" claim against today's ship-data practice.

#![warn(missing_docs)]

pub mod federation;
pub mod node;
pub mod protocol;

pub use federation::{DistributedPlan, Federation, FederationError};
pub use node::{decode_staged, FederationNode};
pub use protocol::{DatasetSummary, Request, Response, SizeEstimate, TransferLog};
