//! # `nggc-federation` — federated GMQL query processing
//!
//! Implements the §4.4 vision: cooperating repository nodes form a
//! federation; GMQL queries ship to the node owning the data, execute
//! there, and only (small) results travel back, with compile-time size
//! estimates and client-controlled staged retrieval. Every message is
//! byte-accounted, which is how experiment E7 quantifies the paper's
//! "move processing to data" claim against today's ship-data practice.
//!
//! Remote peers fail, so every exchange runs under a [`CallPolicy`]:
//! per-request deadlines, bounded retries with deterministic backoff
//! for idempotent request kinds, and per-node circuit breakers with
//! half-open probing. Degraded-mode entry points return partial results
//! plus a [`NodeHealth`] report instead of failing the federation when
//! a minority of nodes is down, and [`ChaosNode`] injects seeded,
//! reproducible faults so all of it is testable in-process. See
//! `docs/federation.md` for the full semantics.

#![warn(missing_docs)]

pub mod chaos;
pub mod federation;
pub mod node;
pub mod policy;
pub mod protocol;

pub use chaos::{ChaosConfig, ChaosNode};
pub use federation::{DegradedOutcome, DistributedPlan, Federation, FederationError};
pub use node::{decode_staged, FederationNode, NodeService};
pub use policy::{BreakerState, CallPolicy, NodeHealth, NodeStatus};
pub use protocol::{
    DatasetSummary, Request, Response, SizeEstimate, TraceHeader, TransferLog, WireSpan,
};
