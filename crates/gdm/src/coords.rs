//! Genomic coordinates: chromosomes and strands.
//!
//! GDM fixes the first region attributes to `(chr, left, right, strand)`
//! (paper §2, Figure 2). Chromosome names are interned behind an
//! [`std::sync::Arc`] so that cloning a region is cheap even with
//! free-form contig names.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A chromosome (contig) name.
///
/// Cheap to clone (`Arc<str>` internally). Ordering is *genome order*:
/// `chr2 < chr10` (numeric-aware comparison of digit runs), which matches
/// the ordering used by genome browsers and the GDM native format.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Chrom(Arc<str>);

impl Chrom {
    /// Create a chromosome from a name. Leading/trailing whitespace is
    /// trimmed; the name is otherwise stored verbatim.
    pub fn new(name: &str) -> Chrom {
        Chrom(Arc::from(name.trim()))
    }

    /// The chromosome name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Numeric-aware comparison: digit runs compare as integers, other
    /// characters bytewise. `chr2` sorts before `chr10`.
    fn genome_cmp(a: &str, b: &str) -> Ordering {
        let (mut ia, mut ib) = (a.as_bytes().iter().peekable(), b.as_bytes().iter().peekable());
        loop {
            match (ia.peek().copied(), ib.peek().copied()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(&ca), Some(&cb)) => {
                    if ca.is_ascii_digit() && cb.is_ascii_digit() {
                        // Compare the whole digit runs numerically.
                        let mut na: u64 = 0;
                        while let Some(&&c) = ia.peek() {
                            if c.is_ascii_digit() {
                                na = na.saturating_mul(10).saturating_add(u64::from(c - b'0'));
                                ia.next();
                            } else {
                                break;
                            }
                        }
                        let mut nb: u64 = 0;
                        while let Some(&&c) = ib.peek() {
                            if c.is_ascii_digit() {
                                nb = nb.saturating_mul(10).saturating_add(u64::from(c - b'0'));
                                ib.next();
                            } else {
                                break;
                            }
                        }
                        match na.cmp(&nb) {
                            Ordering::Equal => {}
                            ord => return ord,
                        }
                    } else {
                        match ca.cmp(&cb) {
                            Ordering::Equal => {
                                ia.next();
                                ib.next();
                            }
                            ord => return ord,
                        }
                    }
                }
            }
        }
    }
}

impl PartialEq for Chrom {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}
impl Eq for Chrom {}

impl PartialOrd for Chrom {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Chrom {
    fn cmp(&self, other: &Self) -> Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Ordering::Equal;
        }
        Chrom::genome_cmp(&self.0, &other.0)
    }
}

impl std::hash::Hash for Chrom {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl fmt::Display for Chrom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Chrom {
    fn from(s: &str) -> Self {
        Chrom::new(s)
    }
}

/// DNA strand of a region: `+`, `-`, or `*` when the region is unstranded
/// (paper §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Strand {
    /// Forward (`+`) strand.
    Pos,
    /// Reverse (`-`) strand.
    Neg,
    /// Not stranded (`*`).
    #[default]
    Unstranded,
}

impl Strand {
    /// Parse `+`, `-`, `*` (and `.` as an unstranded alias used by BED).
    pub fn parse(token: &str) -> Option<Strand> {
        match token {
            "+" => Some(Strand::Pos),
            "-" => Some(Strand::Neg),
            "*" | "." | "" => Some(Strand::Unstranded),
            _ => None,
        }
    }

    /// Canonical single-character rendering.
    pub fn symbol(self) -> char {
        match self {
            Strand::Pos => '+',
            Strand::Neg => '-',
            Strand::Unstranded => '*',
        }
    }

    /// GMQL strand-compatibility rule: two regions are strand-compatible
    /// when either is unstranded or both have the same orientation. Used
    /// by genometric JOIN, MAP, DIFFERENCE and COVER.
    pub fn compatible(self, other: Strand) -> bool {
        self == Strand::Unstranded || other == Strand::Unstranded || self == other
    }
}

impl fmt::Display for Strand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// An order key placing regions in genome order: by chromosome, then left
/// end, then right end, then strand (`+` < `-` < `*`).
pub fn genome_order(a: (&Chrom, u64, u64, Strand), b: (&Chrom, u64, u64, Strand)) -> Ordering {
    fn strand_rank(s: Strand) -> u8 {
        match s {
            Strand::Pos => 0,
            Strand::Neg => 1,
            Strand::Unstranded => 2,
        }
    }
    a.0.cmp(b.0)
        .then(a.1.cmp(&b.1))
        .then(a.2.cmp(&b.2))
        .then(strand_rank(a.3).cmp(&strand_rank(b.3)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrom_numeric_order() {
        let c2 = Chrom::new("chr2");
        let c10 = Chrom::new("chr10");
        let cx = Chrom::new("chrX");
        assert!(c2 < c10, "chr2 must sort before chr10");
        assert!(c10 < cx, "numbers before letters");
        assert_eq!(Chrom::new(" chr1 "), Chrom::new("chr1"));
    }

    #[test]
    fn chrom_equal_names_equal() {
        assert_eq!(Chrom::new("chr7"), Chrom::new("chr7"));
        assert_ne!(Chrom::new("chr7"), Chrom::new("chr8"));
    }

    #[test]
    fn strand_parse_and_symbol() {
        assert_eq!(Strand::parse("+"), Some(Strand::Pos));
        assert_eq!(Strand::parse("-"), Some(Strand::Neg));
        assert_eq!(Strand::parse("*"), Some(Strand::Unstranded));
        assert_eq!(Strand::parse("."), Some(Strand::Unstranded));
        assert_eq!(Strand::parse("x"), None);
        assert_eq!(Strand::Pos.symbol(), '+');
    }

    #[test]
    fn strand_compatibility() {
        use Strand::*;
        assert!(Pos.compatible(Pos));
        assert!(!Pos.compatible(Neg));
        assert!(Pos.compatible(Unstranded));
        assert!(Unstranded.compatible(Neg));
    }

    #[test]
    fn genome_order_keys() {
        let c1 = Chrom::new("chr1");
        let c2 = Chrom::new("chr2");
        assert_eq!(
            genome_order((&c1, 10, 20, Strand::Pos), (&c2, 0, 5, Strand::Pos)),
            Ordering::Less
        );
        assert_eq!(
            genome_order((&c1, 10, 20, Strand::Pos), (&c1, 10, 30, Strand::Pos)),
            Ordering::Less
        );
        assert_eq!(
            genome_order((&c1, 10, 20, Strand::Pos), (&c1, 10, 20, Strand::Unstranded)),
            Ordering::Less
        );
    }

    #[test]
    fn digit_run_overflow_is_saturating() {
        // Absurdly long digit runs must not panic.
        let a = Chrom::new("chr99999999999999999999999999");
        let b = Chrom::new("chr1");
        assert!(b < a);
    }
}
