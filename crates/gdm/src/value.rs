//! Typed attribute values carried by genomic regions.
//!
//! The GDM region schema is a table of *typed* attributes (paper §2); a
//! [`Value`] is one cell of that table. Values support a **total order**
//! (NaN sorts last among floats, cross-type order is by type tag) so that
//! regions can always be sorted and aggregated deterministically.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The type of a region attribute, as declared in a dataset schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean flag.
    Bool,
}

impl ValueType {
    /// Canonical lowercase name used by the GDM native format and GMQL.
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "string",
            ValueType::Bool => "bool",
        }
    }

    /// Parse a type name as written in schema files. Accepts the aliases
    /// used by the original GMQL repository (`long`, `double`, `char`).
    pub fn parse(name: &str) -> Option<ValueType> {
        match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "long" => Some(ValueType::Int),
            "float" | "double" => Some(ValueType::Float),
            "string" | "str" | "char" | "text" => Some(ValueType::Str),
            "bool" | "boolean" | "flag" => Some(ValueType::Bool),
            _ => None,
        }
    }

    /// True when values of this type can be used in numeric aggregates.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::Int | ValueType::Float)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One attribute value of a genomic region.
///
/// `Value` is intentionally small (24 bytes + string spill) because region
/// files routinely carry tens of millions of rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Floating point value. May be NaN (e.g. missing signal).
    Float(f64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
    /// Explicit null — produced by schema merging for attributes a sample
    /// does not carry (paper §2, "schema merging").
    Null,
}

impl Value {
    /// The type of this value, or `None` for `Null` (null is typeless and
    /// admissible in any column).
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Str(_) => Some(ValueType::Str),
            Value::Bool(_) => Some(ValueType::Bool),
            Value::Null => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, for aggregates and arithmetic predicates.
    /// Integers widen to `f64`; booleans map to 0/1; strings and nulls are
    /// not numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(_) | Value::Null => None,
        }
    }

    /// Integer view, truncating floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// String view (only for `Str`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a textual token into a value of the requested type.
    ///
    /// The conventions follow BED-family files: `.` and the empty string
    /// denote null; case-insensitive `true`/`false` for booleans.
    pub fn parse_as(token: &str, ty: ValueType) -> Result<Value, ValueParseError> {
        if token.is_empty() || token == "." || token.eq_ignore_ascii_case("null") {
            return Ok(Value::Null);
        }
        let err = || ValueParseError { token: token.to_owned(), ty };
        match ty {
            ValueType::Int => token
                .parse::<i64>()
                // Tolerate "12.0"-style integers emitted by float-happy tools.
                .or_else(|_| token.parse::<f64>().map(|f| f as i64))
                .map(Value::Int)
                .map_err(|_| err()),
            ValueType::Float => token.parse::<f64>().map(Value::Float).map_err(|_| err()),
            ValueType::Str => Ok(Value::Str(token.to_owned())),
            ValueType::Bool => match token.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Ok(Value::Bool(true)),
                "false" | "f" | "0" => Ok(Value::Bool(false)),
                _ => Err(err()),
            },
        }
    }

    /// Render the value in the GDM native / BED textual convention
    /// (nulls as `.`).
    pub fn render(&self) -> String {
        match self {
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.is_nan() {
                    "NaN".to_owned()
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
            Value::Null => ".".to_owned(),
        }
    }

    /// Total order used for sorting and MIN/MAX/MEDIAN aggregates.
    ///
    /// Within a type the natural order applies (NaN greater than all other
    /// floats); across types the order is Null < Bool < Int ~ Float < Str,
    /// with ints and floats compared numerically.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(_) | Float(_), Int(_) | Float(_)) => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                a.total_cmp(&b)
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Approximate serialized size in bytes, used for result-size
    /// estimation in the federation protocol (paper §4.4).
    pub fn encoded_size(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len() + 4,
            Value::Null => 1,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Error produced when a token cannot be parsed as the declared type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueParseError {
    /// The offending token.
    pub token: String,
    /// The type it was expected to have.
    pub ty: ValueType,
}

impl fmt::Display for ValueParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse {:?} as {}", self.token, self.ty)
    }
}

impl std::error::Error for ValueParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_roundtrip() {
        for ty in [ValueType::Int, ValueType::Float, ValueType::Str, ValueType::Bool] {
            assert_eq!(ValueType::parse(ty.name()), Some(ty));
        }
        assert_eq!(ValueType::parse("DOUBLE"), Some(ValueType::Float));
        assert_eq!(ValueType::parse("long"), Some(ValueType::Int));
        assert_eq!(ValueType::parse("whatever"), None);
    }

    #[test]
    fn parse_null_conventions() {
        assert_eq!(Value::parse_as(".", ValueType::Float).unwrap(), Value::Null);
        assert_eq!(Value::parse_as("", ValueType::Int).unwrap(), Value::Null);
        assert_eq!(Value::parse_as("NULL", ValueType::Str).unwrap(), Value::Null);
    }

    #[test]
    fn parse_int_tolerates_float_notation() {
        assert_eq!(Value::parse_as("12.0", ValueType::Int).unwrap(), Value::Int(12));
        assert_eq!(Value::parse_as("-3", ValueType::Int).unwrap(), Value::Int(-3));
        assert!(Value::parse_as("abc", ValueType::Int).is_err());
    }

    #[test]
    fn parse_bool_variants() {
        for t in ["true", "T", "1"] {
            assert_eq!(Value::parse_as(t, ValueType::Bool).unwrap(), Value::Bool(true));
        }
        for t in ["false", "F", "0"] {
            assert_eq!(Value::parse_as(t, ValueType::Bool).unwrap(), Value::Bool(false));
        }
        assert!(Value::parse_as("yes?", ValueType::Bool).is_err());
    }

    #[test]
    fn total_order_mixed_numerics() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
        // NaN sorts above every finite float.
        assert_eq!(Value::Float(f64::NAN).total_cmp(&Value::Float(1e308)), Ordering::Greater);
        // Cross-type rank: Null < Bool < numeric < Str.
        assert_eq!(Value::Null.total_cmp(&Value::Bool(false)), Ordering::Less);
        assert_eq!(Value::Str("a".into()).total_cmp(&Value::Int(9)), Ordering::Greater);
    }

    #[test]
    fn render_roundtrip() {
        let v = Value::parse_as("3.25", ValueType::Float).unwrap();
        assert_eq!(v.render(), "3.25");
        assert_eq!(Value::Null.render(), ".");
        assert_eq!(
            Value::parse_as(&Value::Int(-7).render(), ValueType::Int).unwrap(),
            Value::Int(-7)
        );
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Float(2.9).as_i64(), Some(2));
        assert_eq!(Value::Null.as_i64(), None);
    }

    #[test]
    fn encoded_sizes() {
        assert_eq!(Value::Int(1).encoded_size(), 8);
        assert_eq!(Value::Str("abcd".into()).encoded_size(), 8);
        assert_eq!(Value::Null.encoded_size(), 1);
    }
}
