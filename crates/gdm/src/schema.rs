//! Region schemas and schema merging.
//!
//! A GDM dataset has a *normalized schema*: the fixed coordinate attributes
//! `(chr, left, right, strand)` followed by typed variable attributes that
//! reflect the calling process (paper §2). **Schema merging** builds a new
//! schema whose fixed part is shared and whose variable parts are
//! concatenated — the paper's interoperability mechanism across
//! heterogeneous processed-data formats.

use crate::error::GdmError;
use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Names of the fixed coordinate attributes, reserved in every schema.
pub const FIXED_ATTRIBUTES: [&str; 4] = ["chr", "left", "right", "strand"];

/// One variable attribute of a region schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (case-preserving; lookups are case-insensitive,
    /// matching GMQL behaviour).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Attribute {
        Attribute { name: name.into(), ty }
    }
}

/// The variable part of a dataset's region schema.
///
/// Invariants: attribute names are unique case-insensitively and never
/// collide with the fixed coordinate attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(try_from = "Vec<Attribute>", into = "Vec<Attribute>")]
pub struct Schema {
    attrs: Vec<Attribute>,
    index: HashMap<String, usize>,
}

impl TryFrom<Vec<Attribute>> for Schema {
    type Error = GdmError;
    fn try_from(attrs: Vec<Attribute>) -> Result<Schema, GdmError> {
        Schema::new(attrs)
    }
}

impl From<Schema> for Vec<Attribute> {
    fn from(s: Schema) -> Vec<Attribute> {
        s.attrs
    }
}

impl Schema {
    /// The empty schema (regions carry coordinates only).
    pub fn empty() -> Schema {
        Schema::default()
    }

    /// Build a schema from attributes, validating the invariants.
    pub fn new(attrs: Vec<Attribute>) -> Result<Schema, GdmError> {
        let mut s = Schema::default();
        for a in attrs {
            s.push(a)?;
        }
        Ok(s)
    }

    /// Append one attribute, rejecting duplicates and reserved names.
    pub fn push(&mut self, attr: Attribute) -> Result<(), GdmError> {
        let lower = attr.name.to_ascii_lowercase();
        if FIXED_ATTRIBUTES.contains(&lower.as_str()) {
            return Err(GdmError::ReservedAttribute(attr.name));
        }
        if self.index.contains_key(&lower) {
            return Err(GdmError::DuplicateAttribute(attr.name));
        }
        self.index.insert(lower, self.attrs.len());
        self.attrs.push(attr);
        Ok(())
    }

    /// Number of variable attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when there are no variable attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Case-insensitive position lookup.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.index.get(&name.to_ascii_lowercase()).copied()
    }

    /// Attribute by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&Attribute> {
        self.position(name).map(|i| &self.attrs[i])
    }

    /// Project onto a subset of attribute names (kept in the order given).
    pub fn project(&self, names: &[&str]) -> Result<(Schema, Vec<usize>), GdmError> {
        let mut out = Schema::default();
        let mut positions = Vec::with_capacity(names.len());
        for &n in names {
            let i = self.position(n).ok_or_else(|| GdmError::UnknownAttribute(n.to_owned()))?;
            positions.push(i);
            out.push(self.attrs[i].clone())?;
        }
        Ok((out, positions))
    }

    /// **Schema merging** (paper §2): fixed attributes stay in common,
    /// variable attributes are concatenated. Attributes present in both
    /// schemas with the same type are unified into one column; same-name
    /// attributes with conflicting types keep both columns, the right one
    /// renamed with a disambiguating suffix.
    ///
    /// Returns the merged schema plus, for each input side, the mapping
    /// from its attribute positions to positions in the merged schema —
    /// enough to re-shape any region row of either operand into the merged
    /// layout (absent columns become [`Value::Null`]).
    pub fn merge(&self, other: &Schema) -> MergedSchema {
        let mut merged = Schema::default();
        let mut left_map = Vec::with_capacity(self.attrs.len());
        for a in &self.attrs {
            left_map.push(merged.attrs.len());
            // Cannot fail: `self` already satisfies the invariants.
            merged.push(a.clone()).expect("left schema attributes are valid");
        }
        let mut right_map = Vec::with_capacity(other.attrs.len());
        for a in &other.attrs {
            match merged.get(&a.name) {
                Some(existing) if existing.ty == a.ty => {
                    right_map.push(merged.position(&a.name).expect("just found"));
                }
                Some(_) => {
                    // Type conflict: keep both, disambiguate the right one.
                    let mut n = 2;
                    let renamed = loop {
                        let candidate = format!("{}_{}", a.name, n);
                        if merged.get(&candidate).is_none() {
                            break candidate;
                        }
                        n += 1;
                    };
                    right_map.push(merged.attrs.len());
                    merged.push(Attribute::new(renamed, a.ty)).expect("renamed attribute is fresh");
                }
                None => {
                    right_map.push(merged.attrs.len());
                    merged.push(a.clone()).expect("fresh attribute");
                }
            }
        }
        MergedSchema { schema: merged, left_map, right_map }
    }

    /// Validate a row of values against this schema (arity + types; nulls
    /// are admissible everywhere).
    pub fn check_row(&self, values: &[Value]) -> Result<(), GdmError> {
        if values.len() != self.attrs.len() {
            return Err(GdmError::ArityMismatch { expected: self.attrs.len(), got: values.len() });
        }
        for (a, v) in self.attrs.iter().zip(values) {
            if let Some(t) = v.value_type() {
                if t != a.ty {
                    return Err(GdmError::TypeMismatch {
                        attribute: a.name.clone(),
                        expected: a.ty,
                        got: t,
                    });
                }
            }
        }
        Ok(())
    }

    /// Re-shape a row from this schema into a merged layout produced by
    /// [`Schema::merge`], filling absent columns with nulls.
    pub fn reshape_row(values: &[Value], map: &[usize], merged_len: usize) -> Vec<Value> {
        let mut out = vec![Value::Null; merged_len];
        for (src, &dst) in values.iter().zip(map) {
            out[dst] = src.clone();
        }
        out
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(chr, left, right, strand")?;
        for a in &self.attrs {
            write!(f, ", {}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// Result of [`Schema::merge`].
#[derive(Debug, Clone)]
pub struct MergedSchema {
    /// The merged schema.
    pub schema: Schema,
    /// For each left attribute position, its position in `schema`.
    pub left_map: Vec<usize>,
    /// For each right attribute position, its position in `schema`.
    pub right_map: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(pairs: &[(&str, ValueType)]) -> Schema {
        Schema::new(pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect()).unwrap()
    }

    #[test]
    fn reserved_and_duplicate_names_rejected() {
        assert!(matches!(
            Schema::new(vec![Attribute::new("LEFT", ValueType::Int)]),
            Err(GdmError::ReservedAttribute(_))
        ));
        assert!(matches!(
            Schema::new(vec![
                Attribute::new("score", ValueType::Float),
                Attribute::new("SCORE", ValueType::Int),
            ]),
            Err(GdmError::DuplicateAttribute(_))
        ));
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema(&[("P_Value", ValueType::Float)]);
        assert_eq!(s.position("p_value"), Some(0));
        assert_eq!(s.get("P_VALUE").unwrap().ty, ValueType::Float);
        assert_eq!(s.position("missing"), None);
    }

    #[test]
    fn merge_concatenates_and_unifies() {
        let a = schema(&[("p_value", ValueType::Float), ("name", ValueType::Str)]);
        let b = schema(&[("p_value", ValueType::Float), ("fold", ValueType::Float)]);
        let m = a.merge(&b);
        assert_eq!(
            m.schema.attributes().iter().map(|x| x.name.as_str()).collect::<Vec<_>>(),
            vec!["p_value", "name", "fold"]
        );
        assert_eq!(m.left_map, vec![0, 1]);
        assert_eq!(m.right_map, vec![0, 2]);
    }

    #[test]
    fn merge_type_conflict_renames() {
        let a = schema(&[("score", ValueType::Float)]);
        let b = schema(&[("score", ValueType::Str)]);
        let m = a.merge(&b);
        assert_eq!(
            m.schema.attributes().iter().map(|x| x.name.as_str()).collect::<Vec<_>>(),
            vec!["score", "score_2"]
        );
        assert_eq!(m.right_map, vec![1]);
    }

    #[test]
    fn merge_with_empty_is_identity_shape() {
        let a = schema(&[("x", ValueType::Int)]);
        let m = a.merge(&Schema::empty());
        assert_eq!(m.schema, a);
        let m2 = Schema::empty().merge(&a);
        assert_eq!(m2.schema.attributes(), a.attributes());
    }

    #[test]
    fn reshape_fills_nulls() {
        let a = schema(&[("x", ValueType::Int)]);
        let b = schema(&[("y", ValueType::Str)]);
        let m = a.merge(&b);
        let row = Schema::reshape_row(&[Value::Int(7)], &m.left_map, m.schema.len());
        assert_eq!(row, vec![Value::Int(7), Value::Null]);
        let row = Schema::reshape_row(&[Value::Str("q".into())], &m.right_map, m.schema.len());
        assert_eq!(row, vec![Value::Null, Value::Str("q".into())]);
    }

    #[test]
    fn check_row_validates() {
        let s = schema(&[("x", ValueType::Int), ("y", ValueType::Str)]);
        assert!(s.check_row(&[Value::Int(1), Value::Str("a".into())]).is_ok());
        assert!(s.check_row(&[Value::Int(1), Value::Null]).is_ok(), "null fits any column");
        assert!(matches!(
            s.check_row(&[Value::Int(1)]),
            Err(GdmError::ArityMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            s.check_row(&[Value::Str("no".into()), Value::Str("a".into())]),
            Err(GdmError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn project_keeps_order_given() {
        let s = schema(&[("a", ValueType::Int), ("b", ValueType::Float), ("c", ValueType::Str)]);
        let (p, idx) = s.project(&["c", "a"]).unwrap();
        assert_eq!(idx, vec![2, 0]);
        assert_eq!(p.attributes()[0].name, "c");
        assert!(s.project(&["zz"]).is_err());
    }

    #[test]
    fn display_format() {
        let s = schema(&[("p", ValueType::Float)]);
        assert_eq!(s.to_string(), "(chr, left, right, strand, p: float)");
    }
}
