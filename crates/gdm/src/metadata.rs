//! Sample metadata: the second GDM entity.
//!
//! Metadata are arbitrary, semi-structured attribute–value pairs, extended
//! into triples by the sample identifier (paper §2, Figure 2 lower part).
//! An attribute may carry *multiple* values for the same sample (e.g. two
//! `antibody` entries), so the store is a multimap.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Metadata of one sample: an ordered multimap `attribute -> values`.
///
/// Attribute names are case-preserving; lookups are case-insensitive,
/// matching the liberal practice of real repositories (paper §1 notes
/// biologists are "very liberal" with metadata).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Metadata {
    // BTreeMap keyed by lowercase name for deterministic iteration order;
    // each entry keeps the original spelling alongside the values.
    entries: BTreeMap<String, MetaEntry>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct MetaEntry {
    name: String,
    values: Vec<String>,
}

impl Metadata {
    /// Empty metadata.
    pub fn new() -> Metadata {
        Metadata::default()
    }

    /// Build from `(attribute, value)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Metadata {
        let mut m = Metadata::new();
        for (k, v) in pairs {
            m.insert(k, v);
        }
        m
    }

    /// Add one attribute–value pair. Duplicate `(attribute, value)` pairs
    /// are kept only once (set semantics per attribute, as in GMQL).
    pub fn insert(&mut self, attribute: &str, value: impl Into<String>) {
        let value = value.into();
        let e = self
            .entries
            .entry(attribute.to_ascii_lowercase())
            .or_insert_with(|| MetaEntry { name: attribute.to_owned(), values: Vec::new() });
        if !e.values.iter().any(|v| v == &value) {
            e.values.push(value);
        }
    }

    /// All values of an attribute (case-insensitive), empty when absent.
    pub fn get(&self, attribute: &str) -> &[String] {
        self.entries
            .get(&attribute.to_ascii_lowercase())
            .map(|e| e.values.as_slice())
            .unwrap_or(&[])
    }

    /// First value of an attribute, if any.
    pub fn first(&self, attribute: &str) -> Option<&str> {
        self.get(attribute).first().map(String::as_str)
    }

    /// True when the attribute exists with the given value (exact match).
    pub fn has(&self, attribute: &str, value: &str) -> bool {
        self.get(attribute).iter().any(|v| v == value)
    }

    /// True when the attribute is present at all.
    pub fn contains_attribute(&self, attribute: &str) -> bool {
        self.entries.contains_key(&attribute.to_ascii_lowercase())
    }

    /// Remove an attribute entirely; returns true when it existed.
    pub fn remove(&mut self, attribute: &str) -> bool {
        self.entries.remove(&attribute.to_ascii_lowercase()).is_some()
    }

    /// Iterate `(attribute, value)` triples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .values()
            .flat_map(|e| e.values.iter().map(move |v| (e.name.as_str(), v.as_str())))
    }

    /// Attribute names in deterministic order.
    pub fn attributes(&self) -> impl Iterator<Item = &str> {
        self.entries.values().map(|e| e.name.as_str())
    }

    /// Number of `(attribute, value)` pairs.
    pub fn len(&self) -> usize {
        self.entries.values().map(|e| e.values.len()).sum()
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Union with another metadata set (GMQL result-metadata rule for
    /// binary operators: the output sample carries both operands'
    /// metadata). `prefix`, when non-empty, is prepended to the other
    /// side's attribute names as `prefix.attr` — GMQL's convention to keep
    /// the origin distinguishable.
    pub fn merge_from(&mut self, other: &Metadata, prefix: &str) {
        for (k, v) in other.iter() {
            if prefix.is_empty() {
                self.insert(k, v);
            } else {
                self.insert(&format!("{prefix}.{k}"), v);
            }
        }
    }

    /// Approximate serialized size in bytes.
    pub fn encoded_size(&self) -> usize {
        self.iter().map(|(k, v)| k.len() + v.len() + 2).sum()
    }
}

impl fmt::Display for Metadata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k}\t{v}")?;
        }
        Ok(())
    }
}

impl<'a> FromIterator<(&'a str, &'a str)> for Metadata {
    fn from_iter<T: IntoIterator<Item = (&'a str, &'a str)>>(iter: T) -> Metadata {
        Metadata::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multimap_semantics() {
        let mut m = Metadata::new();
        m.insert("antibody", "CTCF");
        m.insert("antibody", "POLR2A");
        m.insert("antibody", "CTCF"); // duplicate pair ignored
        assert_eq!(m.get("antibody"), &["CTCF", "POLR2A"]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn case_insensitive_lookup_preserves_spelling() {
        let mut m = Metadata::new();
        m.insert("Cell_Line", "HeLa");
        assert_eq!(m.first("cell_line"), Some("HeLa"));
        assert!(m.has("CELL_LINE", "HeLa"));
        let attrs: Vec<_> = m.attributes().collect();
        assert_eq!(attrs, vec!["Cell_Line"]);
    }

    #[test]
    fn merge_with_prefix() {
        let mut a = Metadata::from_pairs([("tissue", "liver")]);
        let b = Metadata::from_pairs([("tissue", "brain"), ("sex", "F")]);
        a.merge_from(&b, "right");
        assert!(a.has("tissue", "liver"));
        assert!(a.has("right.tissue", "brain"));
        assert!(a.has("right.sex", "F"));
    }

    #[test]
    fn merge_without_prefix_unions() {
        let mut a = Metadata::from_pairs([("k", "1")]);
        let b = Metadata::from_pairs([("k", "2")]);
        a.merge_from(&b, "");
        assert_eq!(a.get("k"), &["1", "2"]);
    }

    #[test]
    fn iteration_is_deterministic() {
        let m = Metadata::from_pairs([("b", "2"), ("a", "1"), ("c", "3")]);
        let keys: Vec<_> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
    }

    #[test]
    fn remove_and_contains() {
        let mut m = Metadata::from_pairs([("x", "1")]);
        assert!(m.contains_attribute("X"));
        assert!(m.remove("x"));
        assert!(!m.remove("x"));
        assert!(m.is_empty());
    }

    #[test]
    fn display_tsv() {
        let m = Metadata::from_pairs([("a", "1"), ("b", "2")]);
        assert_eq!(m.to_string(), "a\t1\nb\t2");
    }
}
