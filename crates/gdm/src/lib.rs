//! # `nggc-gdm` — the Genomic Data Model
//!
//! Implementation of **GDM**, the data model proposed in *"Data Management
//! for Next Generation Genomic Computing"* (Ceri et al., EDBT 2016, §2).
//!
//! GDM rests on two entities:
//!
//! * **Genomic regions** ([`GRegion`]) — rows of a normalized schema whose
//!   fixed attributes are the sample identifier and the region coordinates
//!   (`chr`, `left`, `right`, `strand`), followed by typed variable
//!   attributes reflecting the calling process that produced the data
//!   (peaks, mutations, signals, loops, break points…).
//! * **Metadata** ([`Metadata`]) — arbitrary, semi-structured
//!   attribute–value pairs extended into triples by the sample identifier.
//!
//! Samples ([`Sample`]) tie the two together; a [`Dataset`] groups samples
//! under one shared region [`Schema`] (the single GDM constraint), and
//! [`Schema::merge`] implements the *schema merging* that gives
//! interoperability across heterogeneous processed-data formats.
//! Every sample also carries a [`Provenance`] lineage tree — tracing why
//! result regions were produced is a distinguishing feature of the
//! approach.
//!
//! ## Example: the Figure-2 PEAKS dataset
//!
//! ```
//! use nggc_gdm::*;
//!
//! let schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
//! let mut peaks = Dataset::new("PEAKS", schema);
//!
//! let s1 = Sample::new("sample_1", "PEAKS")
//!     .with_regions(vec![
//!         GRegion::new("chr1", 2940, 3400, Strand::Pos).with_values(vec![0.0001.into()]),
//!         GRegion::new("chr1", 6120, 7030, Strand::Neg).with_values(vec![0.00005.into()]),
//!     ])
//!     .with_metadata(Metadata::from_pairs([("karyotype", "cancer"), ("organism", "human")]));
//! peaks.add_sample(s1).unwrap();
//!
//! assert_eq!(peaks.sample_count(), 1);
//! peaks.validate().unwrap();
//! ```

#![warn(missing_docs)]

pub mod coords;
pub mod dataset;
pub mod error;
pub mod metadata;
pub mod provenance;
pub mod region;
pub mod sample;
pub mod schema;
pub mod value;

pub use coords::{genome_order, Chrom, Strand};
pub use dataset::{Dataset, DatasetStats};
pub use error::GdmError;
pub use metadata::Metadata;
pub use provenance::Provenance;
pub use region::{interval_overlap, GRegion};
pub use sample::{Sample, SampleId};
pub use schema::{Attribute, MergedSchema, Schema, FIXED_ATTRIBUTES};
pub use value::{Value, ValueParseError, ValueType};
