//! Provenance tracking.
//!
//! "Tracing provenance both of initial samples and of their processing
//! through operations is a unique aspect of our approach; knowing why
//! resulting regions were produced is quite relevant" (paper §2).
//!
//! Every sample carries a [`Provenance`] tree: leaves are source samples
//! (dataset + sample name), inner nodes record the operator that produced
//! the sample and its input lineages.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Provenance of a sample: either a repository source or the application
/// of an operator to one or more input samples.
///
/// Shared structurally via `Arc` so that wide query plans do not duplicate
/// lineage trees per region.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// A sample loaded from a dataset.
    Source {
        /// Dataset name in the repository.
        dataset: String,
        /// Sample name or file stem.
        sample: String,
    },
    /// A sample produced by an operator.
    Derived {
        /// Operator name, e.g. `SELECT`, `MAP`, `COVER`.
        operator: String,
        /// Human-readable operator parameters (predicate text, distances).
        detail: String,
        /// Lineages of the input samples that contributed.
        inputs: Vec<Arc<Provenance>>,
    },
}

impl Provenance {
    /// Provenance for a freshly loaded source sample.
    pub fn source(dataset: impl Into<String>, sample: impl Into<String>) -> Arc<Provenance> {
        Arc::new(Provenance::Source { dataset: dataset.into(), sample: sample.into() })
    }

    /// Provenance for an operator application.
    pub fn derived(
        operator: impl Into<String>,
        detail: impl Into<String>,
        inputs: Vec<Arc<Provenance>>,
    ) -> Arc<Provenance> {
        Arc::new(Provenance::Derived { operator: operator.into(), detail: detail.into(), inputs })
    }

    /// All source `(dataset, sample)` pairs reachable from this lineage,
    /// depth-first, with duplicates removed (answering "which input
    /// samples explain this result?").
    pub fn sources(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        self.collect_sources(&mut out);
        out.dedup();
        out
    }

    fn collect_sources(&self, out: &mut Vec<(String, String)>) {
        match self {
            Provenance::Source { dataset, sample } => {
                let pair = (dataset.clone(), sample.clone());
                if !out.contains(&pair) {
                    out.push(pair);
                }
            }
            Provenance::Derived { inputs, .. } => {
                for i in inputs {
                    i.collect_sources(out);
                }
            }
        }
    }

    /// The chain of operator names from this node to the deepest first
    /// input — a compact "how was this computed" summary.
    pub fn operator_chain(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            match cur {
                Provenance::Source { .. } => break,
                Provenance::Derived { operator, inputs, .. } => {
                    out.push(operator.clone());
                    match inputs.first() {
                        Some(next) => cur = next,
                        None => break,
                    }
                }
            }
        }
        out
    }

    /// Depth of the lineage tree (a source has depth 0).
    pub fn depth(&self) -> usize {
        match self {
            Provenance::Source { .. } => 0,
            Provenance::Derived { inputs, .. } => {
                1 + inputs.iter().map(|i| i.depth()).max().unwrap_or(0)
            }
        }
    }

    fn render(&self, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Provenance::Source { dataset, sample } => {
                writeln!(f, "{pad}source {dataset}/{sample}")
            }
            Provenance::Derived { operator, detail, inputs } => {
                if detail.is_empty() {
                    writeln!(f, "{pad}{operator}")?;
                } else {
                    writeln!(f, "{pad}{operator}({detail})")?;
                }
                for i in inputs {
                    i.render(indent + 1, f)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_deduplicated() {
        let s1 = Provenance::source("ENCODE", "s1");
        let s2 = Provenance::source("ANNOT", "proms");
        let join = Provenance::derived("MAP", "COUNT", vec![s2.clone(), s1.clone(), s1.clone()]);
        assert_eq!(
            join.sources(),
            vec![("ANNOT".into(), "proms".into()), ("ENCODE".into(), "s1".into())]
        );
    }

    #[test]
    fn operator_chain_follows_first_input() {
        let s = Provenance::source("D", "a");
        let sel = Provenance::derived("SELECT", "x > 1", vec![s]);
        let map = Provenance::derived("MAP", "", vec![sel]);
        assert_eq!(map.operator_chain(), vec!["MAP".to_string(), "SELECT".to_string()]);
        assert_eq!(map.depth(), 2);
    }

    #[test]
    fn display_is_indented_tree() {
        let s = Provenance::source("D", "a");
        let sel = Provenance::derived("SELECT", "p<0.1", vec![s]);
        let text = sel.to_string();
        assert!(text.starts_with("SELECT(p<0.1)\n"));
        assert!(text.contains("  source D/a"));
    }
}
