//! Samples: the unit linking regions and metadata.
//!
//! The sample ID provides the many-to-many connection between regions and
//! metadata of one experimental sample (paper §2, Figure 2). A sample owns
//! its regions (kept in genome order), its metadata, and its provenance.

use crate::metadata::Metadata;
use crate::provenance::Provenance;
use crate::region::GRegion;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Opaque sample identifier, unique within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SampleId(pub u64);

static NEXT_SAMPLE_ID: AtomicU64 = AtomicU64::new(1);

impl SampleId {
    /// Allocate a fresh process-unique identifier.
    pub fn fresh() -> SampleId {
        SampleId(NEXT_SAMPLE_ID.fetch_add(1, Ordering::Relaxed))
    }
}

impl std::fmt::Display for SampleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// One experimental sample: regions + metadata + provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Unique identifier.
    pub id: SampleId,
    /// Human-readable name (file stem for loaded samples).
    pub name: String,
    /// Regions in genome order (enforced by [`Sample::sort_regions`] and
    /// checked by [`Sample::is_sorted`]).
    pub regions: Vec<GRegion>,
    /// Region-invariant metadata of the sample.
    pub metadata: Metadata,
    /// Lineage of the sample.
    pub provenance: Arc<Provenance>,
}

impl Sample {
    /// Create a sample with a fresh ID and source provenance.
    pub fn new(name: impl Into<String>, dataset: &str) -> Sample {
        let name = name.into();
        Sample {
            id: SampleId::fresh(),
            provenance: Provenance::source(dataset, name.clone()),
            name,
            regions: Vec::new(),
            metadata: Metadata::new(),
        }
    }

    /// Create a derived sample carrying explicit provenance.
    pub fn derived(name: impl Into<String>, provenance: Arc<Provenance>) -> Sample {
        Sample {
            id: SampleId::fresh(),
            name: name.into(),
            regions: Vec::new(),
            metadata: Metadata::new(),
            provenance,
        }
    }

    /// Builder: attach regions (sorted on insertion).
    pub fn with_regions(mut self, regions: Vec<GRegion>) -> Sample {
        self.regions = regions;
        self.sort_regions();
        self
    }

    /// Builder: attach metadata.
    pub fn with_metadata(mut self, metadata: Metadata) -> Sample {
        self.metadata = metadata;
        self
    }

    /// Sort regions into genome order (stable, so attribute order among
    /// coordinate ties is preserved).
    pub fn sort_regions(&mut self) {
        self.regions.sort_by(|a, b| a.cmp_coords(b));
    }

    /// True when regions are in genome order.
    pub fn is_sorted(&self) -> bool {
        self.regions.windows(2).all(|w| w[0].cmp_coords(&w[1]) != std::cmp::Ordering::Greater)
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Total bases covered, counting overlaps multiply.
    pub fn total_region_length(&self) -> u64 {
        self.regions.iter().map(GRegion::len).sum()
    }

    /// The regions of one chromosome, as a contiguous slice (requires the
    /// sample to be sorted). Returns an empty slice when absent.
    pub fn chrom_slice(&self, chrom: &crate::coords::Chrom) -> &[GRegion] {
        debug_assert!(self.is_sorted(), "chrom_slice requires genome order");
        let start = self.regions.partition_point(|r| r.chrom < *chrom);
        let end = start + self.regions[start..].partition_point(|r| r.chrom == *chrom);
        &self.regions[start..end]
    }

    /// Distinct chromosomes present, in genome order (requires sortedness).
    pub fn chromosomes(&self) -> Vec<crate::coords::Chrom> {
        let mut out: Vec<crate::coords::Chrom> = Vec::new();
        for r in &self.regions {
            if out.last() != Some(&r.chrom) {
                out.push(r.chrom.clone());
            }
        }
        out.dedup();
        out
    }

    /// Approximate serialized size in bytes (regions + metadata).
    pub fn encoded_size(&self) -> usize {
        self.regions.iter().map(GRegion::encoded_size).sum::<usize>() + self.metadata.encoded_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Strand;

    fn r(c: &str, l: u64, rr: u64) -> GRegion {
        GRegion::new(c, l, rr, Strand::Unstranded)
    }

    #[test]
    fn fresh_ids_are_unique() {
        let a = SampleId::fresh();
        let b = SampleId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn with_regions_sorts() {
        let s = Sample::new("s", "D").with_regions(vec![
            r("chr2", 0, 10),
            r("chr1", 50, 60),
            r("chr1", 5, 10),
        ]);
        assert!(s.is_sorted());
        assert_eq!(s.regions[0].left, 5);
        assert_eq!(s.regions[2].chrom.as_str(), "chr2");
    }

    #[test]
    fn chrom_slice_boundaries() {
        let s = Sample::new("s", "D").with_regions(vec![
            r("chr1", 0, 10),
            r("chr1", 20, 30),
            r("chr2", 0, 5),
            r("chr10", 0, 5),
        ]);
        assert_eq!(s.chrom_slice(&"chr1".into()).len(), 2);
        assert_eq!(s.chrom_slice(&"chr2".into()).len(), 1);
        assert_eq!(s.chrom_slice(&"chr10".into()).len(), 1);
        assert_eq!(s.chrom_slice(&"chr3".into()).len(), 0);
    }

    #[test]
    fn chromosomes_in_genome_order() {
        let s = Sample::new("s", "D").with_regions(vec![
            r("chr10", 0, 5),
            r("chr2", 0, 5),
            r("chr2", 9, 12),
        ]);
        let chroms: Vec<String> = s.chromosomes().iter().map(|c| c.as_str().into()).collect();
        assert_eq!(chroms, vec!["chr2", "chr10"]);
    }

    #[test]
    fn stats() {
        let s = Sample::new("s", "D").with_regions(vec![r("chr1", 0, 10), r("chr1", 5, 25)]);
        assert_eq!(s.region_count(), 2);
        assert_eq!(s.total_region_length(), 30);
        assert!(s.encoded_size() > 0);
    }

    #[test]
    fn source_provenance_recorded() {
        let s = Sample::new("rep1", "PEAKS");
        assert_eq!(s.provenance.sources(), vec![("PEAKS".into(), "rep1".into())]);
    }
}
