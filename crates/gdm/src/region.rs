//! Genomic regions: the first GDM entity.
//!
//! A region is `(chr, left, right, strand)` plus the schema-typed variable
//! attributes produced by the calling process (paper §2, Figure 2).
//! Coordinates follow the 0-based half-open convention (`left` inclusive,
//! `right` exclusive), the same convention as BED and the GMQL system.

use crate::coords::{genome_order, Chrom, Strand};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A genomic region with its schema-typed attribute values.
///
/// The attribute *names and types* live in the dataset
/// [`Schema`](crate::schema::Schema); a region stores only the values, in
/// schema order. This keeps per-region memory proportional to the data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GRegion {
    /// Chromosome the region belongs to.
    pub chrom: Chrom,
    /// Left end (0-based, inclusive).
    pub left: u64,
    /// Right end (exclusive). Invariant: `left <= right`.
    pub right: u64,
    /// Strand: `+`, `-`, or `*`.
    pub strand: Strand,
    /// Variable attribute values, positionally matching the schema.
    pub values: Vec<Value>,
}

impl GRegion {
    /// Create a region, normalising `left > right` by swapping (defensive
    /// against malformed input rows).
    pub fn new(chrom: impl Into<Chrom>, left: u64, right: u64, strand: Strand) -> GRegion {
        let (left, right) = if left <= right { (left, right) } else { (right, left) };
        GRegion { chrom: chrom.into(), left, right, strand, values: Vec::new() }
    }

    /// Attach attribute values (builder style).
    pub fn with_values(mut self, values: Vec<Value>) -> GRegion {
        self.values = values;
        self
    }

    /// Region length in base pairs.
    pub fn len(&self) -> u64 {
        self.right - self.left
    }

    /// True for zero-length (point) regions, e.g. insertion variants.
    pub fn is_empty(&self) -> bool {
        self.left == self.right
    }

    /// Midpoint of the region (integer floor).
    pub fn midpoint(&self) -> u64 {
        self.left + (self.right - self.left) / 2
    }

    /// The 5' start: `left` on `+`/`*`, `right` on `-`. Used by UPSTREAM /
    /// DOWNSTREAM genometric clauses.
    pub fn five_prime(&self) -> u64 {
        match self.strand {
            Strand::Neg => self.right,
            _ => self.left,
        }
    }

    /// True when `self` and `other` are on the same chromosome and their
    /// half-open intervals intersect. Zero-length regions overlap when they
    /// fall strictly inside the other (BED convention).
    pub fn overlaps(&self, other: &GRegion) -> bool {
        self.chrom == other.chrom
            && interval_overlap(self.left, self.right, other.left, other.right)
    }

    /// Overlap that additionally requires strand compatibility, the default
    /// matching rule of GMQL MAP / JOIN / DIFFERENCE.
    pub fn overlaps_stranded(&self, other: &GRegion) -> bool {
        self.strand.compatible(other.strand) && self.overlaps(other)
    }

    /// Width of the intersection in bp (0 when disjoint or cross-chromosome).
    pub fn overlap_len(&self, other: &GRegion) -> u64 {
        if self.chrom != other.chrom {
            return 0;
        }
        let lo = self.left.max(other.left);
        let hi = self.right.min(other.right);
        hi.saturating_sub(lo)
    }

    /// True when `self` fully contains `other` (same chromosome).
    pub fn contains(&self, other: &GRegion) -> bool {
        self.chrom == other.chrom && self.left <= other.left && other.right <= self.right
    }

    /// Genometric distance between two regions on the same chromosome:
    /// number of bases strictly between them, `0` for touching or
    /// overlapping regions, `None` across chromosomes.
    ///
    /// This is the distance GMQL genometric clauses (`DLE`, `DGE`, `MD`)
    /// evaluate. Following the GMQL convention, overlapping regions have
    /// *negative* distance equal to minus their overlap width, so that
    /// `DLE(0)` means "overlapping or adjacent" while `DGE(1)` excludes
    /// overlap.
    pub fn distance(&self, other: &GRegion) -> Option<i64> {
        if self.chrom != other.chrom {
            return None;
        }
        if self.right <= other.left {
            Some((other.left - self.right) as i64)
        } else if other.right <= self.left {
            Some((self.left - other.right) as i64)
        } else {
            // Overlapping: negative overlap width.
            Some(-(self.overlap_len(other) as i64))
        }
    }

    /// True when `other` lies strictly upstream of `self`, respecting
    /// `self`'s strand (upstream of a `-` region is to its right).
    pub fn is_upstream_of_me(&self, other: &GRegion) -> bool {
        if self.chrom != other.chrom {
            return false;
        }
        match self.strand {
            Strand::Neg => other.left >= self.right,
            _ => other.right <= self.left,
        }
    }

    /// True when `other` lies strictly downstream of `self`, respecting
    /// `self`'s strand.
    pub fn is_downstream_of_me(&self, other: &GRegion) -> bool {
        if self.chrom != other.chrom {
            return false;
        }
        match self.strand {
            Strand::Neg => other.right <= self.left,
            _ => other.left >= self.right,
        }
    }

    /// Genome-order comparison on coordinates only (ignores values).
    pub fn cmp_coords(&self, other: &GRegion) -> Ordering {
        genome_order(
            (&self.chrom, self.left, self.right, self.strand),
            (&other.chrom, other.left, other.right, other.strand),
        )
    }

    /// Approximate serialized size in bytes (coordinates + values), used
    /// for result-size estimation and transfer accounting.
    pub fn encoded_size(&self) -> usize {
        let coord = self.chrom.as_str().len() + 8 + 8 + 1;
        coord + self.values.iter().map(Value::encoded_size).sum::<usize>()
    }
}

/// Half-open interval intersection with the BED zero-length convention:
/// a zero-length interval `[p, p)` overlaps `[a, b)` iff `a <= p < b`
/// or (both zero-length) `p == a`.
pub fn interval_overlap(l1: u64, r1: u64, l2: u64, r2: u64) -> bool {
    if l1 == r1 && l2 == r2 {
        return l1 == l2;
    }
    if l1 == r1 {
        return l2 <= l1 && l1 < r2;
    }
    if l2 == r2 {
        return l1 <= l2 && l2 < r1;
    }
    l1 < r2 && l2 < r1
}

impl fmt::Display for GRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}-{}({})", self.chrom, self.left, self.right, self.strand)?;
        if !self.values.is_empty() {
            write!(f, "[")?;
            for (i, v) in self.values.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(chrom: &str, l: u64, rr: u64) -> GRegion {
        GRegion::new(chrom, l, rr, Strand::Unstranded)
    }

    #[test]
    fn constructor_normalises_swapped_ends() {
        let x = GRegion::new("chr1", 100, 50, Strand::Pos);
        assert_eq!((x.left, x.right), (50, 100));
        assert_eq!(x.len(), 50);
    }

    #[test]
    fn overlap_half_open() {
        assert!(r("chr1", 0, 10).overlaps(&r("chr1", 9, 20)));
        assert!(!r("chr1", 0, 10).overlaps(&r("chr1", 10, 20)), "touching is not overlap");
        assert!(!r("chr1", 0, 10).overlaps(&r("chr2", 0, 10)), "different chromosomes");
    }

    #[test]
    fn overlap_zero_length() {
        assert!(r("chr1", 5, 5).overlaps(&r("chr1", 0, 10)));
        assert!(!r("chr1", 10, 10).overlaps(&r("chr1", 0, 10)), "point at right end is outside");
        assert!(r("chr1", 3, 3).overlaps(&r("chr1", 3, 3)));
        assert!(!r("chr1", 3, 3).overlaps(&r("chr1", 4, 4)));
    }

    #[test]
    fn stranded_overlap() {
        let plus = GRegion::new("chr1", 0, 10, Strand::Pos);
        let minus = GRegion::new("chr1", 5, 15, Strand::Neg);
        let any = GRegion::new("chr1", 5, 15, Strand::Unstranded);
        assert!(!plus.overlaps_stranded(&minus));
        assert!(plus.overlaps_stranded(&any));
    }

    #[test]
    fn distance_semantics() {
        assert_eq!(r("chr1", 0, 10).distance(&r("chr1", 20, 30)), Some(10));
        assert_eq!(r("chr1", 20, 30).distance(&r("chr1", 0, 10)), Some(10));
        assert_eq!(r("chr1", 0, 10).distance(&r("chr1", 10, 20)), Some(0), "adjacent = 0");
        assert_eq!(r("chr1", 0, 10).distance(&r("chr1", 5, 20)), Some(-5), "overlap negative");
        assert_eq!(r("chr1", 0, 10).distance(&r("chr2", 0, 10)), None);
    }

    #[test]
    fn five_prime_and_orientation() {
        let fwd = GRegion::new("chr1", 100, 200, Strand::Pos);
        let rev = GRegion::new("chr1", 100, 200, Strand::Neg);
        assert_eq!(fwd.five_prime(), 100);
        assert_eq!(rev.five_prime(), 200);

        let up = GRegion::new("chr1", 0, 50, Strand::Unstranded);
        let down = GRegion::new("chr1", 300, 400, Strand::Unstranded);
        assert!(fwd.is_upstream_of_me(&up));
        assert!(fwd.is_downstream_of_me(&down));
        // For a minus-strand region the sides flip.
        assert!(rev.is_upstream_of_me(&down));
        assert!(rev.is_downstream_of_me(&up));
    }

    #[test]
    fn contains_and_overlap_len() {
        assert!(r("chr1", 0, 100).contains(&r("chr1", 10, 90)));
        assert!(!r("chr1", 0, 100).contains(&r("chr1", 10, 101)));
        assert_eq!(r("chr1", 0, 100).overlap_len(&r("chr1", 90, 200)), 10);
        assert_eq!(r("chr1", 0, 10).overlap_len(&r("chr1", 10, 20)), 0);
    }

    #[test]
    fn display_renders_attributes() {
        let x = r("chr1", 1, 5).with_values(vec![Value::Float(0.5), Value::Str("p".into())]);
        assert_eq!(x.to_string(), "chr1:1-5(*)[0.5,p]");
    }

    #[test]
    fn midpoint() {
        assert_eq!(r("chr1", 10, 20).midpoint(), 15);
        assert_eq!(r("chr1", 10, 11).midpoint(), 10);
    }
}
