//! Datasets: named collections of samples sharing a region schema.
//!
//! "Data samples can be included into a named dataset when their genomic
//! regions have the same schema" (paper §2) — the single integrity
//! constraint of GDM. [`Dataset::validate`] enforces it together with the
//! genome-order invariant of every sample.

use crate::error::GdmError;
use crate::sample::{Sample, SampleId};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A GDM dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// The shared variable-attribute schema of all samples' regions.
    pub schema: Schema,
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new(name: impl Into<String>, schema: Schema) -> Dataset {
        Dataset { name: name.into(), schema, samples: Vec::new() }
    }

    /// Add a sample after validating its rows against the schema.
    pub fn add_sample(&mut self, sample: Sample) -> Result<(), GdmError> {
        for region in &sample.regions {
            self.schema.check_row(&region.values)?;
        }
        self.samples.push(sample);
        Ok(())
    }

    /// Add a sample without row validation (for operators that construct
    /// rows already known to match). Debug builds still assert.
    pub fn add_sample_unchecked(&mut self, sample: Sample) {
        debug_assert!(
            sample.regions.iter().all(|r| self.schema.check_row(&r.values).is_ok()),
            "sample rows violate dataset schema"
        );
        self.samples.push(sample);
    }

    /// Full integrity check: every region row matches the schema and every
    /// sample is in genome order. This is the GDM dataset constraint.
    pub fn validate(&self) -> Result<(), GdmError> {
        for s in &self.samples {
            if !s.is_sorted() {
                return Err(GdmError::UnsortedSample(s.name.clone()));
            }
            for region in &s.regions {
                self.schema.check_row(&region.values).map_err(|e| match e {
                    GdmError::ArityMismatch { expected, got } => GdmError::SampleSchemaMismatch {
                        sample: s.name.clone(),
                        reason: format!("row arity {got}, schema arity {expected}"),
                    },
                    GdmError::TypeMismatch { attribute, expected, got } => {
                        GdmError::SampleSchemaMismatch {
                            sample: s.name.clone(),
                            reason: format!(
                                "attribute {attribute}: expected {expected}, got {got}"
                            ),
                        }
                    }
                    other => other,
                })?;
            }
        }
        Ok(())
    }

    /// Number of samples.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Total region count across samples.
    pub fn region_count(&self) -> usize {
        self.samples.iter().map(Sample::region_count).sum()
    }

    /// Look up a sample by ID.
    pub fn sample(&self, id: SampleId) -> Option<&Sample> {
        self.samples.iter().find(|s| s.id == id)
    }

    /// Look up a sample by name.
    pub fn sample_by_name(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Approximate serialized size in bytes — the quantity the paper's
    /// §2 experiment reports ("producing as result 29 GB of data") and the
    /// federation protocol estimates before transfer (§4.4).
    pub fn encoded_size(&self) -> usize {
        self.samples.iter().map(Sample::encoded_size).sum()
    }

    /// Summary statistics used by logging and the repository catalog.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            samples: self.sample_count(),
            regions: self.region_count(),
            bytes: self.encoded_size(),
            meta_pairs: self.samples.iter().map(|s| s.metadata.len()).sum(),
        }
    }
}

/// Cardinality summary of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of samples.
    pub samples: usize,
    /// Total regions across samples.
    pub regions: usize,
    /// Approximate serialized bytes.
    pub bytes: usize,
    /// Total metadata attribute–value pairs.
    pub meta_pairs: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} samples, {} regions, {} metadata pairs, ~{} bytes",
            self.samples, self.regions, self.meta_pairs, self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Strand;
    use crate::region::GRegion;
    use crate::schema::Attribute;
    use crate::value::{Value, ValueType};

    fn peaks_schema() -> Schema {
        Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap()
    }

    fn peak(c: &str, l: u64, r: u64, p: f64) -> GRegion {
        GRegion::new(c, l, r, Strand::Unstranded).with_values(vec![Value::Float(p)])
    }

    #[test]
    fn add_sample_validates_rows() {
        let mut ds = Dataset::new("PEAKS", peaks_schema());
        let good = Sample::new("s1", "PEAKS").with_regions(vec![peak("chr1", 0, 10, 0.01)]);
        ds.add_sample(good).unwrap();
        let bad =
            Sample::new("s2", "PEAKS")
                .with_regions(vec![GRegion::new("chr1", 0, 5, Strand::Pos)
                    .with_values(vec![Value::Str("x".into())])]);
        assert!(ds.add_sample(bad).is_err());
        assert_eq!(ds.sample_count(), 1);
    }

    #[test]
    fn validate_detects_unsorted() {
        let mut ds = Dataset::new("D", peaks_schema());
        let mut s = Sample::new("s", "D");
        s.regions = vec![peak("chr2", 0, 5, 0.1), peak("chr1", 0, 5, 0.1)]; // not sorted
        ds.samples.push(s);
        assert!(matches!(ds.validate(), Err(GdmError::UnsortedSample(_))));
    }

    #[test]
    fn validate_reports_schema_mismatch_with_sample() {
        let mut ds = Dataset::new("D", peaks_schema());
        let mut s = Sample::new("s", "D");
        s.regions = vec![GRegion::new("chr1", 0, 5, Strand::Pos)]; // arity 0 != 1
        ds.samples.push(s);
        match ds.validate() {
            Err(GdmError::SampleSchemaMismatch { sample, .. }) => assert_eq!(sample, "s"),
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn stats_and_lookup() {
        let mut ds = Dataset::new("D", peaks_schema());
        let s1 = Sample::new("a", "D").with_regions(vec![peak("chr1", 0, 10, 0.5)]);
        let id = s1.id;
        ds.add_sample(s1).unwrap();
        ds.add_sample(Sample::new("b", "D").with_regions(vec![peak("chr1", 5, 9, 0.1)])).unwrap();
        assert_eq!(ds.region_count(), 2);
        assert_eq!(ds.sample(id).unwrap().name, "a");
        assert_eq!(ds.sample_by_name("b").unwrap().region_count(), 1);
        let st = ds.stats();
        assert_eq!(st.samples, 2);
        assert!(st.bytes > 0);
    }
}
