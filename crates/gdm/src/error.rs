//! Error type of the GDM crate.

use crate::value::{ValueParseError, ValueType};
use std::fmt;

/// Errors raised by GDM model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GdmError {
    /// An attribute name collides with a fixed coordinate attribute.
    ReservedAttribute(String),
    /// Two schema attributes share a (case-insensitive) name.
    DuplicateAttribute(String),
    /// A referenced attribute does not exist in the schema.
    UnknownAttribute(String),
    /// A region row has the wrong number of values.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Row arity.
        got: usize,
    },
    /// A region value has the wrong type for its column.
    TypeMismatch {
        /// Offending attribute name.
        attribute: String,
        /// Declared type.
        expected: ValueType,
        /// Actual value type.
        got: ValueType,
    },
    /// A sample violates the dataset schema constraint.
    SampleSchemaMismatch {
        /// Sample name.
        sample: String,
        /// Explanation.
        reason: String,
    },
    /// A sample's regions are not in genome order.
    UnsortedSample(String),
    /// A textual token could not be parsed as its declared type.
    Parse(ValueParseError),
}

impl fmt::Display for GdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdmError::ReservedAttribute(n) => {
                write!(f, "attribute name {n:?} is reserved for coordinates")
            }
            GdmError::DuplicateAttribute(n) => write!(f, "duplicate attribute {n:?}"),
            GdmError::UnknownAttribute(n) => write!(f, "unknown attribute {n:?}"),
            GdmError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values but schema declares {expected}")
            }
            GdmError::TypeMismatch { attribute, expected, got } => {
                write!(f, "attribute {attribute:?}: expected {expected}, got {got}")
            }
            GdmError::SampleSchemaMismatch { sample, reason } => {
                write!(f, "sample {sample:?} violates dataset schema: {reason}")
            }
            GdmError::UnsortedSample(s) => write!(f, "sample {s:?} regions not in genome order"),
            GdmError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GdmError {}

impl From<ValueParseError> for GdmError {
    fn from(e: ValueParseError) -> Self {
        GdmError::Parse(e)
    }
}
