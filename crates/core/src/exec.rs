//! Plan execution on the parallel engine.
//!
//! The executor walks the logical DAG in topological order, materialising
//! one [`Dataset`] per node (the eager, stage-at-a-time model of the GMQL
//! cloud implementations) and freeing intermediates as soon as their last
//! consumer ran.

use crate::ast::Operator;
use crate::error::GmqlError;
use crate::ops;
use crate::plan::{LogicalPlan, PlanOp};
use nggc_engine::ExecContext;
use nggc_gdm::Dataset;
use std::collections::HashMap;

/// Execution strategy knobs (the E10 ablation toggles these).
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Evaluate metadata predicates before scanning regions in SELECT.
    pub meta_first: bool,
    /// Run the logical optimizer before execution.
    pub optimize: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { meta_first: true, optimize: true }
    }
}

/// Provide source datasets by name.
pub trait DatasetProvider {
    /// Load a dataset; called once per distinct source in the plan.
    fn load(&self, name: &str) -> Result<Dataset, GmqlError>;
}

impl<F> DatasetProvider for F
where
    F: Fn(&str) -> Result<Dataset, GmqlError>,
{
    fn load(&self, name: &str) -> Result<Dataset, GmqlError> {
        self(name)
    }
}

/// Per-node execution metrics (EXPLAIN ANALYZE).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// The node's variable label.
    pub label: String,
    /// Operator (or `SOURCE`) name.
    pub operator: String,
    /// Output samples.
    pub samples_out: usize,
    /// Output regions.
    pub regions_out: usize,
    /// Wall time in microseconds.
    pub micros: u128,
}

impl std::fmt::Display for NodeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<18} {:<10} {:>8} samples {:>12} regions {:>10.3} ms",
            self.label,
            self.operator,
            self.samples_out,
            self.regions_out,
            self.micros as f64 / 1000.0
        )
    }
}

/// Execute a (possibly optimized) plan and return the materialized
/// outputs keyed by output name. Every output dataset is renamed to its
/// MATERIALIZE name and validated against the GDM constraints.
pub fn execute(
    plan: &LogicalPlan,
    provider: &dyn DatasetProvider,
    ctx: &ExecContext,
    opts: &ExecOptions,
) -> Result<HashMap<String, Dataset>, GmqlError> {
    execute_with_metrics(plan, provider, ctx, opts).map(|(out, _)| out)
}

/// [`execute`], additionally reporting per-node metrics in execution
/// order — the paper's "estimates of the data sizes of results" (§4.4),
/// measured instead of estimated.
pub fn execute_with_metrics(
    plan: &LogicalPlan,
    provider: &dyn DatasetProvider,
    ctx: &ExecContext,
    opts: &ExecOptions,
) -> Result<(HashMap<String, Dataset>, Vec<NodeMetrics>), GmqlError> {
    let plan = if opts.optimize {
        crate::optimizer::optimize(plan).0
    } else {
        plan.clone()
    };

    // Reference counts: free a node's dataset after its last consumer.
    let mut refcount = vec![0usize; plan.nodes.len()];
    for node in &plan.nodes {
        for &i in &node.inputs {
            refcount[i] += 1;
        }
    }
    for (_, id) in &plan.outputs {
        refcount[*id] += 1;
    }

    let mut slots: Vec<Option<Dataset>> = (0..plan.nodes.len()).map(|_| None).collect();
    let mut metrics = Vec::with_capacity(plan.nodes.len());
    for (id, node) in plan.nodes.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let result = match &node.op {
            PlanOp::Source(name) => provider.load(name)?,
            PlanOp::Apply(op) => {
                let inputs: Vec<&Dataset> = node
                    .inputs
                    .iter()
                    .map(|&i| slots[i].as_ref().expect("topological order"))
                    .collect();
                let mut d = apply(op, &inputs, ctx, opts, &node.schema)?;
                d.name = node.label.clone();
                d
            }
        };
        metrics.push(NodeMetrics {
            label: node.label.clone(),
            operator: match &node.op {
                PlanOp::Source(_) => "SOURCE".to_owned(),
                PlanOp::Apply(op) => op.name().to_owned(),
            },
            samples_out: result.sample_count(),
            regions_out: result.region_count(),
            micros: t0.elapsed().as_micros(),
        });
        // Decrement inputs; free exhausted intermediates.
        for &i in &node.inputs {
            refcount[i] -= 1;
            if refcount[i] == 0 {
                slots[i] = None;
            }
        }
        slots[id] = Some(result);
    }

    let mut out = HashMap::new();
    for (name, id) in &plan.outputs {
        let mut d = slots[*id].clone().expect("outputs are retained");
        d.name = name.clone();
        debug_assert!(d.validate().is_ok(), "operator produced an invalid dataset");
        out.insert(name.clone(), d);
    }
    Ok((out, metrics))
}

/// Dispatch one operator application.
fn apply(
    op: &Operator,
    inputs: &[&Dataset],
    ctx: &ExecContext,
    opts: &ExecOptions,
    out_schema: &nggc_gdm::Schema,
) -> Result<Dataset, GmqlError> {
    let unary = || inputs[0];
    match op {
        Operator::Select { meta, region, semijoin } => {
            let ext = inputs.get(1).copied();
            ops::select::select(ctx, opts, meta, region.as_ref(), semijoin.as_ref(), unary(), ext)
        }
        Operator::Project { attrs, new_attrs, meta_attrs } => {
            ops::project::project(
                ctx,
                attrs.as_deref(),
                new_attrs,
                meta_attrs.as_deref(),
                unary(),
                out_schema,
            )
        }
        Operator::Extend { assignments } => ops::extend::extend(ctx, assignments, unary()),
        Operator::Merge { groupby } => ops::merge::merge(ctx, groupby, unary()),
        Operator::Group { by, region_aggs } => {
            ops::group::group(ctx, by, region_aggs, unary(), out_schema)
        }
        Operator::Order { meta_keys, top, region_keys, region_top } => {
            ops::order::order(ctx, meta_keys, *top, region_keys, *region_top, unary())
        }
        Operator::Union => ops::union::union(ctx, inputs[0], inputs[1], out_schema),
        Operator::Difference { exact, joinby } => {
            ops::difference::difference(ctx, *exact, joinby, inputs[0], inputs[1])
        }
        Operator::Join { clauses, output, joinby } => {
            ops::join::join(ctx, clauses, *output, joinby, inputs[0], inputs[1], out_schema)
        }
        Operator::Map { aggs, joinby } => {
            ops::map::map(ctx, aggs, joinby, inputs[0], inputs[1], out_schema)
        }
        Operator::Cover { variant, min_acc, max_acc, groupby, aggs } => ops::cover::cover(
            ctx, *variant, *min_acc, *max_acc, groupby, aggs, unary(), out_schema,
        ),
    }
}
