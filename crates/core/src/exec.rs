//! Plan execution on the parallel engine.
//!
//! The executor walks the logical DAG in topological order, materialising
//! one [`Dataset`] per node (the eager, stage-at-a-time model of the GMQL
//! cloud implementations) and freeing intermediates as soon as their last
//! consumer ran.

use crate::ast::Operator;
use crate::error::GmqlError;
use crate::governor::QueryGovernor;
use crate::ops;
use crate::plan::{LogicalPlan, PlanOp};
use nggc_engine::ExecContext;
use nggc_gdm::Dataset;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Execution strategy knobs (the E10 ablation toggles these).
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Evaluate metadata predicates before scanning regions in SELECT.
    pub meta_first: bool,
    /// Run the logical optimizer before execution.
    pub optimize: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { meta_first: true, optimize: true }
    }
}

/// Provide source datasets by name.
pub trait DatasetProvider {
    /// Load a dataset; called once per distinct source in the plan.
    fn load(&self, name: &str) -> Result<Dataset, GmqlError>;

    /// Load a dataset behind a shared pointer. Providers backed by a
    /// shared cache (e.g. `nggc-repository`) override this so a source
    /// node costs a reference-count bump instead of a deep copy; the
    /// default wraps [`DatasetProvider::load`].
    fn load_shared(&self, name: &str) -> Result<Arc<Dataset>, GmqlError> {
        self.load(name).map(Arc::new)
    }

    /// Load a dataset pruned to a [`ScanSpec`](crate::scan::ScanSpec):
    /// only the chromosomes and value columns the plan provably needs.
    /// Returning a **superset** of the spec is always sound (operators
    /// re-apply their predicates), and the default does exactly that by
    /// delegating to [`DatasetProvider::load_shared`] — so closure
    /// providers and providers without pruned storage keep today's
    /// behaviour. Storage-backed providers (`nggc-repository`) override
    /// this to serve the spec from the v2 chromosome index.
    fn load_pruned(
        &self,
        name: &str,
        _spec: &crate::scan::ScanSpec,
    ) -> Result<Arc<Dataset>, GmqlError> {
        self.load_shared(name)
    }
}

impl<F> DatasetProvider for F
where
    F: Fn(&str) -> Result<Dataset, GmqlError>,
{
    fn load(&self, name: &str) -> Result<Dataset, GmqlError> {
        self(name)
    }
}

/// Per-node execution metrics (EXPLAIN ANALYZE and `--profile`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMetrics {
    /// The node's variable label.
    pub label: String,
    /// Operator (or `SOURCE`) name.
    pub operator: String,
    /// Input samples, summed over all inputs (0 for sources).
    pub samples_in: usize,
    /// Input regions, summed over all inputs (0 for sources).
    pub regions_in: usize,
    /// Output samples.
    pub samples_out: usize,
    /// Output regions.
    pub regions_out: usize,
    /// Approximate serialized size of the output.
    pub bytes_out: usize,
    /// Wall time spent in this node.
    pub wall: Duration,
    /// Bytes charged against the governor's memory budget for this
    /// node's output (0 when no governor tracks memory).
    pub mem_charged: u64,
    /// Bytes given back to the budget when this node's output was freed
    /// after its last consumer ran (0 for retained outputs).
    pub mem_released: u64,
    /// Repository cache hits observed while this node ran (source
    /// loads served from the warm cache).
    pub cache_hits: u64,
    /// Repository cache misses observed while this node ran (source
    /// loads that went to disk).
    pub cache_misses: u64,
    /// Federation retries observed while this node ran (nonzero only
    /// for providers that call out to remote nodes).
    pub fed_retries: u64,
    /// Federation timeouts observed while this node ran.
    pub fed_timeouts: u64,
    /// Pruned (scan-spec-restricted) source loads while this node ran.
    pub scan_pruned: u64,
    /// Container bytes decoded by pruned loads while this node ran.
    pub scan_bytes_read: u64,
    /// Container bytes skipped by pruned loads while this node ran.
    pub scan_bytes_skipped: u64,
    /// Chromosome blocks decoded by pruned loads while this node ran.
    pub scan_blocks_read: u64,
    /// Chromosome blocks skipped by pruned loads while this node ran.
    pub scan_blocks_skipped: u64,
}

/// Point-in-time sum of the registry counters EXPLAIN ANALYZE
/// attributes to plan nodes; per-node deltas are sound because the
/// executor walks nodes sequentially.
#[derive(Debug, Clone, Copy, Default)]
struct StatProbe {
    cache_hits: u64,
    cache_misses: u64,
    fed_retries: u64,
    fed_timeouts: u64,
    scan_pruned: u64,
    scan_bytes_read: u64,
    scan_bytes_skipped: u64,
    scan_blocks_read: u64,
    scan_blocks_skipped: u64,
}

fn stat_probe(reg: &nggc_obs::Registry) -> StatProbe {
    let mut p = StatProbe::default();
    for (name, _, v) in reg.snapshot() {
        match name.as_str() {
            "nggc_repo_cache_hits_total" => p.cache_hits += v,
            "nggc_repo_cache_misses_total" => p.cache_misses += v,
            "nggc_fed_retries_total" => p.fed_retries += v,
            "nggc_fed_timeouts_total" => p.fed_timeouts += v,
            "nggc_scan_pruned_total" => p.scan_pruned += v,
            "nggc_scan_bytes_read_total" => p.scan_bytes_read += v,
            "nggc_scan_bytes_skipped_total" => p.scan_bytes_skipped += v,
            "nggc_scan_chrom_blocks_read_total" => p.scan_blocks_read += v,
            "nggc_scan_chrom_blocks_skipped_total" => p.scan_blocks_skipped += v,
            _ => {}
        }
    }
    p
}

/// Display width of the label column; longer labels are truncated.
const LABEL_WIDTH: usize = 18;

/// Truncate to `width` characters, ending in `…` when cut.
fn truncate_label(s: &str, width: usize) -> String {
    if s.chars().count() <= width {
        s.to_owned()
    } else {
        let mut out: String = s.chars().take(width.saturating_sub(1)).collect();
        out.push('…');
        out
    }
}

impl std::fmt::Display for NodeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<LABEL_WIDTH$} {:<10} {:>8}→{:<8} samples {:>10}→{:<10} regions {:>10.3} ms",
            truncate_label(&self.label, LABEL_WIDTH),
            truncate_label(&self.operator, 10),
            self.samples_in,
            self.samples_out,
            self.regions_in,
            self.regions_out,
            self.wall.as_secs_f64() * 1000.0
        )
    }
}

/// Execute a (possibly optimized) plan and return the materialized
/// outputs keyed by output name. Every output dataset is renamed to its
/// MATERIALIZE name and validated against the GDM constraints.
pub fn execute(
    plan: &LogicalPlan,
    provider: &dyn DatasetProvider,
    ctx: &ExecContext,
    opts: &ExecOptions,
) -> Result<HashMap<String, Dataset>, GmqlError> {
    execute_with_metrics(plan, provider, ctx, opts).map(|(out, _)| out)
}

/// [`execute`], additionally reporting per-node metrics in execution
/// order — the paper's "estimates of the data sizes of results" (§4.4),
/// measured instead of estimated.
pub fn execute_with_metrics(
    plan: &LogicalPlan,
    provider: &dyn DatasetProvider,
    ctx: &ExecContext,
    opts: &ExecOptions,
) -> Result<(HashMap<String, Dataset>, Vec<NodeMetrics>), GmqlError> {
    execute_governed(plan, provider, ctx, opts, None)
}

/// [`execute_with_metrics`] under a [`QueryGovernor`]: the governor is
/// checked at **every plan-node boundary** (before a node runs and again
/// after its operator returns, so a kernel that truncated its output on
/// a mid-loop trip is reported as the typed error, never as a success),
/// every materialised intermediate is charged against the memory budget
/// and released when its last consumer has run, and the governor's
/// interruption state is threaded into the [`ExecContext`] so operator
/// hot loops and the per-chromosome fan-out observe it too.
pub fn execute_governed(
    plan: &LogicalPlan,
    provider: &dyn DatasetProvider,
    ctx: &ExecContext,
    opts: &ExecOptions,
    governor: Option<&QueryGovernor>,
) -> Result<(HashMap<String, Dataset>, Vec<NodeMetrics>), GmqlError> {
    // Thread the interrupt into the operators' context so kernels poll
    // the same state the boundary checks use.
    let governed_ctx;
    let ctx = match governor {
        Some(g) => {
            governed_ctx = ctx.clone().with_interrupt(Arc::clone(g.state()));
            &governed_ctx
        }
        None => ctx,
    };
    let mut plan_span = nggc_obs::span("exec.plan");
    plan_span.field("nodes", plan.nodes.len()).field("outputs", plan.outputs.len());
    let plan = if opts.optimize {
        let (optimized, report) = crate::optimizer::optimize(plan);
        // Optimizer decisions travel on the plan span and the registry.
        plan_span
            .field("selects_fused", report.selects_fused)
            .field("nodes_deduplicated", report.nodes_deduplicated);
        let reg = nggc_obs::global();
        reg.counter("nggc_exec_optimizer_selects_fused_total").add(report.selects_fused as u64);
        reg.counter("nggc_exec_optimizer_nodes_deduplicated_total")
            .add(report.nodes_deduplicated as u64);
        optimized
    } else {
        plan.clone()
    };
    // Derive scan pruning on the plan exactly as it executes (whether
    // optimization ran here or upstream): per source, the chromosomes
    // and value columns the rest of the plan provably needs.
    let scan_specs = crate::scan::derive_scan_specs(&plan);

    // Reference counts: free a node's dataset after its last consumer.
    let mut refcount = vec![0usize; plan.nodes.len()];
    for node in &plan.nodes {
        for &i in &node.inputs {
            refcount[i] += 1;
        }
    }
    for (_, id) in &plan.outputs {
        refcount[*id] += 1;
    }

    // Slots hold shared pointers: a source served from a warm repository
    // cache is never deep-copied unless an output must be renamed while
    // other references are still alive.
    let mut slots: Vec<Option<Arc<Dataset>>> = (0..plan.nodes.len()).map(|_| None).collect();
    // Bytes charged to the governor per live slot, for release on free.
    let mut slot_bytes = vec![0u64; plan.nodes.len()];
    let mut metrics: Vec<NodeMetrics> = Vec::with_capacity(plan.nodes.len());
    let reg = nggc_obs::global();
    for (id, node) in plan.nodes.iter().enumerate() {
        if let Some(g) = governor {
            // Boundary checkpoint before the node runs.
            g.check(&node.label)?;
        }
        // Counter snapshot bracketing the node, so cache and federation
        // activity lands on the plan node that caused it.
        let probe0 = if reg.is_enabled() { Some(stat_probe(reg)) } else { None };
        let operator = match &node.op {
            PlanOp::Source(_) => "SOURCE".to_owned(),
            PlanOp::Apply(op) => op.name().to_owned(),
        };
        let (samples_in, regions_in) = node.inputs.iter().fold((0, 0), |(s, r), &i| {
            let d = slots[i].as_ref().expect("topological order");
            (s + d.sample_count(), r + d.region_count())
        });
        let mut node_span = nggc_obs::span("exec.node");
        node_span
            .field("label", &node.label)
            .field("op", &operator)
            .field("samples_in", samples_in)
            .field("regions_in", regions_in);
        let t0 = std::time::Instant::now();
        let result = match &node.op {
            PlanOp::Source(name) => match scan_specs.get(&id).filter(|s| !s.is_trivial()) {
                Some(spec) => provider.load_pruned(name, spec)?,
                None => provider.load_shared(name)?,
            },
            PlanOp::Apply(op) => {
                let inputs: Vec<&Dataset> = node
                    .inputs
                    .iter()
                    .map(|&i| slots[i].as_deref().expect("topological order"))
                    .collect();
                let mut d = apply(op, &inputs, ctx, opts, &node.schema)?;
                d.name = node.label.clone();
                Arc::new(d)
            }
        };
        let wall = t0.elapsed();
        if let Some(g) = governor {
            // Boundary checkpoint after the operator, *before* sizing the
            // result: a kernel that observed the trip mid-loop returned
            // truncated data, which must surface as the typed error —
            // never as a result, and without paying to measure it.
            g.check(&node.label)?;
        }
        let bytes_out = result.encoded_size();
        if let Some(g) = governor {
            // Charge the materialised intermediate before it becomes
            // visible to consumers; rejection aborts the query with the
            // node's accounting attached.
            g.charge(&node.label, bytes_out as u64)?;
            slot_bytes[id] = bytes_out as u64;
        }
        node_span
            .field("samples_out", result.sample_count())
            .field("regions_out", result.region_count())
            .field("bytes_est", bytes_out);
        drop(node_span);
        if reg.is_enabled() {
            reg.counter_with("nggc_exec_nodes_total", &[("op", &operator)]).inc();
            reg.counter_with("nggc_exec_regions_out_total", &[("op", &operator)])
                .add(result.region_count() as u64);
            reg.histogram_with("nggc_exec_node_wall_ns", &[("op", &operator)])
                .record_duration(wall);
        }
        let probe1 = probe0.map(|p0| {
            let p1 = stat_probe(reg);
            StatProbe {
                cache_hits: p1.cache_hits - p0.cache_hits,
                cache_misses: p1.cache_misses - p0.cache_misses,
                fed_retries: p1.fed_retries - p0.fed_retries,
                fed_timeouts: p1.fed_timeouts - p0.fed_timeouts,
                scan_pruned: p1.scan_pruned - p0.scan_pruned,
                scan_bytes_read: p1.scan_bytes_read - p0.scan_bytes_read,
                scan_bytes_skipped: p1.scan_bytes_skipped - p0.scan_bytes_skipped,
                scan_blocks_read: p1.scan_blocks_read - p0.scan_blocks_read,
                scan_blocks_skipped: p1.scan_blocks_skipped - p0.scan_blocks_skipped,
            }
        });
        let delta = probe1.unwrap_or_default();
        metrics.push(NodeMetrics {
            label: node.label.clone(),
            operator,
            samples_in,
            regions_in,
            samples_out: result.sample_count(),
            regions_out: result.region_count(),
            bytes_out,
            wall,
            mem_charged: slot_bytes[id],
            mem_released: 0,
            cache_hits: delta.cache_hits,
            cache_misses: delta.cache_misses,
            fed_retries: delta.fed_retries,
            fed_timeouts: delta.fed_timeouts,
            scan_pruned: delta.scan_pruned,
            scan_bytes_read: delta.scan_bytes_read,
            scan_bytes_skipped: delta.scan_bytes_skipped,
            scan_blocks_read: delta.scan_blocks_read,
            scan_blocks_skipped: delta.scan_blocks_skipped,
        });
        // Decrement inputs; free exhausted intermediates (and give their
        // bytes back to the budget). The release is attributed to the
        // metrics entry of the node that *produced* the freed slot —
        // `metrics[i]` exists because inputs precede their consumers.
        for &i in &node.inputs {
            refcount[i] -= 1;
            if refcount[i] == 0 {
                slots[i] = None;
                if let Some(g) = governor {
                    g.release(slot_bytes[i]);
                    metrics[i].mem_released += slot_bytes[i];
                    slot_bytes[i] = 0;
                }
            }
        }
        slots[id] = Some(result);
    }
    if let Some(g) = governor {
        g.export_peak();
    }

    let mut out = HashMap::new();
    for (name, id) in &plan.outputs {
        // Drop the slot once its last output consumer is served, so the
        // rename below can reuse the allocation instead of copying.
        refcount[*id] -= 1;
        let arc = if refcount[*id] == 0 {
            slots[*id].take().expect("outputs are retained")
        } else {
            slots[*id].clone().expect("outputs are retained")
        };
        let mut d = Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone());
        d.name = name.clone();
        debug_assert!(d.validate().is_ok(), "operator produced an invalid dataset");
        out.insert(name.clone(), d);
    }
    Ok((out, metrics))
}

/// Dispatch one operator application.
fn apply(
    op: &Operator,
    inputs: &[&Dataset],
    ctx: &ExecContext,
    opts: &ExecOptions,
    out_schema: &nggc_gdm::Schema,
) -> Result<Dataset, GmqlError> {
    let unary = || inputs[0];
    match op {
        Operator::Select { meta, region, semijoin } => {
            let ext = inputs.get(1).copied();
            ops::select::select(ctx, opts, meta, region.as_ref(), semijoin.as_ref(), unary(), ext)
        }
        Operator::Project { attrs, new_attrs, meta_attrs } => ops::project::project(
            ctx,
            attrs.as_deref(),
            new_attrs,
            meta_attrs.as_deref(),
            unary(),
            out_schema,
        ),
        Operator::Extend { assignments } => ops::extend::extend(ctx, assignments, unary()),
        Operator::Merge { groupby } => ops::merge::merge(ctx, groupby, unary()),
        Operator::Group { by, region_aggs } => {
            ops::group::group(ctx, by, region_aggs, unary(), out_schema)
        }
        Operator::Order { meta_keys, top, region_keys, region_top } => {
            ops::order::order(ctx, meta_keys, *top, region_keys, *region_top, unary())
        }
        Operator::Union => ops::union::union(ctx, inputs[0], inputs[1], out_schema),
        Operator::Difference { exact, joinby } => {
            ops::difference::difference(ctx, *exact, joinby, inputs[0], inputs[1])
        }
        Operator::Join { clauses, output, joinby } => {
            ops::join::join(ctx, clauses, *output, joinby, inputs[0], inputs[1], out_schema)
        }
        Operator::Map { aggs, joinby } => {
            ops::map::map(ctx, aggs, joinby, inputs[0], inputs[1], out_schema)
        }
        Operator::Cover { variant, min_acc, max_acc, groupby, aggs } => {
            ops::cover::cover(ctx, *variant, *min_acc, *max_acc, groupby, aggs, unary(), out_schema)
        }
    }
}
