//! # `nggc-core` — GMQL, the GenoMetric Query Language
//!
//! The paper's primary contribution (§2): a closed algebra over GDM
//! datasets combining classic relational operators (SELECT, PROJECT,
//! UNION, DIFFERENCE, JOIN, ORDER, EXTEND/aggregates) with domain-specific
//! genomic ones (COVER and variants, MAP, genometric JOIN on distance
//! predicates), with implicit sample iteration, metadata propagation, and
//! provenance tracing.
//!
//! Pipeline: [`parser`] → [`plan`] (schema-inferring compiler) →
//! [`optimizer`] (SELECT fusion, CSE) → [`exec`] (parallel evaluation on
//! the `nggc-engine` runtime, one operator implementation per module in
//! [`ops`]).
//!
//! The paper's §2 example runs end to end:
//!
//! ```text
//! PROMS  = SELECT(annType == 'promoter') ANNOTATIONS;
//! PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
//! RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
//! MATERIALIZE RESULT;
//! ```

#![warn(missing_docs)]

pub mod aggregates;
pub mod ast;
pub mod error;
pub mod exec;
pub mod fingerprint;
pub mod governor;
pub mod lexer;
pub mod ops;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod predicates;
pub mod query;
pub mod result_cache;
pub mod scan;

pub use aggregates::{AggFunc, Aggregate};
pub use ast::{
    AccBound, CoverVariant, GenometricClause, JoinOutput, OpCall, Operator, SemiJoin, SortDir,
    Statement,
};
pub use error::GmqlError;
pub use exec::{
    execute, execute_governed, execute_with_metrics, DatasetProvider, ExecOptions, NodeMetrics,
};
pub use fingerprint::{fingerprint, source_datasets, PlanFingerprint, FINGERPRINT_VERSION};
pub use governor::{
    parse_bytes, parse_duration, GovernorLimits, QueryGovernor, ENV_MAX_MEMORY, ENV_TIMEOUT,
};
pub use optimizer::{optimize, OptimizerReport};
pub use parser::parse;
pub use plan::{infer_schema, LogicalNode, LogicalPlan, NodeId, PlanOp};
pub use predicates::{BinOp, CmpOp, MetaPredicate, RegionExpr};
pub use query::{
    run_with_provider, run_with_provider_governed, EstimatedOutput, GmqlEngine, QueryEstimate,
};
pub use result_cache::{CacheBudget, CacheOutcome, ResultCache, ResultCacheStats};
pub use scan::{derive_scan_specs, ScanSpec, SCAN_SPEC_VERSION};
