//! Abstract syntax of GMQL queries.
//!
//! A query is a sequence of assignments closing with MATERIALIZE
//! statements, exactly as in the paper's §2 example:
//!
//! ```text
//! PROMS  = SELECT(annType == 'promoter') ANNOTATIONS;
//! PEAKS  = SELECT(dataType == 'ChipSeq') ENCODE;
//! RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
//! MATERIALIZE RESULT;
//! ```

use crate::aggregates::Aggregate;
use crate::predicates::{MetaPredicate, RegionExpr};
use std::fmt;

/// One statement of a GMQL query.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `VAR = OP(...) OPERAND...;`
    Assign {
        /// Variable being defined.
        var: String,
        /// Operator call.
        call: OpCall,
    },
    /// `MATERIALIZE VAR [INTO name];`
    Materialize {
        /// Variable to materialize.
        var: String,
        /// Output dataset name (defaults to the variable name).
        into: Option<String>,
    },
}

/// An operator applied to named operands.
#[derive(Debug, Clone, PartialEq)]
pub struct OpCall {
    /// The operator and its parameters.
    pub op: Operator,
    /// Operand variable or dataset names (1 for unary, 2 for binary ops).
    pub operands: Vec<String>,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A metadata semijoin clause of SELECT: `semijoin: attr, ... IN DS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemiJoin {
    /// The attributes that must agree.
    pub attrs: Vec<String>,
    /// The external dataset/variable name (resolved at plan time into a
    /// second input of the SELECT node).
    pub external: String,
    /// Negate: keep samples matching **no** external sample (GMQL's
    /// `NOT IN`).
    pub negated: bool,
}

/// Genometric join clauses (paper §2: "GENOMETRIC JOIN selects region
/// pairs based upon distance properties").
#[derive(Debug, Clone, PartialEq)]
pub enum GenometricClause {
    /// `DLE(d)`: distance less than or equal to `d`.
    DistLessEq(i64),
    /// `DGE(d)`: distance greater than or equal to `d`.
    DistGreaterEq(i64),
    /// `MD(k)`: the `k` closest right regions of each left region.
    MinDist(usize),
    /// `UP`: right region upstream of the left one (strand-aware).
    Upstream,
    /// `DOWN`: right region downstream of the left one (strand-aware).
    Downstream,
}

/// Region composition of genometric JOIN output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOutput {
    /// Keep the left (anchor) region coordinates.
    Left,
    /// Keep the right (experiment) region coordinates.
    Right,
    /// Intersection of the two regions (pairs must overlap).
    Intersection,
    /// Contiguous hull: `[min(lefts), max(rights))` (`CAT` in GMQL).
    Contig,
}

/// An accumulation bound of COVER.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccBound {
    /// `ANY`: no constraint (lower bound 1 / upper bound ∞).
    Any,
    /// `ALL`: the number of samples in the operand.
    All,
    /// An explicit count.
    Value(usize),
}

impl AccBound {
    /// Resolve against the number of contributing samples; `lower` selects
    /// the lower-bound interpretation of `ANY`.
    pub fn resolve(self, n_samples: usize, lower: bool) -> usize {
        match self {
            AccBound::Any => {
                if lower {
                    1
                } else {
                    usize::MAX
                }
            }
            AccBound::All => n_samples.max(1),
            AccBound::Value(v) => v,
        }
    }
}

/// COVER variants (paper §2 names COVER; GMQL defines the variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverVariant {
    /// Merged regions where accumulation stays within bounds.
    Cover,
    /// Like COVER but extended to the full span of contributing regions.
    Flat,
    /// Points of locally maximal accumulation within qualifying regions.
    Summit,
    /// One region per maximal run of constant accumulation.
    Histogram,
}

impl CoverVariant {
    /// Operator keyword.
    pub fn name(self) -> &'static str {
        match self {
            CoverVariant::Cover => "COVER",
            CoverVariant::Flat => "FLAT",
            CoverVariant::Summit => "SUMMIT",
            CoverVariant::Histogram => "HISTOGRAM",
        }
    }
}

/// The GMQL operator algebra: "classic algebraic transformations
/// (SELECT, PROJECT, UNION, DIFFERENCE, JOIN, SORT, AGGREGATE) and
/// domain-specific transformations" (paper §2).
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// Filter samples by metadata and regions by a region predicate,
    /// optionally restricted by a metadata semijoin against another
    /// dataset (`semijoin: attr, ... IN OTHER`).
    Select {
        /// Metadata predicate ([`MetaPredicate::True`] when absent).
        meta: MetaPredicate,
        /// Optional region predicate.
        region: Option<RegionExpr>,
        /// Optional metadata semijoin (GMQL's "metadata semijoin"): keep
        /// a sample only when some sample of the external dataset shares
        /// at least one value for every listed attribute.
        semijoin: Option<SemiJoin>,
    },
    /// Keep/compute region attributes and optionally project metadata.
    Project {
        /// Attributes to keep (`None` = keep all).
        attrs: Option<Vec<String>>,
        /// New attributes computed from expressions.
        new_attrs: Vec<(String, RegionExpr)>,
        /// Metadata attributes to keep (`None` = keep all).
        meta_attrs: Option<Vec<String>>,
    },
    /// Add metadata computed as aggregates over each sample's regions.
    Extend {
        /// `(metadata attribute, aggregate)` assignments.
        assignments: Vec<(String, Aggregate)>,
    },
    /// Merge all samples (or one group per `groupby` value combination)
    /// into a single sample.
    Merge {
        /// Metadata attributes defining groups (empty = one group).
        groupby: Vec<String>,
    },
    /// Group samples by metadata values; optionally aggregate duplicate
    /// regions within each group.
    Group {
        /// Grouping metadata attributes.
        by: Vec<String>,
        /// Aggregates computed over duplicate regions (same coordinates).
        region_aggs: Vec<(String, Aggregate)>,
    },
    /// Order samples by metadata (and/or regions by attributes), with
    /// optional top-k truncation.
    Order {
        /// Sample-level keys (metadata attributes).
        meta_keys: Vec<(String, SortDir)>,
        /// Keep only the first `k` samples.
        top: Option<usize>,
        /// Region-level keys (region attributes).
        region_keys: Vec<(String, SortDir)>,
        /// Keep only the first `k` regions per sample.
        region_top: Option<usize>,
    },
    /// Union of two datasets (schema merging).
    Union,
    /// Regions of the left operand that do not intersect any right-operand
    /// region.
    Difference {
        /// Require exact coordinate equality instead of intersection.
        exact: bool,
        /// Pair samples only when these metadata attributes agree.
        joinby: Vec<String>,
    },
    /// Genometric join.
    Join {
        /// Distance clauses, all of which must hold.
        clauses: Vec<GenometricClause>,
        /// Output region composition.
        output: JoinOutput,
        /// Pair samples only when these metadata attributes agree.
        joinby: Vec<String>,
    },
    /// Map experiment regions onto reference regions with aggregates.
    Map {
        /// Named aggregates computed over intersecting experiment regions.
        aggs: Vec<(String, Aggregate)>,
        /// Pair samples only when these metadata attributes agree.
        joinby: Vec<String>,
    },
    /// COVER and its variants.
    Cover {
        /// Variant.
        variant: CoverVariant,
        /// Minimum accumulation.
        min_acc: AccBound,
        /// Maximum accumulation.
        max_acc: AccBound,
        /// Group samples by these metadata attributes first.
        groupby: Vec<String>,
        /// Aggregates over contributing regions, added as attributes.
        aggs: Vec<(String, Aggregate)>,
    },
}

impl Operator {
    /// Operator keyword (for provenance and plan printing).
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Select { .. } => "SELECT",
            Operator::Project { .. } => "PROJECT",
            Operator::Extend { .. } => "EXTEND",
            Operator::Merge { .. } => "MERGE",
            Operator::Group { .. } => "GROUP",
            Operator::Order { .. } => "ORDER",
            Operator::Union => "UNION",
            Operator::Difference { .. } => "DIFFERENCE",
            Operator::Join { .. } => "JOIN",
            Operator::Map { .. } => "MAP",
            Operator::Cover { variant, .. } => variant.name(),
        }
    }

    /// Number of operands the operator takes.
    pub fn arity(&self) -> usize {
        match self {
            Operator::Union
            | Operator::Difference { .. }
            | Operator::Join { .. }
            | Operator::Map { .. } => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for OpCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(…) {}", self.op.name(), self.operands.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_per_operator() {
        assert_eq!(Operator::Union.arity(), 2);
        assert_eq!(
            Operator::Select { meta: MetaPredicate::True, region: None, semijoin: None }.arity(),
            1
        );
        assert_eq!(Operator::Map { aggs: vec![], joinby: vec![] }.arity(), 2);
    }

    #[test]
    fn acc_bound_resolution() {
        assert_eq!(AccBound::Any.resolve(10, true), 1);
        assert_eq!(AccBound::Any.resolve(10, false), usize::MAX);
        assert_eq!(AccBound::All.resolve(10, true), 10);
        assert_eq!(AccBound::All.resolve(0, true), 1, "empty dataset clamps to 1");
        assert_eq!(AccBound::Value(3).resolve(10, false), 3);
    }

    #[test]
    fn names() {
        assert_eq!(
            Operator::Cover {
                variant: CoverVariant::Summit,
                min_acc: AccBound::Any,
                max_acc: AccBound::Any,
                groupby: vec![],
                aggs: vec![],
            }
            .name(),
            "SUMMIT"
        );
    }
}
