//! High-level query API: register datasets, run GMQL text.
//!
//! ```
//! use nggc_core::GmqlEngine;
//! use nggc_gdm::*;
//!
//! let mut engine = GmqlEngine::with_workers(2);
//! let schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
//! let mut peaks = Dataset::new("PEAKS", schema);
//! peaks.add_sample(
//!     Sample::new("s1", "PEAKS")
//!         .with_regions(vec![
//!             GRegion::new("chr1", 0, 100, Strand::Pos).with_values(vec![0.001.into()]),
//!         ])
//!         .with_metadata(Metadata::from_pairs([("karyotype", "cancer")])),
//! ).unwrap();
//! engine.register(peaks);
//!
//! let out = engine.run("R = SELECT(karyotype == 'cancer') PEAKS; MATERIALIZE R;").unwrap();
//! assert_eq!(out["R"].sample_count(), 1);
//! ```

use crate::error::GmqlError;
use crate::exec::{execute, ExecOptions};
use crate::optimizer::{optimize, OptimizerReport};
use crate::parser::parse;
use crate::plan::LogicalPlan;
use nggc_engine::ExecContext;
use nggc_gdm::{Dataset, Schema};
use std::collections::HashMap;

/// A GMQL engine over a set of registered in-memory datasets.
///
/// For repository-backed execution see `nggc-repository`, which provides
/// a [`crate::exec::DatasetProvider`] over on-disk datasets.
pub struct GmqlEngine {
    datasets: HashMap<String, Dataset>,
    ctx: ExecContext,
    opts: ExecOptions,
}

impl GmqlEngine {
    /// Engine with an explicit execution context.
    pub fn new(ctx: ExecContext) -> GmqlEngine {
        GmqlEngine { datasets: HashMap::new(), ctx, opts: ExecOptions::default() }
    }

    /// Engine with `workers` threads.
    pub fn with_workers(workers: usize) -> GmqlEngine {
        GmqlEngine::new(ExecContext::with_workers(workers))
    }

    /// Override execution options (ablations).
    pub fn with_options(mut self, opts: ExecOptions) -> GmqlEngine {
        self.opts = opts;
        self
    }

    /// The engine's execution context.
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Register a dataset under its name, replacing any previous one.
    pub fn register(&mut self, dataset: Dataset) {
        self.datasets.insert(dataset.name.clone(), dataset);
    }

    /// Remove a registered dataset; returns true when it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        self.datasets.remove(name).is_some()
    }

    /// Registered dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&Dataset> {
        self.datasets.get(name)
    }

    /// Compile query text into a logical plan (no execution).
    pub fn compile(&self, query: &str) -> Result<LogicalPlan, GmqlError> {
        let statements = parse(query)?;
        LogicalPlan::compile(&statements, &|name| self.datasets.get(name).map(|d| d.schema.clone()))
    }

    /// Explain: compiled plan, optimized plan, and optimizer report.
    pub fn explain(&self, query: &str) -> Result<(String, String, OptimizerReport), GmqlError> {
        let plan = self.compile(query)?;
        let (opt, report) = optimize(&plan);
        Ok((plan.explain(), opt.explain(), report))
    }

    /// Run a query, returning materialized outputs keyed by name.
    pub fn run(&self, query: &str) -> Result<HashMap<String, Dataset>, GmqlError> {
        self.run_analyze(query).map(|(out, _)| out)
    }

    /// Run a query and also return per-node execution metrics (EXPLAIN
    /// ANALYZE).
    pub fn run_analyze(
        &self,
        query: &str,
    ) -> Result<(HashMap<String, Dataset>, Vec<crate::exec::NodeMetrics>), GmqlError> {
        let plan = self.compile(query)?;
        let provider = |name: &str| -> Result<Dataset, GmqlError> {
            self.datasets
                .get(name)
                .cloned()
                .ok_or_else(|| GmqlError::semantic(format!("unknown dataset {name:?}")))
        };
        crate::exec::execute_with_metrics(&plan, &provider, &self.ctx, &self.opts)
    }

    /// [`run_analyze`](Self::run_analyze) under a resource governor:
    /// deadline, memory budget, and cancellation are enforced at every
    /// plan-node boundary and inside operator hot loops. The engine (and
    /// its registered datasets) survives a tripped query — the next call
    /// runs normally.
    pub fn run_governed(
        &self,
        query: &str,
        governor: &crate::governor::QueryGovernor,
    ) -> Result<(HashMap<String, Dataset>, Vec<crate::exec::NodeMetrics>), GmqlError> {
        let plan = self.compile(query)?;
        let provider = |name: &str| -> Result<Dataset, GmqlError> {
            self.datasets
                .get(name)
                .cloned()
                .ok_or_else(|| GmqlError::semantic(format!("unknown dataset {name:?}")))
        };
        crate::exec::execute_governed(&plan, &provider, &self.ctx, &self.opts, Some(governor))
    }

    /// Estimate the output size of a query without running it, from
    /// source statistics (used by the federation protocol, §4.4). The
    /// estimate multiplies source cardinalities through per-operator
    /// selectivity heuristics and is intentionally cheap and rough.
    pub fn estimate(&self, query: &str) -> Result<QueryEstimate, GmqlError> {
        let plan = self.compile(query)?;
        let (plan, _) = optimize(&plan);
        let mut regions: Vec<f64> = Vec::with_capacity(plan.nodes.len());
        let mut samples: Vec<f64> = Vec::with_capacity(plan.nodes.len());
        for node in &plan.nodes {
            use crate::ast::Operator as Op;
            use crate::plan::PlanOp;
            let (s, r) = match &node.op {
                PlanOp::Source(name) => {
                    let d = self
                        .datasets
                        .get(name)
                        .ok_or_else(|| GmqlError::semantic(format!("unknown dataset {name:?}")))?;
                    (d.sample_count() as f64, d.region_count() as f64)
                }
                PlanOp::Apply(op) => {
                    let input = |i: usize| (samples[node.inputs[i]], regions[node.inputs[i]]);
                    match op {
                        Op::Select { region, .. } => {
                            let (s, r) = input(0);
                            // Classic 1/3 selectivity per predicate level.
                            let rf = if region.is_some() { 1.0 / 3.0 } else { 1.0 };
                            (s / 3.0, r * rf / 3.0)
                        }
                        Op::Project { .. } | Op::Extend { .. } | Op::Order { .. } => input(0),
                        Op::Merge { .. } | Op::Group { .. } => {
                            let (_, r) = input(0);
                            (1.0, r)
                        }
                        Op::Union => {
                            let (s0, r0) = input(0);
                            let (s1, r1) = input(1);
                            (s0 + s1, r0 + r1)
                        }
                        Op::Difference { .. } => {
                            let (s, r) = input(0);
                            (s, r / 2.0)
                        }
                        Op::Join { .. } => {
                            let (s0, r0) = input(0);
                            let (s1, r1) = input(1);
                            // Distance joins are sparse: assume 1% pairing.
                            (s0 * s1, (r0 * r1).sqrt() * 0.01 * (r0.max(r1)).sqrt())
                        }
                        Op::Map { .. } => {
                            let (s0, r0) = input(0);
                            let (s1, _) = input(1);
                            (s0 * s1, r0 * s1)
                        }
                        Op::Cover { .. } => {
                            let (_, r) = input(0);
                            (1.0, r)
                        }
                    }
                }
            };
            samples.push(s);
            regions.push(r);
        }
        let mut est = QueryEstimate::default();
        for (name, id) in &plan.outputs {
            est.outputs.push(EstimatedOutput {
                name: name.clone(),
                samples: samples[*id].ceil() as usize,
                regions: regions[*id].ceil() as usize,
                // ~48 bytes per coordinate row + 16 per variable attribute.
                bytes: (regions[*id] * (48.0 + 16.0 * plan.nodes[*id].schema.len() as f64)).ceil()
                    as usize,
            });
        }
        Ok(est)
    }
}

/// Size estimate for a query's outputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryEstimate {
    /// One entry per MATERIALIZE output.
    pub outputs: Vec<EstimatedOutput>,
}

/// Estimated cardinalities of one output dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstimatedOutput {
    /// Output name.
    pub name: String,
    /// Estimated sample count.
    pub samples: usize,
    /// Estimated region count.
    pub regions: usize,
    /// Estimated serialized bytes.
    pub bytes: usize,
}

/// Convenience: compile + optimize + execute against a schema catalog and
/// provider (the repository/federation entry point).
pub fn run_with_provider(
    query: &str,
    schema_of: &dyn Fn(&str) -> Option<Schema>,
    provider: &dyn crate::exec::DatasetProvider,
    ctx: &ExecContext,
    opts: &ExecOptions,
) -> Result<HashMap<String, Dataset>, GmqlError> {
    let statements = parse(query)?;
    let plan = LogicalPlan::compile(&statements, schema_of)?;
    execute(&plan, provider, ctx, opts)
}

/// [`run_with_provider`] under a [`QueryGovernor`](crate::governor::QueryGovernor),
/// additionally returning per-node metrics (the partial-progress /
/// profiling path of `nggc query --timeout/--max-memory`).
pub fn run_with_provider_governed(
    query: &str,
    schema_of: &dyn Fn(&str) -> Option<Schema>,
    provider: &dyn crate::exec::DatasetProvider,
    ctx: &ExecContext,
    opts: &ExecOptions,
    governor: &crate::governor::QueryGovernor,
) -> Result<(HashMap<String, Dataset>, Vec<crate::exec::NodeMetrics>), GmqlError> {
    let statements = parse(query)?;
    let plan = LogicalPlan::compile(&statements, schema_of)?;
    crate::exec::execute_governed(&plan, provider, ctx, opts, Some(governor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Metadata, Sample, Strand, ValueType};

    fn engine() -> GmqlEngine {
        let mut engine = GmqlEngine::with_workers(2);

        let annot_schema = Schema::new(vec![Attribute::new("annType", ValueType::Str)]).unwrap();
        let mut annotations = Dataset::new("ANNOTATIONS", annot_schema);
        annotations
            .add_sample(Sample::new("ucsc", "ANNOTATIONS").with_regions(vec![
                GRegion::new("chr1", 0, 1000, Strand::Unstranded)
                    .with_values(vec!["promoter".into()]),
                GRegion::new("chr1", 5000, 6000, Strand::Unstranded)
                    .with_values(vec!["promoter".into()]),
                GRegion::new("chr1", 2000, 3000, Strand::Unstranded)
                    .with_values(vec!["enhancer".into()]),
            ]))
            .unwrap();
        engine.register(annotations);

        let peak_schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
        let mut encode = Dataset::new("ENCODE", peak_schema);
        for (name, datatype, positions) in [
            ("chip1", "ChipSeq", vec![100u64, 200, 5100]),
            ("chip2", "ChipSeq", vec![700]),
            ("dnase1", "DnaseSeq", vec![100]),
        ] {
            let regions = positions
                .iter()
                .map(|&p| {
                    GRegion::new("chr1", p, p + 50, Strand::Unstranded)
                        .with_values(vec![0.001.into()])
                })
                .collect();
            encode
                .add_sample(
                    Sample::new(name, "ENCODE")
                        .with_regions(regions)
                        .with_metadata(Metadata::from_pairs([("dataType", datatype)])),
                )
                .unwrap();
        }
        engine.register(encode);
        engine
    }

    #[test]
    fn full_paper_query_runs() {
        let engine = engine();
        let out = engine
            .run(
                "PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
                 PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
                 RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
                 MATERIALIZE RESULT;",
            )
            .unwrap();
        let result = &out["RESULT"];
        // 1 annotation sample × 2 ChipSeq samples.
        assert_eq!(result.sample_count(), 2);
        for s in &result.samples {
            assert_eq!(s.region_count(), 2, "two promoter regions each");
        }
        let counts: Vec<i64> = result.samples[0]
            .regions
            .iter()
            .map(|r| r.values.last().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(counts, vec![2, 1], "chip1: 2 peaks in promoter 1, 1 in promoter 2");
        result.validate().unwrap();
    }

    #[test]
    fn unknown_dataset_fails_compile() {
        let engine = engine();
        assert!(engine.run("X = SELECT(a == 1) NOPE;").is_err());
    }

    #[test]
    fn explain_reports_optimizations() {
        let engine = engine();
        let (_, optimized, report) = engine
            .explain(
                "A = SELECT(dataType == 'ChipSeq') ENCODE;
                 B = SELECT(dataType == 'ChipSeq') ENCODE;
                 M = MAP(n AS COUNT) A B;
                 MATERIALIZE M;",
            )
            .unwrap();
        assert_eq!(report.nodes_deduplicated, 1);
        assert!(optimized.contains("MAP"));
    }

    #[test]
    fn estimate_produces_positive_sizes() {
        let engine = engine();
        let est = engine
            .estimate(
                "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
                 R = MAP(n AS COUNT) ANNOTATIONS PEAKS;
                 MATERIALIZE R;",
            )
            .unwrap();
        assert_eq!(est.outputs.len(), 1);
        assert!(est.outputs[0].bytes > 0);
        assert!(est.outputs[0].regions > 0);
    }

    #[test]
    fn optimized_and_unoptimized_agree() {
        let engine = engine();
        let q = "A = SELECT(dataType == 'ChipSeq') ENCODE;
                 B = SELECT(region: p_value < 0.01) A;
                 MATERIALIZE B;";
        let opt = engine.run(q).unwrap();
        let engine2 = engine.with_options(ExecOptions { meta_first: false, optimize: false });
        let raw = engine2.run(q).unwrap();
        assert_eq!(opt["B"].sample_count(), raw["B"].sample_count());
        assert_eq!(opt["B"].region_count(), raw["B"].region_count());
    }

    #[test]
    fn semijoin_restricts_by_external_metadata() {
        let mut engine = engine();
        // External dataset: only ChipSeq-typed samples.
        let mut ext = Dataset::new("EXT", Schema::empty());
        ext.add_sample(
            Sample::new("probe", "EXT")
                .with_metadata(Metadata::from_pairs([("dataType", "ChipSeq")])),
        )
        .unwrap();
        engine.register(ext);
        let out =
            engine.run("X = SELECT(semijoin: dataType IN EXT) ENCODE; MATERIALIZE X;").unwrap();
        assert_eq!(out["X"].sample_count(), 2, "the two ChipSeq samples");
        // Negated form keeps the complement.
        let out =
            engine.run("X = SELECT(semijoin: dataType NOT IN EXT) ENCODE; MATERIALIZE X;").unwrap();
        assert_eq!(out["X"].sample_count(), 1, "only the DnaseSeq sample");
        // Combined with a metadata predicate.
        let out = engine
            .run(
                "X = SELECT(dataType == 'DnaseSeq'; semijoin: dataType IN EXT) ENCODE;
                 MATERIALIZE X;",
            )
            .unwrap();
        assert_eq!(out["X"].sample_count(), 0);
    }

    #[test]
    fn semijoin_unknown_external_fails_compile() {
        let engine = engine();
        assert!(engine.run("X = SELECT(semijoin: cell IN NOPE) ENCODE; MATERIALIZE X;").is_err());
    }

    #[test]
    fn project_meta_section_drops_metadata() {
        let engine = engine();
        let out =
            engine.run("X = PROJECT(p_value; meta: dataType) ENCODE; MATERIALIZE X;").unwrap();
        let s = &out["X"].samples[0];
        assert!(s.metadata.contains_attribute("dataType"));
        assert_eq!(s.metadata.len(), 1, "all other metadata dropped");
        assert_eq!(out["X"].schema.len(), 1);
    }

    #[test]
    fn provenance_flows_through_pipeline() {
        let engine = engine();
        let out = engine
            .run(
                "PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
                 R = MAP(n AS COUNT) ANNOTATIONS PEAKS;
                 MATERIALIZE R;",
            )
            .unwrap();
        let s = &out["R"].samples[0];
        let chain = s.provenance.operator_chain();
        assert_eq!(chain[0], "MAP");
        let sources = s.provenance.sources();
        assert!(sources.contains(&("ANNOTATIONS".to_string(), "ucsc".to_string())));
        assert!(sources.iter().any(|(d, _)| d == "ENCODE"));
    }
}
