//! Lexical analysis of GMQL query text.

use crate::error::GmqlError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Quoted string literal (single or double quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Number(n) => write!(f, "{n}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Semi => write!(f, ";"),
            Tok::Colon => write!(f, ":"),
            Tok::Assign => write!(f, "="),
            Tok::EqEq => write!(f, "=="),
            Tok::NotEq => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenise GMQL text. `#` starts a comment running to end of line.
pub fn lex(text: &str) -> Result<Vec<Spanned>, GmqlError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    let (mut line, mut col) = (1usize, 1usize);

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '(' => {
                bump!();
                out.push(Spanned { tok: Tok::LParen, line: tl, column: tc });
            }
            ')' => {
                bump!();
                out.push(Spanned { tok: Tok::RParen, line: tl, column: tc });
            }
            ',' => {
                bump!();
                out.push(Spanned { tok: Tok::Comma, line: tl, column: tc });
            }
            ';' => {
                bump!();
                out.push(Spanned { tok: Tok::Semi, line: tl, column: tc });
            }
            ':' => {
                bump!();
                out.push(Spanned { tok: Tok::Colon, line: tl, column: tc });
            }
            '+' => {
                bump!();
                out.push(Spanned { tok: Tok::Plus, line: tl, column: tc });
            }
            '-' => {
                bump!();
                out.push(Spanned { tok: Tok::Minus, line: tl, column: tc });
            }
            '*' => {
                bump!();
                out.push(Spanned { tok: Tok::Star, line: tl, column: tc });
            }
            '/' => {
                bump!();
                out.push(Spanned { tok: Tok::Slash, line: tl, column: tc });
            }
            '=' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned { tok: Tok::EqEq, line: tl, column: tc });
                } else {
                    out.push(Spanned { tok: Tok::Assign, line: tl, column: tc });
                }
            }
            '!' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned { tok: Tok::NotEq, line: tl, column: tc });
                } else {
                    return Err(GmqlError::syntax(tl, tc, "expected '=' after '!'"));
                }
            }
            '<' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned { tok: Tok::Le, line: tl, column: tc });
                } else {
                    out.push(Spanned { tok: Tok::Lt, line: tl, column: tc });
                }
            }
            '>' => {
                bump!();
                if chars.peek() == Some(&'=') {
                    bump!();
                    out.push(Spanned { tok: Tok::Ge, line: tl, column: tc });
                } else {
                    out.push(Spanned { tok: Tok::Gt, line: tl, column: tc });
                }
            }
            '\'' | '"' => {
                let quote = c;
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some(ch) if ch == quote => break,
                        Some('\n') | None => {
                            return Err(GmqlError::syntax(tl, tc, "unterminated string literal"))
                        }
                        Some(ch) => s.push(ch),
                    }
                }
                out.push(Spanned { tok: Tok::Str(s), line: tl, column: tc });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_ascii_digit() || ch == '.' {
                        s.push(ch);
                        bump!();
                    } else if (ch == 'e' || ch == 'E')
                        && !s.is_empty()
                        && !s.contains('e')
                        && !s.contains('E')
                    {
                        s.push(ch);
                        bump!();
                        if let Some(&sign) = chars.peek() {
                            if sign == '+' || sign == '-' {
                                s.push(sign);
                                bump!();
                            }
                        }
                    } else {
                        break;
                    }
                }
                let n: f64 = s
                    .parse()
                    .map_err(|_| GmqlError::syntax(tl, tc, format!("bad number {s:?}")))?;
                out.push(Spanned { tok: Tok::Number(n), line: tl, column: tc });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&ch) = chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' || ch == '.' {
                        s.push(ch);
                        bump!();
                    } else {
                        break;
                    }
                }
                out.push(Spanned { tok: Tok::Ident(s), line: tl, column: tc });
            }
            other => {
                return Err(GmqlError::syntax(tl, tc, format!("unexpected character {other:?}")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<Tok> {
        lex(text).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn paper_example_lexes() {
        let ts = toks("PROMS = SELECT(annType == 'promoter') ANNOTATIONS;");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("PROMS".into()),
                Tok::Assign,
                Tok::Ident("SELECT".into()),
                Tok::LParen,
                Tok::Ident("annType".into()),
                Tok::EqEq,
                Tok::Str("promoter".into()),
                Tok::RParen,
                Tok::Ident("ANNOTATIONS".into()),
                Tok::Semi,
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        assert_eq!(
            toks("p_value <= 0.05 AND score > 1e3"),
            vec![
                Tok::Ident("p_value".into()),
                Tok::Le,
                Tok::Number(0.05),
                Tok::Ident("AND".into()),
                Tok::Ident("score".into()),
                Tok::Gt,
                Tok::Number(1000.0),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(toks("# full line\nX = Y; # trailing"), toks("X = Y;"));
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(toks("left.cell"), vec![Tok::Ident("left.cell".into())]);
    }

    #[test]
    fn positions_tracked() {
        let sp = lex("A\n  B").unwrap();
        assert_eq!((sp[0].line, sp[0].column), (1, 1));
        assert_eq!((sp[1].line, sp[1].column), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("x ! y").is_err());
    }

    #[test]
    fn double_quotes_accepted() {
        assert_eq!(toks("\"hi\""), vec![Tok::Str("hi".into())]);
    }
}
