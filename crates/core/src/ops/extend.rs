//! EXTEND: lift region aggregates into sample metadata.
//!
//! This is the bridge between the region and metadata layers of GDM:
//! `EXTEND(region_count AS COUNT) D` annotates every sample with its
//! region count, after which metadata predicates (and EXTEND-derived
//! statistics generally) can drive sample selection.

use crate::aggregates::Aggregate;
use crate::error::GmqlError;
use nggc_engine::ExecContext;
use nggc_gdm::{Dataset, Provenance, Sample, Value};

/// Execute EXTEND.
pub fn extend(
    ctx: &ExecContext,
    assignments: &[(String, Aggregate)],
    input: &Dataset,
) -> Result<Dataset, GmqlError> {
    // Resolve aggregate attribute positions once against the schema.
    let resolved: Vec<(String, Aggregate, Option<usize>)> = assignments
        .iter()
        .map(|(name, agg)| {
            agg.resolve(&input.schema).map(|(pos, _)| (name.clone(), agg.clone(), pos))
        })
        .collect::<Result<_, _>>()?;
    let detail =
        assignments.iter().map(|(n, a)| format!("{n} AS {a}")).collect::<Vec<_>>().join(", ");

    let samples = ctx.map_samples(&input.samples, |s| {
        let mut out = Sample::derived(
            s.name.clone(),
            Provenance::derived("EXTEND", detail.clone(), vec![s.provenance.clone()]),
        );
        out.regions = s.regions.clone();
        out.metadata = s.metadata.clone();
        for (name, agg, pos) in &resolved {
            let value = match pos {
                Some(i) => {
                    let vals: Vec<&Value> = s.regions.iter().map(|r| &r.values[*i]).collect();
                    agg.compute(&vals, s.regions.len())
                }
                None => agg.compute(&[], s.regions.len()),
            };
            out.metadata.insert(name, value.render());
        }
        out
    });

    let mut out = Dataset::new(input.name.clone(), input.schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::AggFunc;
    use nggc_gdm::{Attribute, GRegion, Schema, Strand, ValueType};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("D", schema);
        ds.add_sample(Sample::new("a", "D").with_regions(vec![
            GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![Value::Float(1.0)]),
            GRegion::new("chr1", 20, 30, Strand::Pos).with_values(vec![Value::Float(3.0)]),
        ]))
        .unwrap();
        ds.add_sample(Sample::new("b", "D").with_regions(vec![])).unwrap();
        ds
    }

    #[test]
    fn count_and_avg_in_metadata() {
        let ctx = ExecContext::with_workers(2);
        let out = extend(
            &ctx,
            &[
                ("n".into(), Aggregate::count()),
                ("avg_score".into(), Aggregate::over(AggFunc::Avg, "score")),
            ],
            &dataset(),
        )
        .unwrap();
        assert_eq!(out.samples[0].metadata.first("n"), Some("2"));
        assert_eq!(out.samples[0].metadata.first("avg_score"), Some("2"));
        assert_eq!(out.samples[1].metadata.first("n"), Some("0"));
        assert_eq!(out.samples[1].metadata.first("avg_score"), Some("."), "empty = null");
    }

    #[test]
    fn regions_unchanged() {
        let ctx = ExecContext::with_workers(1);
        let ds = dataset();
        let out = extend(&ctx, &[("n".into(), Aggregate::count())], &ds).unwrap();
        assert_eq!(out.samples[0].regions, ds.samples[0].regions);
        assert_eq!(out.schema, ds.schema);
    }

    #[test]
    fn bad_aggregate_rejected() {
        let ctx = ExecContext::with_workers(1);
        let err = extend(&ctx, &[("x".into(), Aggregate::over(AggFunc::Sum, "zzz"))], &dataset());
        assert!(err.is_err());
    }
}
