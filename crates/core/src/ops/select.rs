//! SELECT: filter samples by metadata, regions by a region predicate.
//!
//! This is the workhorse of the paper's §2 example
//! (`SELECT(annType == 'promoter') ANNOTATIONS`). The **metadata-first**
//! strategy — decide sample membership from metadata before touching any
//! region — is the optimization GMQL's logical optimizer relies on; it is
//! toggleable here for the E10 ablation.

use crate::ast::SemiJoin;
use crate::error::GmqlError;
use crate::exec::ExecOptions;
use crate::ops::joinby_matches;
use crate::predicates::{MetaPredicate, RegionExpr};
use nggc_engine::ExecContext;
use nggc_gdm::{Dataset, Provenance, Sample};

/// Execute SELECT. `ext` is the external dataset of the metadata
/// semijoin, when one is declared.
pub fn select(
    ctx: &ExecContext,
    opts: &ExecOptions,
    meta: &MetaPredicate,
    region: Option<&RegionExpr>,
    semijoin: Option<&SemiJoin>,
    input: &Dataset,
    ext: Option<&Dataset>,
) -> Result<Dataset, GmqlError> {
    let mut detail = match region {
        Some(r) => format!("{meta}; region: {r}"),
        None => meta.to_string(),
    };
    if let Some(sj) = semijoin {
        detail.push_str(&format!(
            "; semijoin: {} {}IN {}",
            sj.attrs.join(","),
            if sj.negated { "NOT " } else { "" },
            sj.external
        ));
    }
    let schema = input.schema.clone();

    // Combined sample-level admission: metadata predicate AND semijoin.
    let admit = |s: &Sample| -> bool {
        if !meta.eval(&s.metadata) {
            return false;
        }
        match (semijoin, ext) {
            (Some(sj), Some(ext_ds)) => {
                let matched = ext_ds
                    .samples
                    .iter()
                    .any(|e| joinby_matches(&s.metadata, &e.metadata, &sj.attrs));
                matched != sj.negated
            }
            (Some(sj), None) => {
                // Plan construction always supplies the external input.
                unreachable!("semijoin {sj:?} without external dataset")
            }
            (None, _) => true,
        }
    };

    let filter_regions = |s: &Sample| -> Sample {
        let mut out = Sample::derived(
            s.name.clone(),
            Provenance::derived("SELECT", detail.clone(), vec![s.provenance.clone()]),
        );
        out.metadata = s.metadata.clone();
        out.regions = match region {
            Some(expr) => {
                s.regions.iter().filter(|r| expr.eval_bool(r, &schema)).cloned().collect()
            }
            None => s.regions.clone(),
        };
        out
    };

    let samples: Vec<Sample> = if opts.meta_first {
        // Evaluate the cheap metadata predicate (and semijoin) first and
        // only scan the regions of surviving samples.
        let survivors: Vec<&Sample> = input.samples.iter().filter(|s| admit(s)).collect();
        ctx.pool().parallel_map(survivors, filter_regions)
    } else {
        // Ablation baseline: scan every sample's regions, then filter.
        let all = ctx.map_samples(&input.samples, |s| {
            let keep = admit(s);
            (keep, filter_regions(s))
        });
        all.into_iter().filter_map(|(keep, s)| keep.then_some(s)).collect()
    };

    let mut out = Dataset::new(input.name.clone(), input.schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates::CmpOp;
    use nggc_gdm::{Attribute, GRegion, Metadata, Schema, Strand, Value, ValueType};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("D", schema);
        ds.add_sample(
            Sample::new("cancer1", "D")
                .with_regions(vec![
                    GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![Value::Float(0.001)]),
                    GRegion::new("chr1", 20, 30, Strand::Pos).with_values(vec![Value::Float(0.5)]),
                ])
                .with_metadata(Metadata::from_pairs([("karyotype", "cancer")])),
        )
        .unwrap();
        ds.add_sample(
            Sample::new("normal1", "D")
                .with_regions(vec![
                    GRegion::new("chr2", 5, 9, Strand::Neg).with_values(vec![Value::Float(0.002)])
                ])
                .with_metadata(Metadata::from_pairs([("karyotype", "normal")])),
        )
        .unwrap();
        ds
    }

    #[test]
    fn metadata_filtering_drops_samples() {
        let ctx = ExecContext::with_workers(2);
        let out = select(
            &ctx,
            &ExecOptions::default(),
            &MetaPredicate::eq("karyotype", "cancer"),
            None,
            None,
            &dataset(),
            None,
        )
        .unwrap();
        assert_eq!(out.sample_count(), 1);
        assert_eq!(out.samples[0].name, "cancer1");
        assert_eq!(out.samples[0].region_count(), 2, "regions untouched");
    }

    #[test]
    fn region_predicate_filters_regions() {
        let ctx = ExecContext::with_workers(2);
        let pred = RegionExpr::attr("p_value").cmp(CmpOp::Lt, RegionExpr::num(0.01));
        let out = select(
            &ctx,
            &ExecOptions::default(),
            &MetaPredicate::True,
            Some(&pred),
            None,
            &dataset(),
            None,
        )
        .unwrap();
        assert_eq!(out.sample_count(), 2, "both samples kept");
        assert_eq!(out.samples[0].region_count(), 1, "high-p region dropped");
        assert_eq!(out.samples[1].region_count(), 1);
    }

    #[test]
    fn meta_first_and_region_first_agree() {
        let ctx = ExecContext::with_workers(2);
        let pred = RegionExpr::attr("left").cmp(CmpOp::Ge, RegionExpr::Lit(Value::Int(5)));
        let meta = MetaPredicate::eq("karyotype", "normal");
        let a = select(
            &ctx,
            &ExecOptions { meta_first: true, ..Default::default() },
            &meta,
            Some(&pred),
            None,
            &dataset(),
            None,
        )
        .unwrap();
        let b = select(
            &ctx,
            &ExecOptions { meta_first: false, ..Default::default() },
            &meta,
            Some(&pred),
            None,
            &dataset(),
            None,
        )
        .unwrap();
        assert_eq!(a.sample_count(), b.sample_count());
        assert_eq!(a.samples[0].regions, b.samples[0].regions);
    }

    #[test]
    fn provenance_records_predicate() {
        let ctx = ExecContext::with_workers(1);
        let out = select(
            &ctx,
            &ExecOptions::default(),
            &MetaPredicate::eq("karyotype", "cancer"),
            None,
            None,
            &dataset(),
            None,
        )
        .unwrap();
        let p = out.samples[0].provenance.to_string();
        assert!(p.contains("SELECT"));
        assert!(p.contains("karyotype"));
        assert_eq!(out.samples[0].provenance.sources(), vec![("D".into(), "cancer1".into())]);
    }
}
