//! GROUP: group samples by metadata, deduplicating regions within groups.
//!
//! Like MERGE, GROUP collapses each metadata group into one sample, but it
//! additionally **deduplicates regions with identical coordinates**,
//! computing the requested aggregates over each duplicate set (e.g. the
//! mean signal of replicated peaks across replicas of an experiment).

use crate::aggregates::Aggregate;
use crate::error::GmqlError;
use crate::ops::merge::partition_by_meta;
use nggc_engine::{ExecContext, CHECKPOINT_STRIDE};
use nggc_gdm::{Dataset, GRegion, Metadata, Provenance, Sample, Schema, Value};

/// Execute GROUP. `out_schema` = input schema + aggregate attributes.
pub fn group(
    ctx: &ExecContext,
    by: &[String],
    region_aggs: &[(String, Aggregate)],
    input: &Dataset,
    out_schema: &Schema,
) -> Result<Dataset, GmqlError> {
    let resolved: Vec<(Aggregate, Option<usize>)> = region_aggs
        .iter()
        .map(|(_, agg)| agg.resolve(&input.schema).map(|(pos, _)| (agg.clone(), pos)))
        .collect::<Result<_, _>>()?;
    let groups = partition_by_meta(input, by);
    let detail = format!("by: {}", by.join(","));

    let samples = ctx.pool().parallel_map(groups, |(key, members)| {
        let provenance = Provenance::derived(
            "GROUP",
            detail.clone(),
            members.iter().map(|s| s.provenance.clone()).collect(),
        );
        let name =
            if key.is_empty() { "group".to_owned() } else { format!("group_{}", key.join("_")) };
        let mut metadata = Metadata::new();
        for s in &members {
            metadata.merge_from(&s.metadata, "");
        }
        for (attr, val) in by.iter().zip(&key) {
            if !val.is_empty() {
                metadata.insert(attr, val.clone());
            }
        }
        // Pool all regions, sort, then fold runs of identical coordinates.
        let mut pooled: Vec<GRegion> =
            members.iter().flat_map(|s| s.regions.iter().cloned()).collect();
        nggc_engine::parallel_sort_by(ctx.pool(), &mut pooled, |a, b| a.cmp_coords(b));
        let mut regions: Vec<GRegion> = Vec::with_capacity(pooled.len());
        let mut i = 0;
        let mut tick = 0usize;
        while i < pooled.len() {
            // Stride checkpoint over the duplicate-fold loop: stop
            // folding once the governor trips (the executor raises the
            // typed error at the node boundary).
            if tick & (CHECKPOINT_STRIDE - 1) == 0 && ctx.interrupted() {
                break;
            }
            tick = tick.wrapping_add(1);
            let mut j = i + 1;
            while j < pooled.len() && pooled[j].cmp_coords(&pooled[i]) == std::cmp::Ordering::Equal
            {
                j += 1;
            }
            let dup = &pooled[i..j];
            let mut rep = dup[0].clone();
            for (agg, pos) in &resolved {
                let value = match pos {
                    Some(p) => {
                        let vals: Vec<&Value> = dup.iter().map(|r| &r.values[*p]).collect();
                        agg.compute(&vals, dup.len())
                    }
                    None => agg.compute(&[], dup.len()),
                };
                rep.values.push(value);
            }
            regions.push(rep);
            i = j;
        }
        let mut out = Sample::derived(name, provenance);
        out.metadata = metadata;
        out.regions = regions;
        out
    });

    let mut out = Dataset::new(input.name.clone(), out_schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::AggFunc;
    use nggc_gdm::{Attribute, Strand, ValueType};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("signal", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("D", schema);
        // Two replicas of the same experiment share a peak at chr1:0-10.
        ds.add_sample(
            Sample::new("rep1", "D")
                .with_regions(vec![
                    GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![Value::Float(2.0)])
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds.add_sample(
            Sample::new("rep2", "D")
                .with_regions(vec![
                    GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![Value::Float(4.0)]),
                    GRegion::new("chr1", 50, 60, Strand::Pos).with_values(vec![Value::Float(1.0)]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds
    }

    fn out_schema(ds: &Dataset, aggs: &[(String, Aggregate)]) -> Schema {
        let op =
            crate::ast::Operator::Group { by: vec!["cell".into()], region_aggs: aggs.to_vec() };
        crate::plan::infer_schema(&op, &[&ds.schema]).unwrap()
    }

    #[test]
    fn duplicates_fold_with_aggregates() {
        let ds = dataset();
        let aggs = vec![
            ("n".to_string(), Aggregate::count()),
            ("avg_signal".to_string(), Aggregate::over(AggFunc::Avg, "signal")),
        ];
        let schema = out_schema(&ds, &aggs);
        let ctx = ExecContext::with_workers(2);
        let out = group(&ctx, &["cell".into()], &aggs, &ds, &schema).unwrap();
        assert_eq!(out.sample_count(), 1);
        let regions = &out.samples[0].regions;
        assert_eq!(regions.len(), 2, "duplicate peak folded");
        // chr1:0-10 duplicated twice: count 2, avg 3.0; keeps first value row.
        assert_eq!(regions[0].values, vec![Value::Float(2.0), Value::Int(2), Value::Float(3.0)]);
        assert_eq!(regions[1].values, vec![Value::Float(1.0), Value::Int(1), Value::Float(1.0)]);
        out.validate().unwrap();
    }

    #[test]
    fn group_key_in_metadata() {
        let ds = dataset();
        let schema = out_schema(&ds, &[]);
        let ctx = ExecContext::with_workers(1);
        let out = group(&ctx, &["cell".into()], &[], &ds, &schema).unwrap();
        assert!(out.samples[0].metadata.has("cell", "HeLa"));
        assert_eq!(out.samples[0].name, "group_HeLa");
    }
}
