//! COVER and its variants: FLAT, SUMMIT, HISTOGRAM.
//!
//! "COVER deals with replicas of a same experiment" (paper §2): it
//! flattens the samples of a dataset (or of each metadata group) into the
//! genomic regions where between `minAcc` and `maxAcc` input regions
//! accumulate. Every output region carries the `accindex` accumulation
//! attribute plus optional aggregates over the contributing regions.

use crate::aggregates::Aggregate;
use crate::ast::{AccBound, CoverVariant};
use crate::error::GmqlError;
use crate::ops::merge::partition_by_meta;
use nggc_engine::{coverage_segments, merge_cover, CovSeg, ExecContext, CHECKPOINT_STRIDE};
use nggc_gdm::{Chrom, Dataset, GRegion, Metadata, Provenance, Sample, Schema, Strand, Value};

/// Execute COVER/FLAT/SUMMIT/HISTOGRAM.
#[allow(clippy::too_many_arguments)]
pub fn cover(
    ctx: &ExecContext,
    variant: CoverVariant,
    min_acc: AccBound,
    max_acc: AccBound,
    groupby: &[String],
    aggs: &[(String, Aggregate)],
    input: &Dataset,
    out_schema: &Schema,
) -> Result<Dataset, GmqlError> {
    let resolved: Vec<(Aggregate, Option<usize>)> = aggs
        .iter()
        .map(|(_, agg)| agg.resolve(&input.schema).map(|(pos, _)| (agg.clone(), pos)))
        .collect::<Result<_, _>>()?;
    let groups = partition_by_meta(input, groupby);
    let detail = format!("{variant:?}({min_acc:?}, {max_acc:?})");

    let samples = ctx.pool().parallel_map(groups, |(key, members)| {
        let n = members.len();
        let min = min_acc.resolve(n, true).max(1);
        let max = max_acc.resolve(n, false);

        // Pool all regions of the group, sorted, then process per chrom.
        let mut pooled: Vec<GRegion> =
            members.iter().flat_map(|s| s.regions.iter().cloned()).collect();
        nggc_engine::parallel_sort_by(ctx.pool(), &mut pooled, |a, b| a.cmp_coords(b));
        let pool_sample =
            Sample::derived("pool", Provenance::source("tmp", "pool")).with_regions(pooled);

        let chroms: Vec<Chrom> = pool_sample.chromosomes();
        let per_chrom: Vec<Vec<GRegion>> = ctx.pool().parallel_map(chroms, |c| {
            // Job-boundary checkpoint: skip queued chromosome kernels
            // once the governor has tripped.
            if ctx.interrupted() {
                return Vec::new();
            }
            let slice = pool_sample.chrom_slice(&c);
            let intervals: Vec<(u64, u64)> = slice.iter().map(|r| (r.left, r.right)).collect();
            let segs = coverage_segments(&intervals);
            let shapes: Vec<(u64, u64, usize)> = match variant {
                CoverVariant::Cover => merge_cover(&segs, min, max),
                CoverVariant::Histogram => segs
                    .iter()
                    .filter(|s| s.acc >= min && s.acc <= max)
                    .map(|s| (s.left, s.right, s.acc))
                    .collect(),
                CoverVariant::Summit => summits(&segs, min, max),
                CoverVariant::Flat => merge_cover(&segs, min, max)
                    .into_iter()
                    .map(|(l, r, acc)| {
                        let (fl, fr) = flat_extent(slice, l, r);
                        (fl, fr, acc)
                    })
                    .collect(),
            };
            let mut regions = Vec::with_capacity(shapes.len());
            for (idx, (l, r, acc)) in shapes.into_iter().enumerate() {
                // The aggregate pass scans contributing regions per
                // shape; poll on a stride so wide covers abort mid-loop.
                if idx & (CHECKPOINT_STRIDE - 1) == 0 && ctx.interrupted() {
                    break;
                }
                let mut values = vec![Value::Int(acc as i64)];
                if !resolved.is_empty() {
                    // Contributing regions: those overlapping the output.
                    let contributing: Vec<&GRegion> = slice
                        .iter()
                        .filter(|x| nggc_gdm::interval_overlap(x.left, x.right, l, r))
                        .collect();
                    for (agg, pos) in &resolved {
                        let value = match pos {
                            Some(p) => {
                                let vals: Vec<&Value> =
                                    contributing.iter().map(|x| &x.values[*p]).collect();
                                agg.compute(&vals, contributing.len())
                            }
                            None => agg.compute(&[], contributing.len()),
                        };
                        values.push(value);
                    }
                }
                regions
                    .push(GRegion::new(c.as_str(), l, r, Strand::Unstranded).with_values(values));
            }
            regions
        });

        let provenance = Provenance::derived(
            variant.name(),
            detail.clone(),
            members.iter().map(|s| s.provenance.clone()).collect(),
        );
        let name = if key.is_empty() {
            variant.name().to_ascii_lowercase()
        } else {
            format!("{}_{}", variant.name().to_ascii_lowercase(), key.join("_"))
        };
        let mut metadata = Metadata::new();
        for s in &members {
            metadata.merge_from(&s.metadata, "");
        }
        for (attr, val) in groupby.iter().zip(&key) {
            if !val.is_empty() {
                metadata.insert(attr, val.clone());
            }
        }
        let mut out = Sample::derived(name, provenance);
        out.metadata = metadata;
        out.regions = per_chrom.into_iter().flatten().collect();
        out
    });

    let mut out = Dataset::new(input.name.clone(), out_schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

/// Local-maximum segments within maximal runs of qualifying coverage.
/// A segment is a summit when its accumulation is strictly greater than
/// the previous qualifying-run segment's and at least the next one's
/// (plateaus emit once, at their first segment).
fn summits(segs: &[CovSeg], min: usize, max: usize) -> Vec<(u64, u64, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < segs.len() {
        if segs[i].acc < min || segs[i].acc > max {
            i += 1;
            continue;
        }
        // A maximal run of contiguous qualifying segments.
        let mut j = i;
        while j + 1 < segs.len()
            && segs[j + 1].left == segs[j].right
            && segs[j + 1].acc >= min
            && segs[j + 1].acc <= max
        {
            j += 1;
        }
        let run = &segs[i..=j];
        for (k, s) in run.iter().enumerate() {
            let prev = if k == 0 { 0 } else { run[k - 1].acc };
            let next = if k + 1 == run.len() { 0 } else { run[k + 1].acc };
            if s.acc > prev && s.acc >= next {
                out.push((s.left, s.right, s.acc));
            }
        }
        i = j + 1;
    }
    out
}

/// FLAT extent: the hull of the original regions intersecting `[l, r)`.
fn flat_extent(slice: &[GRegion], l: u64, r: u64) -> (u64, u64) {
    let mut fl = l;
    let mut fr = r;
    for x in slice {
        if x.left >= r {
            break;
        }
        if nggc_gdm::interval_overlap(x.left, x.right, l, r) {
            fl = fl.min(x.left);
            fr = fr.max(x.right);
        }
    }
    (fl, fr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::AggFunc;
    use crate::ast::Operator;
    use crate::plan::infer_schema;
    use nggc_gdm::{Attribute, ValueType};

    fn replicas() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("signal", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("R", schema);
        // Three replicas with a common core at chr1:50-80.
        for (name, l, r, sig) in
            [("r1", 0u64, 80u64, 1.0), ("r2", 50u64, 100u64, 2.0), ("r3", 40u64, 90u64, 3.0)]
        {
            ds.add_sample(Sample::new(name, "R").with_regions(vec![
                GRegion::new("chr1", l, r, Strand::Unstranded).with_values(vec![sig.into()]),
            ]))
            .unwrap();
        }
        ds
    }

    fn run(
        variant: CoverVariant,
        min: AccBound,
        max: AccBound,
        aggs: Vec<(String, Aggregate)>,
    ) -> Dataset {
        let ds = replicas();
        let op = Operator::Cover {
            variant,
            min_acc: min,
            max_acc: max,
            groupby: vec![],
            aggs: aggs.clone(),
        };
        let schema = infer_schema(&op, &[&ds.schema]).unwrap();
        let ctx = ExecContext::with_workers(2);
        cover(&ctx, variant, min, max, &[], &aggs, &ds, &schema).unwrap()
    }

    #[test]
    fn cover_two_of_three() {
        let out = run(CoverVariant::Cover, AccBound::Value(2), AccBound::Any, vec![]);
        assert_eq!(out.sample_count(), 1);
        let s = &out.samples[0];
        // acc>=2 where at least two replicas stack: [40,90).
        assert_eq!(s.region_count(), 1);
        assert_eq!((s.regions[0].left, s.regions[0].right), (40, 90));
        assert_eq!(s.regions[0].values[0], Value::Int(3), "accindex is max accumulation");
    }

    #[test]
    fn cover_all_requires_every_replica() {
        let out = run(CoverVariant::Cover, AccBound::All, AccBound::All, vec![]);
        let s = &out.samples[0];
        assert_eq!((s.regions[0].left, s.regions[0].right), (50, 80));
    }

    #[test]
    fn histogram_emits_constant_acc_segments() {
        let out = run(CoverVariant::Histogram, AccBound::Any, AccBound::Any, vec![]);
        let s = &out.samples[0];
        // Boundaries at 0,40,50,80,90,100 → acc 1,2,3,2,1.
        let accs: Vec<i64> = s.regions.iter().map(|r| r.values[0].as_i64().unwrap()).collect();
        assert_eq!(accs, vec![1, 2, 3, 2, 1]);
        assert_eq!(s.regions[2].left, 50);
        assert_eq!(s.regions[2].right, 80);
    }

    #[test]
    fn summit_is_the_peak_segment() {
        let out = run(CoverVariant::Summit, AccBound::Any, AccBound::Any, vec![]);
        let s = &out.samples[0];
        assert_eq!(s.region_count(), 1);
        assert_eq!((s.regions[0].left, s.regions[0].right), (50, 80));
        assert_eq!(s.regions[0].values[0], Value::Int(3));
    }

    #[test]
    fn flat_extends_to_contributing_hull() {
        let out = run(CoverVariant::Flat, AccBound::Value(3), AccBound::Any, vec![]);
        let s = &out.samples[0];
        // Core [50,80) with acc 3; contributing regions span [0,100).
        assert_eq!((s.regions[0].left, s.regions[0].right), (0, 100));
    }

    #[test]
    fn aggregates_over_contributing_regions() {
        let out = run(
            CoverVariant::Cover,
            AccBound::Value(3),
            AccBound::Any,
            vec![
                ("n".into(), Aggregate::count()),
                ("max_sig".into(), Aggregate::over(AggFunc::Max, "signal")),
            ],
        );
        let r = &out.samples[0].regions[0];
        assert_eq!(r.values, vec![Value::Int(3), Value::Int(3), Value::Float(3.0)]);
        out.validate().unwrap();
    }

    #[test]
    fn groupby_produces_one_sample_per_group() {
        let mut ds = replicas();
        ds.samples[0].metadata.insert("cell", "A");
        ds.samples[1].metadata.insert("cell", "A");
        ds.samples[2].metadata.insert("cell", "B");
        let op = Operator::Cover {
            variant: CoverVariant::Cover,
            min_acc: AccBound::Any,
            max_acc: AccBound::Any,
            groupby: vec!["cell".into()],
            aggs: vec![],
        };
        let schema = infer_schema(&op, &[&ds.schema]).unwrap();
        let ctx = ExecContext::with_workers(2);
        let out = cover(
            &ctx,
            CoverVariant::Cover,
            AccBound::Any,
            AccBound::Any,
            &["cell".to_string()],
            &[],
            &ds,
            &schema,
        )
        .unwrap();
        assert_eq!(out.sample_count(), 2);
        assert!(out.samples.iter().any(|s| s.metadata.has("cell", "A")));
        assert!(out.samples.iter().any(|s| s.metadata.has("cell", "B")));
    }

    #[test]
    fn empty_dataset_yields_empty_cover() {
        let ds = Dataset::new("E", Schema::empty());
        let op = Operator::Cover {
            variant: CoverVariant::Cover,
            min_acc: AccBound::Any,
            max_acc: AccBound::Any,
            groupby: vec![],
            aggs: vec![],
        };
        let schema = infer_schema(&op, &[&ds.schema]).unwrap();
        let ctx = ExecContext::with_workers(1);
        let out =
            cover(&ctx, CoverVariant::Cover, AccBound::Any, AccBound::Any, &[], &[], &ds, &schema)
                .unwrap();
        assert_eq!(out.sample_count(), 0);
    }
}
