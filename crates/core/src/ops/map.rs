//! MAP: refer experiment signals to reference regions (paper §2, §4.1).
//!
//! "The MAP operation ... implicitly iterates over all the samples of its
//! operand datasets; it counts, for each input peak sample, all the peaks
//! of expression over each region" — one output sample per (reference,
//! experiment) pair; every reference region carries aggregates computed
//! over the strand-compatible experiment regions intersecting it. The
//! resulting matrix of (regions × experiments) is the *genome space* of
//! Figure 4.

use crate::aggregates::Aggregate;
use crate::error::GmqlError;
use crate::ops::joinby_matches;
use nggc_engine::{overlap_pairs_sort_merge_interruptible, ExecContext, CHECKPOINT_STRIDE};
use nggc_gdm::{Dataset, GRegion, Provenance, Sample, Schema, Value};
use std::cell::Cell;

/// Execute MAP. `out_schema` = reference schema + aggregate attributes.
pub fn map(
    ctx: &ExecContext,
    aggs: &[(String, Aggregate)],
    joinby: &[String],
    refs: &Dataset,
    exps: &Dataset,
    out_schema: &Schema,
) -> Result<Dataset, GmqlError> {
    let resolved: Vec<(Aggregate, Option<usize>)> = aggs
        .iter()
        .map(|(_, agg)| agg.resolve(&exps.schema).map(|(pos, _)| (agg.clone(), pos)))
        .collect::<Result<_, _>>()?;
    let detail = aggs.iter().map(|(n, a)| format!("{n} AS {a}")).collect::<Vec<_>>().join(", ");

    let results = ctx.map_sample_pairs(&refs.samples, &exps.samples, |r, e| {
        if !joinby_matches(&r.metadata, &e.metadata, joinby) {
            return None;
        }
        // Per-chromosome: collect, for each reference region, the values
        // of intersecting experiment regions.
        let regions: Vec<GRegion> = ctx.map_common_chroms(r, e, |_c, ref_slice, exp_slice| {
            let mut hits: Vec<Vec<usize>> = vec![Vec::new(); ref_slice.len()];
            // Cooperative checkpoint: dense overlaps make the pair
            // enumeration quadratic, so poll on a stride and stop
            // collecting once the governor trips; the executor raises
            // the typed error at the node boundary.
            let tripped = Cell::new(false);
            let tick = Cell::new(0usize);
            let stop = || tripped.get() || ctx.interrupted();
            overlap_pairs_sort_merge_interruptible(ref_slice, exp_slice, stop, |i, j| {
                if tripped.get() {
                    return;
                }
                let t = tick.get();
                tick.set(t.wrapping_add(1));
                if t & (CHECKPOINT_STRIDE - 1) == 0 && ctx.interrupted() {
                    tripped.set(true);
                    return;
                }
                if ref_slice[i].strand.compatible(exp_slice[j].strand) {
                    hits[i].push(j);
                }
            });
            let mut out_regions = Vec::with_capacity(ref_slice.len());
            for (idx, (rr, matched)) in ref_slice.iter().zip(hits).enumerate() {
                if idx & (CHECKPOINT_STRIDE - 1) == 0 && ctx.interrupted() {
                    break;
                }
                let mut out = rr.clone();
                for (agg, pos) in &resolved {
                    let value = match pos {
                        Some(p) => {
                            let vals: Vec<&Value> =
                                matched.iter().map(|&j| &exp_slice[j].values[*p]).collect();
                            agg.compute(&vals, matched.len())
                        }
                        None => agg.compute(&[], matched.len()),
                    };
                    out.values.push(value);
                }
                out_regions.push(out);
            }
            out_regions
        });

        let mut sample = Sample::derived(
            format!("{}__{}", r.name, e.name),
            Provenance::derived(
                "MAP",
                detail.clone(),
                vec![r.provenance.clone(), e.provenance.clone()],
            ),
        );
        sample.metadata = r.metadata.clone();
        sample.metadata.merge_from(&e.metadata, "exp");
        sample.regions = regions;
        Some(sample)
    });

    let mut out = Dataset::new(refs.name.clone(), out_schema.clone());
    for s in results.into_iter().flatten() {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::AggFunc;
    use crate::ast::Operator;
    use crate::plan::infer_schema;
    use nggc_gdm::{Attribute, Metadata, Strand, ValueType};

    fn proms() -> Dataset {
        let mut ds = Dataset::new("PROMS", Schema::empty());
        ds.add_sample(Sample::new("proms", "PROMS").with_regions(vec![
            GRegion::new("chr1", 0, 100, Strand::Unstranded),
            GRegion::new("chr1", 200, 300, Strand::Unstranded),
            GRegion::new("chr2", 0, 50, Strand::Unstranded),
        ]))
        .unwrap();
        ds
    }

    fn peaks() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("PEAKS", schema);
        ds.add_sample(
            Sample::new("e1", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr1", 10, 20, Strand::Unstranded).with_values(vec![0.1.into()]),
                    GRegion::new("chr1", 50, 60, Strand::Unstranded).with_values(vec![0.2.into()]),
                    GRegion::new("chr1", 250, 260, Strand::Unstranded)
                        .with_values(vec![0.3.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds.add_sample(
            Sample::new("e2", "PEAKS")
                .with_regions(vec![
                    GRegion::new("chr2", 10, 20, Strand::Unstranded).with_values(vec![0.4.into()])
                ])
                .with_metadata(Metadata::from_pairs([("cell", "K562")])),
        )
        .unwrap();
        ds
    }

    fn run(aggs: Vec<(String, Aggregate)>, joinby: Vec<String>) -> Dataset {
        let r = proms();
        let e = peaks();
        let op = Operator::Map { aggs: aggs.clone(), joinby: joinby.clone() };
        let schema = infer_schema(&op, &[&r.schema, &e.schema]).unwrap();
        let ctx = ExecContext::with_workers(2);
        map(&ctx, &aggs, &joinby, &r, &e, &schema).unwrap()
    }

    #[test]
    fn paper_count_example() {
        let out = run(vec![("peak_count".into(), Aggregate::count())], vec![]);
        // One output sample per (ref, exp) pair: 1 ref × 2 exps.
        assert_eq!(out.sample_count(), 2);
        let s1 = &out.samples[0];
        assert_eq!(s1.name, "proms__e1");
        assert_eq!(s1.region_count(), 3, "all reference regions kept");
        let counts: Vec<i64> =
            s1.regions.iter().map(|r| r.values.last().unwrap().as_i64().unwrap()).collect();
        assert_eq!(counts, vec![2, 1, 0], "2 peaks in [0,100), 1 in [200,300), 0 on chr2");
        let s2 = &out.samples[1];
        let counts2: Vec<i64> =
            s2.regions.iter().map(|r| r.values.last().unwrap().as_i64().unwrap()).collect();
        assert_eq!(counts2, vec![0, 0, 1]);
    }

    #[test]
    fn aggregate_over_experiment_attribute() {
        let out = run(
            vec![
                ("n".into(), Aggregate::count()),
                ("avg_p".into(), Aggregate::over(AggFunc::Avg, "p_value")),
            ],
            vec![],
        );
        let r0 = &out.samples[0].regions[0];
        let avg = r0.values[1].as_f64().unwrap();
        assert!((avg - 0.15).abs() < 1e-12);
        // Empty group: avg is null.
        assert_eq!(out.samples[0].regions[2].values[1], Value::Null);
        out.validate().unwrap();
    }

    #[test]
    fn metadata_union_with_exp_prefix() {
        let out = run(vec![("n".into(), Aggregate::count())], vec![]);
        assert!(out.samples[0].metadata.has("exp.cell", "HeLa"));
    }

    #[test]
    fn joinby_restricts_pairs() {
        let mut r = proms();
        r.samples[0].metadata.insert("cell", "HeLa");
        let e = peaks();
        let aggs = vec![("n".to_string(), Aggregate::count())];
        let op = Operator::Map { aggs: aggs.clone(), joinby: vec!["cell".into()] };
        let schema = infer_schema(&op, &[&r.schema, &e.schema]).unwrap();
        let ctx = ExecContext::with_workers(1);
        let out = map(&ctx, &aggs, &["cell".to_string()], &r, &e, &schema).unwrap();
        assert_eq!(out.sample_count(), 1, "only the HeLa pair survives");
    }
}
