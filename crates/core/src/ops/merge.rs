//! MERGE: collapse samples (per metadata group) into single samples.
//!
//! `MERGE()` produces one sample holding every region of the dataset;
//! `MERGE(groupby: cell)` produces one per distinct `cell` value.
//! Result metadata is the union of the merged samples' metadata (GMQL
//! binary-metadata rule applied n-ways).

use crate::error::GmqlError;
use crate::ops::group_key;
use nggc_engine::ExecContext;
use nggc_gdm::{Dataset, Metadata, Provenance, Sample};

/// Execute MERGE.
pub fn merge(ctx: &ExecContext, groupby: &[String], input: &Dataset) -> Result<Dataset, GmqlError> {
    let groups = partition_by_meta(input, groupby);
    let detail =
        if groupby.is_empty() { String::new() } else { format!("groupby: {}", groupby.join(",")) };

    let samples = ctx.pool().parallel_map(groups, |(key, members)| {
        let provenance = Provenance::derived(
            "MERGE",
            detail.clone(),
            members.iter().map(|s| s.provenance.clone()).collect(),
        );
        let name =
            if key.is_empty() { "merged".to_owned() } else { format!("merged_{}", key.join("_")) };
        let mut out = Sample::derived(name, provenance);
        let mut metadata = Metadata::new();
        let mut regions: Vec<nggc_gdm::GRegion> = Vec::new();
        for s in &members {
            metadata.merge_from(&s.metadata, "");
            regions.extend(s.regions.iter().cloned());
        }
        for (attr, val) in groupby.iter().zip(&key) {
            if !val.is_empty() {
                metadata.insert(attr, val.clone());
            }
        }
        out.metadata = metadata;
        nggc_engine::parallel_sort_by(ctx.pool(), &mut regions, |a, b| a.cmp_coords(b));
        out.regions = regions;
        out
    });

    let mut out = Dataset::new(input.name.clone(), input.schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

/// Partition samples into `(group key, members)` lists, deterministic in
/// key order.
pub(crate) fn partition_by_meta<'a>(
    input: &'a Dataset,
    groupby: &[String],
) -> Vec<(Vec<String>, Vec<&'a Sample>)> {
    let mut groups: Vec<(Vec<String>, Vec<&Sample>)> = Vec::new();
    for s in &input.samples {
        let key = group_key(&s.metadata, groupby);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(s),
            None => groups.push((key, vec![s])),
        }
    }
    groups.sort_by(|a, b| a.0.cmp(&b.0));
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{GRegion, Schema, Strand};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new("D", Schema::empty());
        for (name, cell, chrom, l) in
            [("s1", "HeLa", "chr2", 10), ("s2", "K562", "chr1", 5), ("s3", "HeLa", "chr1", 0)]
        {
            ds.add_sample(
                Sample::new(name, "D")
                    .with_regions(vec![GRegion::new(chrom, l, l + 10, Strand::Unstranded)])
                    .with_metadata(Metadata::from_pairs([("cell", cell), ("src", name)])),
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn merge_all_into_one() {
        let ctx = ExecContext::with_workers(2);
        let out = merge(&ctx, &[], &dataset()).unwrap();
        assert_eq!(out.sample_count(), 1);
        let s = &out.samples[0];
        assert_eq!(s.region_count(), 3);
        assert!(s.is_sorted(), "merged regions re-sorted into genome order");
        // Union of metadata.
        assert!(s.metadata.has("src", "s1"));
        assert!(s.metadata.has("src", "s3"));
    }

    #[test]
    fn merge_groupby_cell() {
        let ctx = ExecContext::with_workers(2);
        let out = merge(&ctx, &["cell".into()], &dataset()).unwrap();
        assert_eq!(out.sample_count(), 2);
        let hela = out.samples.iter().find(|s| s.metadata.has("cell", "HeLa")).unwrap();
        assert_eq!(hela.region_count(), 2);
        assert_eq!(hela.regions[0].chrom.as_str(), "chr1", "sorted");
    }

    #[test]
    fn provenance_lists_all_members() {
        let ctx = ExecContext::with_workers(1);
        let out = merge(&ctx, &[], &dataset()).unwrap();
        let sources = out.samples[0].provenance.sources();
        assert_eq!(sources.len(), 3);
    }
}
