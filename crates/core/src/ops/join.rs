//! Genometric JOIN: "selects region pairs based upon distance properties"
//! (paper §2).
//!
//! Clauses compose conjunctively: `JOIN(DLE(10000), UP)` keeps pairs at
//! distance ≤ 10 kb with the right region upstream of the left one.
//! `MD(k)` restricts candidates to each left region's `k` nearest right
//! regions. The candidate generator picks the cheapest kernel the clauses
//! allow: k-nearest for MD, a gap sort-merge when a DLE bound exists, and
//! the exhaustive kernel otherwise (an unavoidable `O(n·m)` for pure
//! DGE/UP/DOWN predicates).

use crate::ast::{GenometricClause, JoinOutput};
use crate::error::GmqlError;
use crate::ops::joinby_matches;
use nggc_engine::{
    gap_pairs_sort_merge_interruptible, k_nearest_interruptible, ExecContext, CHECKPOINT_STRIDE,
};
use nggc_gdm::{Dataset, GRegion, Provenance, Sample, Schema, Strand};
use std::cell::Cell;

/// Execute JOIN. `out_schema` = prefixed concatenation of both schemas.
pub fn join(
    ctx: &ExecContext,
    clauses: &[GenometricClause],
    output: JoinOutput,
    joinby: &[String],
    left: &Dataset,
    right: &Dataset,
    out_schema: &Schema,
) -> Result<Dataset, GmqlError> {
    let detail = format!("{clauses:?}; output: {output:?}");
    // MD bound (smallest k wins) and DLE bound (smallest d wins).
    let md_k: Option<usize> = clauses
        .iter()
        .filter_map(|c| match c {
            GenometricClause::MinDist(k) => Some(*k),
            _ => None,
        })
        .min();
    let dle: Option<i64> = clauses
        .iter()
        .filter_map(|c| match c {
            GenometricClause::DistLessEq(d) => Some(*d),
            _ => None,
        })
        .min();

    let results = ctx.map_sample_pairs(&left.samples, &right.samples, |ls, rs| {
        if !joinby_matches(&ls.metadata, &rs.metadata, joinby) {
            return None;
        }
        let regions: Vec<GRegion> = ctx.map_common_chroms(ls, rs, |_c, lsl, rsl| {
            let mut out = Vec::new();
            // Cooperative checkpoint: the candidate kernels can run for
            // seconds on wide inputs (the exhaustive path is O(n·m)), so
            // poll the governor every CHECKPOINT_STRIDE pairs and stop
            // producing once it trips. The executor turns the truncated
            // result into the typed error at the node boundary.
            let tripped = Cell::new(false);
            let tick = Cell::new(0usize);
            let mut handle = |i: usize, j: usize| {
                if tripped.get() {
                    return;
                }
                let t = tick.get();
                tick.set(t.wrapping_add(1));
                if t & (CHECKPOINT_STRIDE - 1) == 0 && ctx.interrupted() {
                    tripped.set(true);
                    return;
                }
                let (a, b) = (&lsl[i], &rsl[j]);
                if !clauses_hold(a, b, clauses) {
                    return;
                }
                if let Some(region) = compose(a, b, output) {
                    out.push(region);
                }
            };
            // The interruptible kernels poll the same trip state, so a
            // governor firing mid-kernel also stops the pair
            // *enumeration*, not just the emit callback.
            let stop = || tripped.get() || ctx.interrupted();
            if let Some(k) = md_k {
                for (i, nearest) in
                    k_nearest_interruptible(lsl, rsl, k, stop).into_iter().enumerate()
                {
                    for j in nearest {
                        handle(i, j);
                    }
                }
            } else if let Some(d) = dle {
                gap_pairs_sort_merge_interruptible(lsl, rsl, d.max(0) as u64, stop, &mut handle);
            } else {
                'exhaustive: for i in 0..lsl.len() {
                    for j in 0..rsl.len() {
                        handle(i, j);
                        if tripped.get() {
                            break 'exhaustive;
                        }
                    }
                }
            }
            out
        });
        // A tripped governor means `regions` is truncated garbage the
        // executor will discard — skip the (potentially huge) sort and
        // metadata merge and let the node boundary raise the error.
        if ctx.interrupted() || regions.is_empty() {
            return None;
        }
        let mut sample = Sample::derived(
            format!("{}__{}", ls.name, rs.name),
            Provenance::derived(
                "JOIN",
                detail.clone(),
                vec![ls.provenance.clone(), rs.provenance.clone()],
            ),
        );
        sample.metadata.merge_from(&ls.metadata, "left");
        sample.metadata.merge_from(&rs.metadata, "right");
        sample.regions = regions;
        sample.sort_regions();
        Some(sample)
    });

    let mut out = Dataset::new(left.name.clone(), out_schema.clone());
    for s in results.into_iter().flatten() {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

fn clauses_hold(a: &GRegion, b: &GRegion, clauses: &[GenometricClause]) -> bool {
    clauses.iter().all(|c| match c {
        GenometricClause::DistLessEq(d) => a.distance(b).map(|x| x <= *d).unwrap_or(false),
        GenometricClause::DistGreaterEq(d) => a.distance(b).map(|x| x >= *d).unwrap_or(false),
        GenometricClause::MinDist(_) => true, // enforced by candidate generation
        GenometricClause::Upstream => a.is_upstream_of_me(b),
        GenometricClause::Downstream => a.is_downstream_of_me(b),
    })
}

/// Build the output region for a qualifying pair, concatenating the
/// attribute rows (left values then right values, matching the prefixed
/// output schema).
fn compose(a: &GRegion, b: &GRegion, output: JoinOutput) -> Option<GRegion> {
    let values: Vec<_> = a.values.iter().chain(b.values.iter()).cloned().collect();
    let (chrom, l, r, strand) = match output {
        JoinOutput::Left => (a.chrom.clone(), a.left, a.right, a.strand),
        JoinOutput::Right => (b.chrom.clone(), b.left, b.right, b.strand),
        JoinOutput::Intersection => {
            if !a.overlaps(b) {
                return None;
            }
            (a.chrom.clone(), a.left.max(b.left), a.right.min(b.right), combined_strand(a, b))
        }
        JoinOutput::Contig => {
            (a.chrom.clone(), a.left.min(b.left), a.right.max(b.right), combined_strand(a, b))
        }
    };
    Some(GRegion::new(chrom, l, r, strand).with_values(values))
}

fn combined_strand(a: &GRegion, b: &GRegion) -> Strand {
    match (a.strand, b.strand) {
        (x, y) if x == y => x,
        (Strand::Unstranded, y) => y,
        (x, Strand::Unstranded) => x,
        _ => Strand::Unstranded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operator;
    use crate::plan::infer_schema;
    use nggc_gdm::{Attribute, Metadata, Value, ValueType};

    fn genes() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("gene", ValueType::Str)]).unwrap();
        let mut ds = Dataset::new("GENES", schema);
        ds.add_sample(Sample::new("g", "GENES").with_regions(vec![
            GRegion::new("chr1", 1000, 2000, Strand::Pos).with_values(vec![Value::Str("A".into())]),
            GRegion::new("chr1", 10_000, 11_000, Strand::Neg)
                .with_values(vec![Value::Str("B".into())]),
        ]))
        .unwrap();
        ds
    }

    fn peaks() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("PEAKS", schema);
        ds.add_sample(Sample::new("p", "PEAKS").with_regions(vec![
            GRegion::new("chr1", 500, 600, Strand::Unstranded).with_values(vec![1.0.into()]),
            GRegion::new("chr1", 1500, 1600, Strand::Unstranded).with_values(vec![2.0.into()]),
            GRegion::new("chr1", 11_200, 11_300, Strand::Unstranded).with_values(vec![3.0.into()]),
            GRegion::new("chr1", 50_000, 50_100, Strand::Unstranded).with_values(vec![4.0.into()]),
        ]))
        .unwrap();
        ds
    }

    fn run(clauses: Vec<GenometricClause>, output: JoinOutput) -> Dataset {
        let l = genes();
        let r = peaks();
        let op = Operator::Join { clauses: clauses.clone(), output, joinby: vec![] };
        let schema = infer_schema(&op, &[&l.schema, &r.schema]).unwrap();
        let ctx = ExecContext::with_workers(2);
        join(&ctx, &clauses, output, &[], &l, &r, &schema).unwrap()
    }

    #[test]
    fn dle_keeps_nearby_pairs() {
        let out = run(vec![GenometricClause::DistLessEq(500)], JoinOutput::Left);
        let s = &out.samples[0];
        // Gene A (1000-2000): peaks at 500-600 (dist 400 ok), 1500-1600
        // (overlap ok). Gene B (10000-11000): peak 11200-11300 (dist 200 ok).
        assert_eq!(s.region_count(), 3);
        assert_eq!(out.schema.get("left.gene").unwrap().ty, ValueType::Str);
        assert_eq!(s.regions[0].values.len(), 2, "left + right attrs");
    }

    #[test]
    fn intersection_output_requires_overlap() {
        let out = run(vec![GenometricClause::DistLessEq(500)], JoinOutput::Intersection);
        let s = &out.samples[0];
        assert_eq!(s.region_count(), 1, "only the overlapping pair");
        assert_eq!((s.regions[0].left, s.regions[0].right), (1500, 1600));
        assert_eq!(s.regions[0].strand, Strand::Pos, "strand from the stranded side");
    }

    #[test]
    fn contig_output_spans_pair() {
        let out = run(vec![GenometricClause::DistLessEq(500)], JoinOutput::Contig);
        let spans: Vec<(u64, u64)> =
            out.samples[0].regions.iter().map(|r| (r.left, r.right)).collect();
        assert!(spans.contains(&(500, 2000)), "gene A + upstream peak hull");
    }

    #[test]
    fn md_nearest_only() {
        let out = run(vec![GenometricClause::MinDist(1)], JoinOutput::Right);
        let s = &out.samples[0];
        assert_eq!(s.region_count(), 2, "one nearest peak per gene");
        let rights: Vec<u64> = s.regions.iter().map(|r| r.left).collect();
        assert!(rights.contains(&1500), "gene A's nearest: overlapping peak");
        assert!(rights.contains(&11_200), "gene B's nearest");
    }

    #[test]
    fn upstream_respects_strand() {
        // Upstream of gene A (+, 1000-2000) = peaks ending before 1000.
        let out = run(vec![GenometricClause::Upstream], JoinOutput::Right);
        let s = &out.samples[0];
        // Gene A upstream: peak 500-600. Gene B is '-', upstream = right
        // side: peaks 11200-11300 and 50000-50100.
        assert_eq!(s.region_count(), 3);
    }

    #[test]
    fn dge_excludes_overlap() {
        let out = run(
            vec![GenometricClause::DistGreaterEq(1), GenometricClause::DistLessEq(500)],
            JoinOutput::Left,
        );
        let s = &out.samples[0];
        assert_eq!(s.region_count(), 2, "overlapping pair excluded by DGE(1)");
    }

    #[test]
    fn joinby_and_empty_pairs_dropped() {
        let mut l = genes();
        l.samples[0].metadata = Metadata::from_pairs([("cell", "HeLa")]);
        let mut r = peaks();
        r.samples[0].metadata = Metadata::from_pairs([("cell", "K562")]);
        let op = Operator::Join {
            clauses: vec![GenometricClause::DistLessEq(100)],
            output: JoinOutput::Left,
            joinby: vec!["cell".into()],
        };
        let schema = infer_schema(&op, &[&l.schema, &r.schema]).unwrap();
        let ctx = ExecContext::with_workers(1);
        let out = join(
            &ctx,
            &[GenometricClause::DistLessEq(100)],
            JoinOutput::Left,
            &["cell".to_string()],
            &l,
            &r,
            &schema,
        )
        .unwrap();
        assert_eq!(out.sample_count(), 0, "joinby mismatch drops the pair");
    }

    #[test]
    fn join_metadata_prefixed_both_sides() {
        let mut l = genes();
        l.samples[0].metadata = Metadata::from_pairs([("k", "1")]);
        let mut r = peaks();
        r.samples[0].metadata = Metadata::from_pairs([("k", "2")]);
        let op = Operator::Join {
            clauses: vec![GenometricClause::DistLessEq(500)],
            output: JoinOutput::Left,
            joinby: vec![],
        };
        let schema = infer_schema(&op, &[&l.schema, &r.schema]).unwrap();
        let ctx = ExecContext::with_workers(1);
        let out = join(
            &ctx,
            &[GenometricClause::DistLessEq(500)],
            JoinOutput::Left,
            &[],
            &l,
            &r,
            &schema,
        )
        .unwrap();
        let m = &out.samples[0].metadata;
        assert!(m.has("left.k", "1"));
        assert!(m.has("right.k", "2"));
    }
}
