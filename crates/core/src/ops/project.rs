//! PROJECT: keep and compute region attributes.
//!
//! Computed attributes evaluate against the *input* schema, so an
//! expression may reference attributes being dropped (e.g. keep only a
//! normalised score while dropping the raw one).

use crate::error::GmqlError;
use crate::predicates::RegionExpr;
use nggc_engine::ExecContext;
use nggc_gdm::{Dataset, Provenance, Sample, Schema};

/// Execute PROJECT. `out_schema` is the inferred output schema;
/// `meta_attrs`, when given, lists the metadata attributes to keep.
pub fn project(
    ctx: &ExecContext,
    attrs: Option<&[String]>,
    new_attrs: &[(String, RegionExpr)],
    meta_attrs: Option<&[String]>,
    input: &Dataset,
    out_schema: &Schema,
) -> Result<Dataset, GmqlError> {
    // Positions of kept attributes in the input schema.
    let keep: Vec<usize> = match attrs {
        Some(names) => {
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            input.schema.project(&refs)?.1
        }
        None => (0..input.schema.len()).collect(),
    };
    let in_schema = &input.schema;
    let detail = format!(
        "{}{}",
        attrs.map(|a| a.join(",")).unwrap_or_else(|| "*".to_owned()),
        if new_attrs.is_empty() {
            String::new()
        } else {
            format!(
                "; +{}",
                new_attrs.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(",")
            )
        }
    );

    let samples = ctx.map_samples(&input.samples, |s| {
        let mut out = Sample::derived(
            s.name.clone(),
            Provenance::derived("PROJECT", detail.clone(), vec![s.provenance.clone()]),
        );
        out.metadata = match meta_attrs {
            Some(keep) => {
                let mut m = nggc_gdm::Metadata::new();
                for (k, v) in s.metadata.iter() {
                    if keep.iter().any(|a| a.eq_ignore_ascii_case(k)) {
                        m.insert(k, v);
                    }
                }
                m
            }
            None => s.metadata.clone(),
        };
        out.regions = s
            .regions
            .iter()
            .map(|r| {
                let mut values = Vec::with_capacity(keep.len() + new_attrs.len());
                for &i in &keep {
                    values.push(r.values[i].clone());
                }
                for (_, expr) in new_attrs {
                    values.push(expr.eval(r, in_schema));
                }
                let mut nr = r.clone();
                nr.values = values;
                nr
            })
            .collect();
        out
    });

    let mut out = Dataset::new(input.name.clone(), out_schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Operator;
    use crate::plan::infer_schema;
    use crate::predicates::BinOp;
    use nggc_gdm::{Attribute, GRegion, Strand, Value, ValueType};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![
            Attribute::new("score", ValueType::Float),
            Attribute::new("name", ValueType::Str),
        ])
        .unwrap();
        let mut ds = Dataset::new("D", schema);
        ds.add_sample(Sample::new("s", "D").with_regions(vec![
            GRegion::new("chr1", 10, 20, Strand::Pos)
                .with_values(vec![Value::Float(2.0), Value::Str("a".into())]),
        ]))
        .unwrap();
        ds
    }

    fn run(attrs: Option<Vec<String>>, new_attrs: Vec<(String, RegionExpr)>) -> Dataset {
        let ds = dataset();
        let op = Operator::Project {
            attrs: attrs.clone(),
            new_attrs: new_attrs.clone(),
            meta_attrs: None,
        };
        let out_schema = infer_schema(&op, &[&ds.schema]).unwrap();
        let ctx = ExecContext::with_workers(2);
        project(&ctx, attrs.as_deref(), &new_attrs, None, &ds, &out_schema).unwrap()
    }

    #[test]
    fn keeps_selected_attributes() {
        let out = run(Some(vec!["name".into()]), vec![]);
        assert_eq!(out.schema.len(), 1);
        assert_eq!(out.samples[0].regions[0].values, vec![Value::Str("a".into())]);
    }

    #[test]
    fn computes_new_attribute_from_dropped_one() {
        let doubled = RegionExpr::Binary(
            Box::new(RegionExpr::attr("score")),
            BinOp::Mul,
            Box::new(RegionExpr::num(2.0)),
        );
        let out = run(Some(vec!["name".into()]), vec![("score2".into(), doubled)]);
        assert_eq!(out.schema.len(), 2);
        assert_eq!(
            out.samples[0].regions[0].values,
            vec![Value::Str("a".into()), Value::Float(4.0)]
        );
        out.validate().unwrap();
    }

    #[test]
    fn coordinate_derived_attribute() {
        let len = RegionExpr::attr("len");
        let out = run(None, vec![("length".into(), len)]);
        assert_eq!(out.samples[0].regions[0].values[2], Value::Int(10));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let ds = dataset();
        let ctx = ExecContext::with_workers(1);
        let err = project(&ctx, Some(&["zzz".to_string()]), &[], None, &ds, &ds.schema);
        assert!(err.is_err());
    }
}
