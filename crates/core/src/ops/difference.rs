//! DIFFERENCE: remove left regions intersecting right regions.
//!
//! For each left sample, the "negative set" is the union of regions of
//! every right sample that matches on the optional `joinby` attributes.
//! A left region survives when it overlaps **no** negative region
//! (strand-compatibly); with `exact: true` only coordinate-identical
//! negatives remove it.

use crate::error::GmqlError;
use crate::ops::joinby_matches;
use nggc_engine::{overlap_pairs_sort_merge_interruptible, ExecContext, CHECKPOINT_STRIDE};
use nggc_gdm::{Dataset, GRegion, Provenance, Sample};
use std::cell::Cell;

/// Execute DIFFERENCE.
pub fn difference(
    ctx: &ExecContext,
    exact: bool,
    joinby: &[String],
    left: &Dataset,
    right: &Dataset,
) -> Result<Dataset, GmqlError> {
    let detail = format!("exact: {exact}; joinby: {}", joinby.join(","));

    let samples = ctx.map_samples(&left.samples, |ls| {
        // Build the negative set for this left sample.
        let negatives: Vec<&Sample> = right
            .samples
            .iter()
            .filter(|rs| joinby_matches(&ls.metadata, &rs.metadata, joinby))
            .collect();
        let mut neg_regions: Vec<GRegion> =
            negatives.iter().flat_map(|s| s.regions.iter().cloned()).collect();
        neg_regions.sort_by(|a, b| a.cmp_coords(b));
        let neg_sample =
            Sample::derived("neg", Provenance::source("tmp", "neg")).with_regions(neg_regions);

        // Per-chromosome removal using the sort-merge kernel.
        let kept: Vec<GRegion> = ls
            .chromosomes()
            .into_iter()
            .flat_map(|c| {
                // Chromosome-boundary checkpoint: a tripped governor
                // stops the removal scan; the executor raises the typed
                // error when the operator returns.
                if ctx.interrupted() {
                    return Vec::new();
                }
                let mine = ls.chrom_slice(&c);
                let theirs = neg_sample.chrom_slice(&c);
                let mut removed = vec![false; mine.len()];
                if exact {
                    for (i, r) in mine.iter().enumerate() {
                        // The exact path scans the whole negative set per
                        // region (O(n·m)); poll on a stride.
                        if i & (CHECKPOINT_STRIDE - 1) == 0 && ctx.interrupted() {
                            break;
                        }
                        removed[i] =
                            theirs.iter().any(|n| n.cmp_coords(r) == std::cmp::Ordering::Equal);
                    }
                } else {
                    let tripped = Cell::new(false);
                    let tick = Cell::new(0usize);
                    let stop = || tripped.get() || ctx.interrupted();
                    overlap_pairs_sort_merge_interruptible(mine, theirs, stop, |i, j| {
                        if tripped.get() {
                            return;
                        }
                        let t = tick.get();
                        tick.set(t.wrapping_add(1));
                        if t & (CHECKPOINT_STRIDE - 1) == 0 && ctx.interrupted() {
                            tripped.set(true);
                            return;
                        }
                        if mine[i].strand.compatible(theirs[j].strand) {
                            removed[i] = true;
                        }
                    });
                }
                mine.iter()
                    .zip(removed)
                    .filter(|&(_r, gone)| !gone)
                    .map(|(r, _gone)| r.clone())
                    .collect::<Vec<_>>()
            })
            .collect();

        let mut provs = vec![ls.provenance.clone()];
        provs.extend(negatives.iter().map(|s| s.provenance.clone()));
        let mut out = Sample::derived(
            ls.name.clone(),
            Provenance::derived("DIFFERENCE", detail.clone(), provs),
        );
        out.metadata = ls.metadata.clone();
        out.regions = kept;
        out
    });

    let mut out = Dataset::new(left.name.clone(), left.schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Metadata, Schema, Strand};

    fn mk(
        name: &str,
        ds: &str,
        regions: Vec<(u64, u64, Strand)>,
        meta: Vec<(&str, &str)>,
    ) -> Sample {
        Sample::new(name, ds)
            .with_regions(
                regions.into_iter().map(|(l, r, s)| GRegion::new("chr1", l, r, s)).collect(),
            )
            .with_metadata(Metadata::from_pairs(meta))
    }

    #[test]
    fn overlapping_regions_removed() {
        let mut a = Dataset::new("A", Schema::empty());
        a.add_sample(mk(
            "s",
            "A",
            vec![(0, 10, Strand::Unstranded), (20, 30, Strand::Unstranded)],
            vec![],
        ))
        .unwrap();
        let mut b = Dataset::new("B", Schema::empty());
        b.add_sample(mk("n", "B", vec![(5, 8, Strand::Unstranded)], vec![])).unwrap();
        let ctx = ExecContext::with_workers(2);
        let out = difference(&ctx, false, &[], &a, &b).unwrap();
        assert_eq!(out.samples[0].region_count(), 1);
        assert_eq!(out.samples[0].regions[0].left, 20);
    }

    #[test]
    fn strand_incompatible_negatives_do_not_remove() {
        let mut a = Dataset::new("A", Schema::empty());
        a.add_sample(mk("s", "A", vec![(0, 10, Strand::Pos)], vec![])).unwrap();
        let mut b = Dataset::new("B", Schema::empty());
        b.add_sample(mk("n", "B", vec![(0, 10, Strand::Neg)], vec![])).unwrap();
        let ctx = ExecContext::with_workers(1);
        let out = difference(&ctx, false, &[], &a, &b).unwrap();
        assert_eq!(out.samples[0].region_count(), 1, "opposite strands never intersect");
    }

    #[test]
    fn exact_requires_identical_coordinates() {
        let mut a = Dataset::new("A", Schema::empty());
        a.add_sample(mk(
            "s",
            "A",
            vec![(0, 10, Strand::Unstranded), (20, 30, Strand::Unstranded)],
            vec![],
        ))
        .unwrap();
        let mut b = Dataset::new("B", Schema::empty());
        b.add_sample(mk(
            "n",
            "B",
            vec![(0, 9, Strand::Unstranded), (20, 30, Strand::Unstranded)],
            vec![],
        ))
        .unwrap();
        let ctx = ExecContext::with_workers(1);
        let out = difference(&ctx, true, &[], &a, &b).unwrap();
        assert_eq!(out.samples[0].region_count(), 1);
        assert_eq!(out.samples[0].regions[0].left, 0, "overlap-but-not-equal survives");
    }

    #[test]
    fn joinby_restricts_negative_set() {
        let mut a = Dataset::new("A", Schema::empty());
        a.add_sample(mk("s", "A", vec![(0, 10, Strand::Unstranded)], vec![("cell", "HeLa")]))
            .unwrap();
        let mut b = Dataset::new("B", Schema::empty());
        b.add_sample(mk("n", "B", vec![(0, 10, Strand::Unstranded)], vec![("cell", "K562")]))
            .unwrap();
        let ctx = ExecContext::with_workers(1);
        let out = difference(&ctx, false, &["cell".into()], &a, &b).unwrap();
        assert_eq!(out.samples[0].region_count(), 1, "different cell: negative ignored");
        let out2 = difference(&ctx, false, &[], &a, &b).unwrap();
        assert_eq!(out2.samples[0].region_count(), 0, "no joinby: removed");
    }
}
