//! ORDER: sort samples by metadata and/or regions by attributes, with
//! top-k truncation.
//!
//! Sample ordering assigns an `order` metadata attribute with each
//! sample's 1-based rank. Region ordering selects the top-k regions by
//! the key, then restores genome order (the GDM dataset invariant keeps
//! regions genome-sorted; the *selection* is what ORDER contributes).

use crate::ast::SortDir;
use crate::error::GmqlError;
use nggc_engine::ExecContext;
use nggc_gdm::{Dataset, Provenance, Sample, Value};
use std::cmp::Ordering;

/// Execute ORDER.
#[allow(clippy::too_many_arguments)]
pub fn order(
    ctx: &ExecContext,
    meta_keys: &[(String, SortDir)],
    top: Option<usize>,
    region_keys: &[(String, SortDir)],
    region_top: Option<usize>,
    input: &Dataset,
) -> Result<Dataset, GmqlError> {
    // Validate region keys up front.
    let resolved_region_keys: Vec<(usize, SortDir)> =
        region_keys
            .iter()
            .map(|(name, dir)| {
                input.schema.position(name).map(|p| (p, *dir)).ok_or_else(|| {
                    GmqlError::semantic(format!("unknown region attribute {name:?}"))
                })
            })
            .collect::<Result<_, _>>()?;
    let detail = format!(
        "meta: [{}] top: {:?}; region: [{}] top: {:?}",
        meta_keys.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(","),
        top,
        region_keys.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>().join(","),
        region_top
    );

    // Region-level transformation in parallel.
    let mut samples: Vec<Sample> = ctx.map_samples(&input.samples, |s| {
        let mut out = Sample::derived(
            s.name.clone(),
            Provenance::derived("ORDER", detail.clone(), vec![s.provenance.clone()]),
        );
        out.metadata = s.metadata.clone();
        let mut regions = s.regions.clone();
        if !resolved_region_keys.is_empty() {
            regions.sort_by(|a, b| {
                for (pos, dir) in &resolved_region_keys {
                    let ord = a.values[*pos].total_cmp(&b.values[*pos]);
                    let ord = if *dir == SortDir::Desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.cmp_coords(b)
            });
            if let Some(k) = region_top {
                regions.truncate(k);
            }
            regions.sort_by(|a, b| a.cmp_coords(b));
        } else if let Some(k) = region_top {
            regions.truncate(k);
        }
        out.regions = regions;
        out
    });

    // Sample-level ordering (serial; sample counts are small).
    if !meta_keys.is_empty() {
        samples.sort_by(|a, b| {
            for (attr, dir) in meta_keys {
                let va = meta_sort_value(a, attr);
                let vb = meta_sort_value(b, attr);
                let ord = va.total_cmp(&vb);
                let ord = if *dir == SortDir::Desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }
    if let Some(k) = top {
        samples.truncate(k);
    }
    for (rank, s) in samples.iter_mut().enumerate() {
        s.metadata.insert("order", (rank + 1).to_string());
    }

    let mut out = Dataset::new(input.name.clone(), input.schema.clone());
    for s in samples {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

/// Numeric-aware sort key of a sample's first value for an attribute;
/// missing attributes sort last.
fn meta_sort_value(s: &Sample, attr: &str) -> Value {
    match s.metadata.first(attr) {
        Some(v) => match v.parse::<f64>() {
            Ok(n) => Value::Float(n),
            Err(_) => Value::Str(v.to_owned()),
        },
        None => Value::Str("\u{10FFFF}".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Metadata, Schema, Strand, ValueType};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("D", schema);
        for (name, age, scores) in
            [("a", "30", vec![1.0, 9.0]), ("b", "20", vec![5.0]), ("c", "25", vec![3.0, 7.0, 2.0])]
        {
            let regions = scores
                .iter()
                .enumerate()
                .map(|(i, &sc)| {
                    GRegion::new("chr1", i as u64 * 100, i as u64 * 100 + 10, Strand::Pos)
                        .with_values(vec![Value::Float(sc)])
                })
                .collect();
            ds.add_sample(
                Sample::new(name, "D")
                    .with_regions(regions)
                    .with_metadata(Metadata::from_pairs([("age", age)])),
            )
            .unwrap();
        }
        ds
    }

    #[test]
    fn samples_sorted_numerically_with_rank() {
        let ctx = ExecContext::with_workers(2);
        let out =
            order(&ctx, &[("age".into(), SortDir::Asc)], None, &[], None, &dataset()).unwrap();
        let names: Vec<&str> = out.samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c", "a"], "20 < 25 < 30 numerically");
        assert_eq!(out.samples[0].metadata.first("order"), Some("1"));
        assert_eq!(out.samples[2].metadata.first("order"), Some("3"));
    }

    #[test]
    fn top_k_truncates_samples() {
        let ctx = ExecContext::with_workers(1);
        let out =
            order(&ctx, &[("age".into(), SortDir::Desc)], Some(1), &[], None, &dataset()).unwrap();
        assert_eq!(out.sample_count(), 1);
        assert_eq!(out.samples[0].name, "a");
    }

    #[test]
    fn region_top_k_by_score_keeps_genome_order() {
        let ctx = ExecContext::with_workers(2);
        let out = order(&ctx, &[], None, &[("score".into(), SortDir::Desc)], Some(2), &dataset())
            .unwrap();
        let c = out.sample_by_name("c").unwrap();
        assert_eq!(c.region_count(), 2, "top 2 of 3");
        // Kept the score-7 and score-3 regions, but in genome order.
        assert!(c.is_sorted());
        let scores: Vec<f64> = c.regions.iter().map(|r| r.values[0].as_f64().unwrap()).collect();
        assert_eq!(scores, vec![3.0, 7.0]);
    }

    #[test]
    fn unknown_region_key_rejected() {
        let ctx = ExecContext::with_workers(1);
        assert!(order(&ctx, &[], None, &[("zzz".into(), SortDir::Asc)], None, &dataset()).is_err());
    }
}
