//! UNION: concatenate two datasets under a merged schema.
//!
//! This is where **schema merging** (paper §2) does its interoperability
//! work: fixed attributes stay common, variable attributes concatenate,
//! and each side's region rows are re-shaped into the merged layout with
//! nulls for absent columns.

use crate::error::GmqlError;
use nggc_engine::ExecContext;
use nggc_gdm::{Dataset, Provenance, Sample, Schema};

/// Execute UNION. `out_schema` is the merged schema inferred at plan time.
pub fn union(
    ctx: &ExecContext,
    left: &Dataset,
    right: &Dataset,
    out_schema: &Schema,
) -> Result<Dataset, GmqlError> {
    let merged = left.schema.merge(&right.schema);
    debug_assert_eq!(&merged.schema, out_schema, "plan and execution agree on merge");
    let reshape = |samples: &[Sample], map: &[usize], side: &str| -> Vec<Sample> {
        ctx.map_samples(samples, |s| {
            let mut out = Sample::derived(
                format!("{side}_{}", s.name),
                Provenance::derived("UNION", side.to_owned(), vec![s.provenance.clone()]),
            );
            out.metadata = s.metadata.clone();
            out.regions = s
                .regions
                .iter()
                .map(|r| {
                    let mut nr = r.clone();
                    nr.values = Schema::reshape_row(&r.values, map, merged.schema.len());
                    nr
                })
                .collect();
            out
        })
    };

    let mut out = Dataset::new(left.name.clone(), merged.schema.clone());
    for s in reshape(&left.samples, &merged.left_map, "left") {
        out.add_sample_unchecked(s);
    }
    for s in reshape(&right.samples, &merged.right_map, "right") {
        out.add_sample_unchecked(s);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Strand, Value, ValueType};

    #[test]
    fn heterogeneous_schemas_unify_with_nulls() {
        let sa = Schema::new(vec![Attribute::new("p_value", ValueType::Float)]).unwrap();
        let sb = Schema::new(vec![
            Attribute::new("p_value", ValueType::Float),
            Attribute::new("fold", ValueType::Float),
        ])
        .unwrap();
        let mut a = Dataset::new("A", sa);
        a.add_sample(Sample::new("x", "A").with_regions(vec![
            GRegion::new("chr1", 0, 5, Strand::Pos).with_values(vec![Value::Float(0.1)]),
        ]))
        .unwrap();
        let mut b = Dataset::new("B", sb);
        b.add_sample(Sample::new("y", "B").with_regions(vec![
            GRegion::new("chr1", 9, 12, Strand::Neg)
                .with_values(vec![Value::Float(0.2), Value::Float(2.5)]),
        ]))
        .unwrap();

        let ctx = ExecContext::with_workers(2);
        let merged = a.schema.merge(&b.schema).schema;
        let out = union(&ctx, &a, &b, &merged).unwrap();
        assert_eq!(out.sample_count(), 2);
        assert_eq!(out.schema.len(), 2);
        // Left sample gains a null `fold` column.
        assert_eq!(out.samples[0].regions[0].values, vec![Value::Float(0.1), Value::Null]);
        assert_eq!(out.samples[1].regions[0].values, vec![Value::Float(0.2), Value::Float(2.5)]);
        out.validate().unwrap();
    }

    #[test]
    fn sample_names_prefixed_by_side() {
        let mut a = Dataset::new("A", Schema::empty());
        a.add_sample(Sample::new("x", "A")).unwrap();
        let mut b = Dataset::new("B", Schema::empty());
        b.add_sample(Sample::new("x", "B")).unwrap();
        let ctx = ExecContext::with_workers(1);
        let out = union(&ctx, &a, &b, &Schema::empty()).unwrap();
        assert_eq!(out.samples[0].name, "left_x");
        assert_eq!(out.samples[1].name, "right_x");
    }
}
