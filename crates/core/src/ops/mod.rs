//! Physical operator implementations.
//!
//! Every operator consumes and produces whole [`Dataset`]s (GMQL is a
//! closed algebra, paper §2) and follows the common rules:
//!
//! * **implicit sample iteration** — unary operators map over samples;
//!   MAP/JOIN iterate over (reference, experiment) sample pairs;
//! * **metadata propagation** — result samples carry their input samples'
//!   metadata (prefixed per side for binary operators);
//! * **provenance** — every result sample records the operator and its
//!   input lineages;
//! * **parallelism** — sample(-pair) tasks run on the engine pool, and
//!   genometric work shards per chromosome.

pub mod cover;
pub mod difference;
pub mod extend;
pub mod group;
pub mod join;
pub mod map;
pub mod merge;
pub mod order;
pub mod project;
pub mod select;
pub mod union;

use nggc_gdm::Metadata;

/// The grouping key of a sample under `groupby` metadata attributes: the
/// sorted distinct values of each attribute, joined. Samples missing an
/// attribute contribute the empty value (they group together).
pub(crate) fn group_key(meta: &Metadata, attrs: &[String]) -> Vec<String> {
    attrs
        .iter()
        .map(|a| {
            let mut vs: Vec<&str> = meta.get(a).iter().map(String::as_str).collect();
            vs.sort_unstable();
            vs.join("|")
        })
        .collect()
}

/// GMQL `joinby` semantics: two samples pair when, for every listed
/// attribute, they share at least one common value. An empty attribute
/// list pairs everything.
pub(crate) fn joinby_matches(a: &Metadata, b: &Metadata, attrs: &[String]) -> bool {
    attrs.iter().all(|attr| {
        let av = a.get(attr);
        let bv = b.get(attr);
        av.iter().any(|x| bv.iter().any(|y| x == y))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_key_sorted_multivalue() {
        let m = Metadata::from_pairs([("antibody", "B"), ("antibody", "A"), ("cell", "HeLa")]);
        assert_eq!(
            group_key(&m, &["antibody".into(), "cell".into()]),
            vec!["A|B".to_string(), "HeLa".into()]
        );
        assert_eq!(group_key(&m, &["missing".into()]), vec![String::new()]);
    }

    #[test]
    fn joinby_requires_common_value_per_attribute() {
        let a = Metadata::from_pairs([("cell", "HeLa"), ("cell", "K562"), ("t", "x")]);
        let b = Metadata::from_pairs([("cell", "K562"), ("t", "y")]);
        assert!(joinby_matches(&a, &b, &["cell".into()]));
        assert!(!joinby_matches(&a, &b, &["cell".into(), "t".into()]));
        assert!(joinby_matches(&a, &b, &[]), "empty joinby pairs everything");
        assert!(!joinby_matches(&a, &b, &["absent".into()]), "missing attribute never matches");
    }
}
