//! The in-memory query result cache.
//!
//! Keyed by [`crate::fingerprint::PlanFingerprint`] over the optimized
//! plan, validated by per-dataset repository **generation counters**: an
//! entry records the generation of every source dataset at the time the
//! result was computed, and a lookup revalidates those generations, so a
//! `save`/`delete`/`migrate` of any input invalidates dependent entries
//! lazily — no scan, no epoch sweep.
//!
//! Entries hold `Arc`-shared materialized outputs accounted in *encoded
//! bytes* ([`nggc_gdm::Dataset::encoded_size`]), the same currency the
//! governor budgets and the server `MemoryPool` use. Eviction is a
//! byte-aware LRU. Concurrent identical misses are **single-flighted**
//! (mirroring the repository's cold-load coalescing): one caller
//! executes, the rest wait and share its `Arc`.
//!
//! Byte accounting is pluggable via [`CacheBudget`] so `nggc serve` can
//! carve cache bytes lazily out of its server-wide memory pool — cached
//! results and in-flight queries then compete for one budget, and the
//! cache yields (evicts) when queries need headroom.

use nggc_gdm::Dataset;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Materialized query outputs: output dataset name → dataset.
pub type QueryOutputs = HashMap<String, Dataset>;

/// Where cache bytes come from. `reserve` returns `false` when the
/// budget cannot cover `bytes`; the cache then evicts and retries, and
/// finally skips caching rather than overcommitting.
pub trait CacheBudget: Send + Sync {
    /// Try to take `bytes` from the budget.
    fn reserve(&self, bytes: u64) -> bool;
    /// Return `bytes` previously taken with `reserve`.
    fn release(&self, bytes: u64);
}

/// The default budget: unlimited (the cache's own `capacity_bytes` is
/// then the only bound).
struct Unbounded;

impl CacheBudget for Unbounded {
    fn reserve(&self, _bytes: u64) -> bool {
        true
    }
    fn release(&self, _bytes: u64) {}
}

/// How a [`ResultCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from cache without executing.
    Hit,
    /// Executed (and the result was offered to the cache).
    Miss,
    /// Waited for a concurrent identical execution and shared its result.
    Coalesced,
}

impl CacheOutcome {
    /// Stable lowercase name for spans and logs.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Coalesced => "coalesced",
        }
    }
}

/// Point-in-time cache statistics (for `ServeStats` and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Entries currently resident.
    pub entries: u64,
    /// Encoded bytes currently resident.
    pub bytes: u64,
    /// Lifetime hits.
    pub hits: u64,
    /// Lifetime misses (executions).
    pub misses: u64,
    /// Lifetime evictions (capacity or budget pressure).
    pub evictions: u64,
    /// Lifetime invalidations (generation mismatch on lookup).
    pub invalidations: u64,
    /// Lifetime coalesced waits on a concurrent identical execution.
    pub coalesced: u64,
}

struct Entry {
    outputs: Arc<QueryOutputs>,
    bytes: u64,
    /// `(source dataset, generation at execution time)` — the validity
    /// condition of this entry.
    gens: Vec<(String, u64)>,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    // LRU order: front = least recently used, back = most recent.
    order: VecDeque<u64>,
    bytes: u64,
    evictions: u64,
    invalidations: u64,
}

impl Inner {
    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    /// Remove one entry, returning its byte size.
    fn remove(&mut self, key: u64) -> u64 {
        let Some(entry) = self.entries.remove(&key) else {
            return 0;
        };
        self.order.retain(|&k| k != key);
        self.bytes -= entry.bytes;
        entry.bytes
    }

    /// Evict the least recently used entry; returns the bytes freed
    /// (0 when the cache is empty).
    fn evict_lru(&mut self) -> u64 {
        let Some(&oldest) = self.order.front() else {
            return 0;
        };
        let freed = self.remove(oldest);
        self.evictions += 1;
        freed
    }
}

/// Rendezvous for one in-progress execution of a fingerprint: the
/// leader fills `result` and flips `done`; followers wait on the
/// condvar and share the leader's `Arc` without executing.
#[derive(Default)]
struct ExecFlight {
    slot: Mutex<FlightSlot>,
    cv: Condvar,
}

#[derive(Default)]
struct FlightSlot {
    done: bool,
    /// `Ok` carries the shared outputs; `Err(())` tells followers the
    /// leader failed (they retry and surface their own typed error).
    result: Option<Result<Arc<QueryOutputs>, ()>>,
}

/// Completes the flight and wakes followers even if the leader's
/// execution panics, so no waiter blocks forever.
struct FlightGuard<'a> {
    cache: &'a ResultCache,
    key: u64,
    flight: &'a Arc<ExecFlight>,
    outcome: Option<Result<Arc<QueryOutputs>, ()>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        {
            let mut slot = self.flight.slot.lock().unwrap_or_else(|p| p.into_inner());
            slot.done = true;
            slot.result = Some(self.outcome.take().unwrap_or(Err(())));
        }
        self.cache.inflight.lock().unwrap_or_else(|p| p.into_inner()).remove(&self.key);
        self.flight.cv.notify_all();
    }
}

/// A bounded, byte-aware, plan-keyed LRU of materialized query results.
///
/// Thread-safe; all methods take `&self`.
pub struct ResultCache {
    capacity_bytes: u64,
    budget: Arc<dyn CacheBudget>,
    inner: Mutex<Inner>,
    inflight: Mutex<HashMap<u64, Arc<ExecFlight>>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    coalesced: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("ResultCache")
            .field("capacity_bytes", &self.capacity_bytes)
            .field("entries", &s.entries)
            .field("bytes", &s.bytes)
            .finish()
    }
}

impl ResultCache {
    /// A cache bounded only by `capacity_bytes`.
    pub fn new(capacity_bytes: u64) -> ResultCache {
        ResultCache::with_budget(capacity_bytes, Arc::new(Unbounded))
    }

    /// A cache bounded by `capacity_bytes` **and** an external byte
    /// budget (e.g. the serve memory pool): every resident byte is also
    /// reserved from `budget`, and released on eviction/invalidation.
    pub fn with_budget(capacity_bytes: u64, budget: Arc<dyn CacheBudget>) -> ResultCache {
        ResultCache {
            capacity_bytes,
            budget,
            inner: Mutex::new(Inner::default()),
            inflight: Mutex::new(HashMap::new()),
            hits: 0.into(),
            misses: 0.into(),
            coalesced: 0.into(),
        }
    }

    /// Look up `key`, revalidating source generations via `gen_of`
    /// (current repository generation of a dataset, `None` when it no
    /// longer exists). A stale entry is removed and counted as an
    /// invalidation; the call then misses.
    pub fn lookup(
        &self,
        key: u64,
        gen_of: &dyn Fn(&str) -> Option<u64>,
    ) -> Option<Arc<QueryOutputs>> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let entry = inner.entries.get(&key)?;
        let valid = entry.gens.iter().all(|(name, gen)| gen_of(name) == Some(*gen));
        if !valid {
            let freed = inner.remove(key);
            inner.invalidations += 1;
            drop(inner);
            self.budget.release(freed);
            nggc_obs::global().counter("nggc_result_cache_invalidations_total").inc();
            self.publish_bytes();
            return None;
        }
        let outputs = Arc::clone(&entry.outputs);
        inner.touch(key);
        drop(inner);
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        nggc_obs::global().counter("nggc_result_cache_hits_total").inc();
        Some(outputs)
    }

    /// Offer a computed result to the cache. `gens` is the generation
    /// snapshot taken **before** execution started (so a source mutated
    /// mid-execution makes the entry stale immediately). Oversized
    /// results (larger than the whole cache) and results whose bytes
    /// cannot be reserved from the budget even after evicting everything
    /// are silently not cached.
    pub fn insert(&self, key: u64, gens: Vec<(String, u64)>, outputs: Arc<QueryOutputs>) {
        let bytes: u64 = outputs.values().map(|d| d.encoded_size() as u64).sum();
        if bytes > self.capacity_bytes {
            return;
        }
        let reg = nggc_obs::global();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        // Replacing an entry (same fingerprint, e.g. recomputed after an
        // invalidation raced past lookup) releases the old bytes first.
        let replaced = inner.remove(key);
        if replaced > 0 {
            self.budget.release(replaced);
        }
        // Make room in our own capacity (every evicted byte goes back to
        // the budget it was reserved from)…
        while inner.bytes + bytes > self.capacity_bytes {
            let freed = inner.evict_lru();
            if freed == 0 {
                break;
            }
            self.budget.release(freed);
            reg.counter("nggc_result_cache_evictions_total").inc();
        }
        // …and in the external budget, evicting our own entries to free
        // budget when the reservation fails.
        let mut reserved = self.budget.reserve(bytes);
        while !reserved {
            let freed = inner.evict_lru();
            if freed == 0 {
                break;
            }
            self.budget.release(freed);
            reg.counter("nggc_result_cache_evictions_total").inc();
            reserved = self.budget.reserve(bytes);
        }
        if !reserved {
            drop(inner);
            self.publish_bytes();
            return;
        }
        inner.entries.insert(key, Entry { outputs, bytes, gens });
        inner.bytes += bytes;
        inner.touch(key);
        drop(inner);
        reg.counter("nggc_result_cache_insert_bytes_total").add(bytes);
        self.publish_bytes();
    }

    /// Drop every entry whose validity depends on dataset `name`.
    /// Lookup-time revalidation already catches stale entries; this is
    /// for callers that want bytes back immediately after a mutation.
    pub fn invalidate_dataset(&self, name: &str) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let stale: Vec<u64> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.gens.iter().any(|(n, _)| n == name))
            .map(|(&k, _)| k)
            .collect();
        let mut freed = 0;
        for key in &stale {
            freed += inner.remove(*key);
            inner.invalidations += 1;
        }
        drop(inner);
        if freed > 0 {
            self.budget.release(freed);
        }
        if !stale.is_empty() {
            nggc_obs::global()
                .counter("nggc_result_cache_invalidations_total")
                .add(stale.len() as u64);
        }
        self.publish_bytes();
    }

    /// Eagerly drop every entry whose recorded source generations no
    /// longer match `gen_of` (the same validity condition `lookup`
    /// checks lazily). Returns the number of entries removed. `nggc
    /// fsck --repair` and maintenance sweeps use this to reclaim bytes
    /// from entries that would never be looked up again.
    pub fn sweep_stale(&self, gen_of: &dyn Fn(&str) -> Option<u64>) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let stale: Vec<u64> = inner
            .entries
            .iter()
            .filter(|(_, e)| !e.gens.iter().all(|(name, gen)| gen_of(name) == Some(*gen)))
            .map(|(&k, _)| k)
            .collect();
        let mut freed = 0;
        for key in &stale {
            freed += inner.remove(*key);
            inner.invalidations += 1;
        }
        drop(inner);
        if freed > 0 {
            self.budget.release(freed);
        }
        if !stale.is_empty() {
            nggc_obs::global()
                .counter("nggc_result_cache_invalidations_total")
                .add(stale.len() as u64);
        }
        self.publish_bytes();
        stale.len() as u64
    }

    /// Evict least-recently-used entries until at least `bytes` of
    /// budget have been returned (or the cache is empty). The serve pool
    /// calls this when a query's reservation fails: queries outrank
    /// cached results.
    pub fn shrink(&self, bytes: u64) -> u64 {
        let reg = nggc_obs::global();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut freed = 0;
        while freed < bytes {
            let f = inner.evict_lru();
            if f == 0 {
                break;
            }
            reg.counter("nggc_result_cache_evictions_total").inc();
            freed += f;
        }
        drop(inner);
        if freed > 0 {
            self.budget.release(freed);
        }
        self.publish_bytes();
        freed
    }

    /// Serve `key` from cache, or execute `compute` — at most once
    /// across concurrent identical calls (single-flight). `sources` are
    /// the plan's input datasets; their generations are snapshotted via
    /// `gen_of` *before* `compute` runs and stored with the entry. When
    /// any source has no generation (unknown dataset, generations
    /// unsupported), the result is returned but not cached.
    ///
    /// On a leader failure (`compute` returns `Err` or panics), waiting
    /// followers retry from scratch — each surfaces its own error or
    /// succeeds if the failure was transient.
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        sources: &[String],
        gen_of: &dyn Fn(&str) -> Option<u64>,
        compute: &mut dyn FnMut() -> Result<QueryOutputs, E>,
    ) -> Result<(Arc<QueryOutputs>, CacheOutcome), E> {
        let reg = nggc_obs::global();
        loop {
            if let Some(outputs) = self.lookup(key, gen_of) {
                return Ok((outputs, CacheOutcome::Hit));
            }
            let (flight, leader) = {
                let mut map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
                match map.get(&key) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(ExecFlight::default());
                        map.insert(key, Arc::clone(&f));
                        (f, true)
                    }
                }
            };
            if leader {
                let mut guard = FlightGuard { cache: self, key, flight: &flight, outcome: None };
                // Snapshot generations before executing: a save that
                // lands mid-execution bumps the live generation past the
                // snapshot, so the entry is stale the moment it's born
                // and the next lookup re-executes.
                let gens: Option<Vec<(String, u64)>> =
                    sources.iter().map(|s| gen_of(s).map(|g| (s.clone(), g))).collect();
                self.misses.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                reg.counter("nggc_result_cache_misses_total").inc();
                let outputs = match compute() {
                    Ok(o) => Arc::new(o),
                    Err(e) => {
                        guard.outcome = Some(Err(()));
                        return Err(e);
                    }
                };
                if let Some(gens) = gens {
                    self.insert(key, gens, Arc::clone(&outputs));
                }
                guard.outcome = Some(Ok(Arc::clone(&outputs)));
                return Ok((outputs, CacheOutcome::Miss));
            }
            let shared = {
                let mut slot = flight.slot.lock().unwrap_or_else(|p| p.into_inner());
                while !slot.done {
                    slot = flight.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
                }
                slot.result.clone().expect("done flights carry a result")
            };
            match shared {
                Ok(outputs) => {
                    self.coalesced.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    reg.counter("nggc_result_cache_coalesced_total").inc();
                    return Ok((outputs, CacheOutcome::Coalesced));
                }
                // Leader failed; retry so this caller surfaces its own
                // typed error (or succeeds — the failure may have been
                // transient or query-specific, e.g. a deadline).
                Err(()) => continue,
            }
        }
    }

    /// Drop everything, returning all bytes to the budget.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let freed = inner.bytes;
        inner.entries.clear();
        inner.order.clear();
        inner.bytes = 0;
        drop(inner);
        if freed > 0 {
            self.budget.release(freed);
        }
        self.publish_bytes();
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ResultCacheStats {
        use std::sync::atomic::Ordering::Relaxed;
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        ResultCacheStats {
            entries: inner.entries.len() as u64,
            bytes: inner.bytes,
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            coalesced: self.coalesced.load(Relaxed),
        }
    }

    /// Configured byte capacity.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    fn publish_bytes(&self) {
        let bytes = self.inner.lock().unwrap_or_else(|p| p.into_inner()).bytes;
        nggc_obs::global().gauge("nggc_result_cache_bytes").set(bytes as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Sample, Schema, Strand, ValueType};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn dataset(name: &str, regions: usize) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        let regs: Vec<GRegion> = (0..regions)
            .map(|i| {
                GRegion::new("chr1", i as u64 * 10, i as u64 * 10 + 5, Strand::Pos)
                    .with_values(vec![0.5.into()])
            })
            .collect();
        ds.add_sample(Sample::new("s1", name).with_regions(regs)).unwrap();
        ds
    }

    fn outputs(name: &str, regions: usize) -> QueryOutputs {
        let mut m = QueryOutputs::new();
        m.insert(name.to_owned(), dataset(name, regions));
        m
    }

    fn gens_fixed(g: u64) -> impl Fn(&str) -> Option<u64> {
        move |_| Some(g)
    }

    #[test]
    fn hit_after_insert_and_invalidation_on_gen_bump() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(42, vec![("SRC".into(), 1)], Arc::new(outputs("R", 3)));
        assert!(cache.lookup(42, &gens_fixed(1)).is_some());
        assert_eq!(cache.stats().hits, 1);
        // Source moved to generation 2: stale, removed, miss.
        assert!(cache.lookup(42, &gens_fixed(2)).is_none());
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        // Deleted source (no generation): also stale.
        cache.insert(42, vec![("SRC".into(), 2)], Arc::new(outputs("R", 3)));
        assert!(cache.lookup(42, &|_| None).is_none());
    }

    #[test]
    fn byte_aware_lru_eviction_under_tiny_budget() {
        let one = outputs("R", 4);
        let bytes: u64 = one.values().map(|d| d.encoded_size() as u64).sum();
        // Room for two entries, not three.
        let cache = ResultCache::new(bytes * 2 + bytes / 2);
        for key in 0..3u64 {
            cache.insert(key, vec![("S".into(), 1)], Arc::new(outputs("R", 4)));
        }
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= cache.capacity_bytes());
        // Key 0 was the LRU victim; 1 and 2 survive.
        assert!(cache.lookup(0, &gens_fixed(1)).is_none());
        assert!(cache.lookup(1, &gens_fixed(1)).is_some());
        assert!(cache.lookup(2, &gens_fixed(1)).is_some());
        // An entry larger than the whole cache is refused outright.
        let huge = ResultCache::new(8);
        huge.insert(9, vec![("S".into(), 1)], Arc::new(outputs("R", 100)));
        assert_eq!(huge.stats().entries, 0);
    }

    #[test]
    fn external_budget_is_reserved_and_released() {
        struct Pool {
            capacity: u64,
            used: AtomicU64,
        }
        impl CacheBudget for Pool {
            fn reserve(&self, bytes: u64) -> bool {
                let mut cur = self.used.load(Ordering::SeqCst);
                loop {
                    if cur + bytes > self.capacity {
                        return false;
                    }
                    match self.used.compare_exchange(
                        cur,
                        cur + bytes,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => return true,
                        Err(c) => cur = c,
                    }
                }
            }
            fn release(&self, bytes: u64) {
                self.used.fetch_sub(bytes, Ordering::SeqCst);
            }
        }
        let one = outputs("R", 4);
        let bytes: u64 = one.values().map(|d| d.encoded_size() as u64).sum();
        let pool = Arc::new(Pool { capacity: bytes + bytes / 2, used: AtomicU64::new(0) });
        // Cache capacity is huge; the pool (room for one entry) is the
        // binding constraint, so inserting a second entry evicts the
        // first to free pool budget.
        let cache = ResultCache::with_budget(1 << 30, Arc::clone(&pool) as Arc<dyn CacheBudget>);
        cache.insert(1, vec![("S".into(), 1)], Arc::new(outputs("R", 4)));
        assert_eq!(pool.used.load(Ordering::SeqCst), bytes);
        cache.insert(2, vec![("S".into(), 1)], Arc::new(outputs("R", 4)));
        let s = cache.stats();
        assert_eq!(s.entries, 1, "pool pressure evicts the LRU entry");
        assert_eq!(pool.used.load(Ordering::SeqCst), bytes);
        assert!(cache.lookup(2, &gens_fixed(1)).is_some());
        // clear() returns everything.
        cache.clear();
        assert_eq!(pool.used.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn get_or_compute_executes_once_then_hits() {
        let cache = ResultCache::new(1 << 20);
        let mut calls = 0;
        let gen_of = gens_fixed(7);
        let sources = vec!["S".to_string()];
        for round in 0..3 {
            let (out, outcome) = cache
                .get_or_compute::<()>(5, &sources, &gen_of, &mut || {
                    calls += 1;
                    Ok(outputs("R", 2))
                })
                .unwrap();
            assert_eq!(out.len(), 1);
            assert_eq!(outcome, if round == 0 { CacheOutcome::Miss } else { CacheOutcome::Hit });
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn unknown_source_generation_disables_caching() {
        let cache = ResultCache::new(1 << 20);
        let mut calls = 0;
        let sources = vec!["S".to_string()];
        for _ in 0..2 {
            cache
                .get_or_compute::<()>(5, &sources, &|_| None, &mut || {
                    calls += 1;
                    Ok(outputs("R", 2))
                })
                .unwrap();
        }
        assert_eq!(calls, 2, "uncacheable results re-execute");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn concurrent_identical_misses_coalesce_to_one_execution() {
        use std::sync::Barrier;
        let cache = Arc::new(ResultCache::new(1 << 20));
        let executions = Arc::new(AtomicU64::new(0));
        const N: usize = 8;
        let barrier = Arc::new(Barrier::new(N));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let executions = Arc::clone(&executions);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let sources = vec!["S".to_string()];
                    let (out, _) = cache
                        .get_or_compute::<()>(9, &sources, &|_| Some(1), &mut || {
                            executions.fetch_add(1, Ordering::SeqCst);
                            // Give followers time to pile onto the flight.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            Ok(outputs("R", 2))
                        })
                        .unwrap();
                    out
                })
            })
            .collect();
        let results: Vec<Arc<QueryOutputs>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(executions.load(Ordering::SeqCst), 1, "one execution for {N} identical misses");
        assert!(
            results.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])),
            "coalesced callers share the leader's Arc"
        );
    }

    #[test]
    fn leader_failure_does_not_wedge_followers() {
        use std::sync::Barrier;
        let cache = Arc::new(ResultCache::new(1 << 20));
        const N: usize = 6;
        let barrier = Arc::new(Barrier::new(N));
        let failures = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                let failures = Arc::clone(&failures);
                std::thread::spawn(move || {
                    barrier.wait();
                    let sources = vec!["S".to_string()];
                    let r = cache.get_or_compute::<&'static str>(
                        3,
                        &sources,
                        &|_| Some(1),
                        &mut || {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            failures.fetch_add(1, Ordering::SeqCst);
                            Err("boom")
                        },
                    );
                    assert!(r.is_err());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            cache.inflight.lock().unwrap().is_empty(),
            "failed flights must not leak in-flight entries"
        );
    }

    #[test]
    fn invalidate_dataset_drops_dependent_entries_only() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(1, vec![("A".into(), 1)], Arc::new(outputs("R", 2)));
        cache.insert(2, vec![("B".into(), 1)], Arc::new(outputs("R", 2)));
        cache.insert(3, vec![("A".into(), 1), ("B".into(), 1)], Arc::new(outputs("R", 2)));
        cache.invalidate_dataset("A");
        assert!(cache.lookup(1, &gens_fixed(1)).is_none());
        assert!(cache.lookup(2, &gens_fixed(1)).is_some());
        assert!(cache.lookup(3, &gens_fixed(1)).is_none());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn sweep_stale_evicts_mismatched_generations_eagerly() {
        let cache = ResultCache::new(1 << 20);
        cache.insert(1, vec![("A".into(), 1)], Arc::new(outputs("R", 2)));
        cache.insert(2, vec![("B".into(), 5)], Arc::new(outputs("R", 2)));
        cache.insert(3, vec![("GONE".into(), 1)], Arc::new(outputs("R", 2)));
        // A is current at gen 1; B moved on; GONE was deleted.
        let gen_of = |name: &str| match name {
            "A" => Some(1),
            "B" => Some(6),
            _ => None,
        };
        assert_eq!(cache.sweep_stale(&gen_of), 2);
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.invalidations, 2);
        assert!(cache.lookup(1, &gen_of).is_some());
        // A second sweep finds nothing.
        assert_eq!(cache.sweep_stale(&gen_of), 0);
    }

    #[test]
    fn shrink_frees_at_least_requested_bytes() {
        let one = outputs("R", 4);
        let bytes: u64 = one.values().map(|d| d.encoded_size() as u64).sum();
        let cache = ResultCache::new(bytes * 10);
        for key in 0..4u64 {
            cache.insert(key, vec![("S".into(), 1)], Arc::new(outputs("R", 4)));
        }
        let freed = cache.shrink(bytes + 1);
        assert!(freed > bytes || freed == bytes * 2);
        assert!(cache.stats().entries <= 2);
        // Shrinking an empty cache is a no-op.
        cache.clear();
        assert_eq!(cache.shrink(1024), 0);
    }
}
