//! Recursive-descent parser for GMQL.
//!
//! The concrete syntax follows the paper's examples: statements assign the
//! result of an operator call to a variable, parameters live in
//! parentheses with `;`-separated labelled sections, and operands follow
//! the closing parenthesis:
//!
//! ```text
//! PROMS  = SELECT(annType == 'promoter') ANNOTATIONS;
//! NEAR   = JOIN(DLE(10000); output: INT; joinby: cell) PROMS PEAKS;
//! RES    = MAP(peak_count AS COUNT) PROMS PEAKS;
//! BOTH   = COVER(2, ANY) PEAKS;
//! MATERIALIZE RES INTO result;
//! ```

use crate::aggregates::{AggFunc, Aggregate};
use crate::ast::*;
use crate::error::GmqlError;
use crate::lexer::{lex, Spanned, Tok};
use crate::predicates::{BinOp, CmpOp, MetaPredicate, RegionExpr};
use nggc_gdm::Value;

/// Parse a full GMQL query into statements.
pub fn parse(text: &str) -> Result<Vec<Statement>, GmqlError> {
    let tokens = lex(text)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.statement()?);
    }
    if out.is_empty() {
        return Err(GmqlError::semantic("empty query"));
    }
    Ok(out)
}

/// Maximum nesting depth of predicate/expression recursion. Deep enough
/// for any sane query; shallow enough that a pathological input (e.g.
/// ten thousand open parens) errors out long before the recursive
/// descent can overflow the thread's stack and abort the process.
const MAX_EXPR_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    /// Current predicate/expression recursion depth (see
    /// [`MAX_EXPR_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.column))
            .unwrap_or((0, 0))
    }

    fn err(&self, msg: impl Into<String>) -> GmqlError {
        let (l, c) = self.here();
        GmqlError::syntax(l, c, msg)
    }

    /// Recursion-depth guard for the expression grammar. Every nesting
    /// level (parens, NOT, unary minus) passes through a `*_unary`
    /// production, so checking here bounds the whole descent; without it
    /// a deeply nested input overflows the stack and aborts the process
    /// instead of returning a [`GmqlError::Syntax`].
    fn enter_expr(&mut self) -> Result<(), GmqlError> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.err(format!("expression nesting deeper than {MAX_EXPR_DEPTH} levels")));
        }
        self.depth += 1;
        Ok(())
    }

    fn next(&mut self) -> Result<Tok, GmqlError> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|s| s.tok.clone())
            .ok_or_else(|| self.err("unexpected end of query"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, t: &Tok) -> Result<(), GmqlError> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected {t}, found {got}")))
        }
    }

    fn ident(&mut self) -> Result<String, GmqlError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected identifier, found {other}")))
            }
        }
    }

    /// Consume an identifier equal (case-insensitively) to `kw`.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    // ---- statements -----------------------------------------------------

    fn statement(&mut self) -> Result<Statement, GmqlError> {
        if self.eat_kw("MATERIALIZE") {
            let var = self.ident()?;
            let into = if self.eat_kw("INTO") { Some(self.ident()?) } else { None };
            self.expect(&Tok::Semi)?;
            return Ok(Statement::Materialize { var, into });
        }
        let var = self.ident()?;
        self.expect(&Tok::Assign)?;
        let call = self.opcall()?;
        self.expect(&Tok::Semi)?;
        Ok(Statement::Assign { var, call })
    }

    fn opcall(&mut self) -> Result<OpCall, GmqlError> {
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let op = match name.to_ascii_uppercase().as_str() {
            "SELECT" => self.params_select()?,
            "PROJECT" => self.params_project()?,
            "EXTEND" => self.params_extend()?,
            "MERGE" => self.params_merge()?,
            "GROUP" => self.params_group()?,
            "ORDER" | "SORT" => self.params_order()?,
            "UNION" => {
                self.expect(&Tok::RParen)?;
                Operator::Union
            }
            "DIFFERENCE" => self.params_difference()?,
            "JOIN" => self.params_join()?,
            "MAP" => self.params_map()?,
            "COVER" => self.params_cover(CoverVariant::Cover)?,
            "FLAT" => self.params_cover(CoverVariant::Flat)?,
            "SUMMIT" => self.params_cover(CoverVariant::Summit)?,
            "HISTOGRAM" => self.params_cover(CoverVariant::Histogram)?,
            other => return Err(self.err(format!("unknown operator {other:?}"))),
        };
        let mut operands = Vec::new();
        while let Some(Tok::Ident(_)) = self.peek() {
            operands.push(self.ident()?);
        }
        if operands.len() != op.arity() {
            return Err(self.err(format!(
                "{} takes {} operand(s), found {}",
                op.name(),
                op.arity(),
                operands.len()
            )));
        }
        Ok(OpCall { op, operands })
    }

    // ---- per-operator parameter parsing ---------------------------------

    fn params_select(&mut self) -> Result<Operator, GmqlError> {
        let mut meta = MetaPredicate::True;
        let mut region = None;
        let mut semijoin = None;
        if !self.try_rparen() {
            loop {
                if self.peek_kw("region") && self.peek2() == Some(&Tok::Colon) {
                    self.pos += 2;
                    region = Some(self.region_expr()?);
                } else if self.peek_kw("semijoin") && self.peek2() == Some(&Tok::Colon) {
                    self.pos += 2;
                    semijoin = Some(self.semijoin_clause()?);
                } else {
                    meta = self.meta_predicate()?;
                }
                if !self.eat_semi_section() {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Select { meta, region, semijoin })
    }

    /// `attr, ... [NOT] IN DS` — the metadata semijoin of SELECT.
    fn semijoin_clause(&mut self) -> Result<SemiJoin, GmqlError> {
        let mut attrs = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            attrs.push(self.ident()?);
        }
        let negated = self.eat_kw("NOT");
        if !self.eat_kw("IN") {
            return Err(self.err("expected IN after semijoin attributes"));
        }
        let external = self.ident()?;
        Ok(SemiJoin { attrs, external, negated })
    }

    fn params_project(&mut self) -> Result<Operator, GmqlError> {
        let mut attrs: Option<Vec<String>> = None;
        let mut new_attrs = Vec::new();
        let mut meta_attrs: Option<Vec<String>> = None;
        if !self.try_rparen() {
            loop {
                if self.peek_kw("meta") && self.peek2() == Some(&Tok::Colon) {
                    self.pos += 2;
                    meta_attrs = Some(self.ident_list()?);
                } else {
                    loop {
                        let name = self.ident()?;
                        if self.eat_kw("AS") {
                            new_attrs.push((name, self.region_expr()?));
                        } else {
                            attrs.get_or_insert_with(Vec::new).push(name);
                        }
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                if !self.eat_semi_section() {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Project { attrs, new_attrs, meta_attrs })
    }

    fn params_extend(&mut self) -> Result<Operator, GmqlError> {
        let assignments = self.agg_assignments()?;
        self.expect(&Tok::RParen)?;
        Ok(Operator::Extend { assignments })
    }

    fn params_merge(&mut self) -> Result<Operator, GmqlError> {
        let mut groupby = Vec::new();
        if !self.try_rparen() {
            if self.eat_kw("groupby") {
                self.expect(&Tok::Colon)?;
            }
            groupby = self.ident_list()?;
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Merge { groupby })
    }

    fn params_group(&mut self) -> Result<Operator, GmqlError> {
        let mut by = Vec::new();
        let mut region_aggs = Vec::new();
        if !self.try_rparen() {
            loop {
                if self.eat_kw("aggregate") {
                    self.expect(&Tok::Colon)?;
                    region_aggs = self.agg_assignments()?;
                } else {
                    by = self.ident_list()?;
                }
                if !self.eat_semi_section() {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Group { by, region_aggs })
    }

    fn params_order(&mut self) -> Result<Operator, GmqlError> {
        let mut meta_keys = Vec::new();
        let mut top = None;
        let mut region_keys = Vec::new();
        let mut region_top = None;
        if !self.try_rparen() {
            loop {
                if self.peek_kw("top") && self.peek2() == Some(&Tok::Colon) {
                    self.pos += 2;
                    top = Some(self.usize_lit()?);
                } else if self.peek_kw("region_top") && self.peek2() == Some(&Tok::Colon) {
                    self.pos += 2;
                    region_top = Some(self.usize_lit()?);
                } else if self.peek_kw("region") && self.peek2() == Some(&Tok::Colon) {
                    self.pos += 2;
                    region_keys = self.sort_keys()?;
                } else {
                    meta_keys = self.sort_keys()?;
                }
                if !self.eat_semi_section() {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Order { meta_keys, top, region_keys, region_top })
    }

    fn params_difference(&mut self) -> Result<Operator, GmqlError> {
        let mut exact = false;
        let mut joinby = Vec::new();
        if !self.try_rparen() {
            loop {
                if self.eat_kw("exact") {
                    self.expect(&Tok::Colon)?;
                    let v = self.ident()?;
                    exact = v.eq_ignore_ascii_case("true");
                } else if self.eat_kw("joinby") {
                    self.expect(&Tok::Colon)?;
                    joinby = self.ident_list()?;
                } else {
                    return Err(self.err("DIFFERENCE accepts 'exact:' and 'joinby:' sections"));
                }
                if !self.eat_semi_section() {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Difference { exact, joinby })
    }

    fn params_join(&mut self) -> Result<Operator, GmqlError> {
        let mut clauses = Vec::new();
        let mut output = JoinOutput::Left;
        let mut joinby = Vec::new();
        if !self.try_rparen() {
            loop {
                if self.eat_kw("output") {
                    self.expect(&Tok::Colon)?;
                    let o = self.ident()?;
                    output = match o.to_ascii_uppercase().as_str() {
                        "LEFT" => JoinOutput::Left,
                        "RIGHT" => JoinOutput::Right,
                        "INT" | "INTERSECTION" => JoinOutput::Intersection,
                        "CAT" | "CONTIG" => JoinOutput::Contig,
                        other => return Err(self.err(format!("unknown join output {other:?}"))),
                    };
                } else if self.eat_kw("joinby") {
                    self.expect(&Tok::Colon)?;
                    joinby = self.ident_list()?;
                } else {
                    loop {
                        clauses.push(self.genometric_clause()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                if !self.eat_semi_section() {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Join { clauses, output, joinby })
    }

    fn genometric_clause(&mut self) -> Result<GenometricClause, GmqlError> {
        let name = self.ident()?;
        match name.to_ascii_uppercase().as_str() {
            "DLE" => {
                self.expect(&Tok::LParen)?;
                let d = self.i64_lit()?;
                self.expect(&Tok::RParen)?;
                Ok(GenometricClause::DistLessEq(d))
            }
            "DGE" => {
                self.expect(&Tok::LParen)?;
                let d = self.i64_lit()?;
                self.expect(&Tok::RParen)?;
                Ok(GenometricClause::DistGreaterEq(d))
            }
            "MD" => {
                self.expect(&Tok::LParen)?;
                let k = self.usize_lit()?;
                self.expect(&Tok::RParen)?;
                Ok(GenometricClause::MinDist(k))
            }
            "UP" | "UPSTREAM" => Ok(GenometricClause::Upstream),
            "DOWN" | "DOWNSTREAM" => Ok(GenometricClause::Downstream),
            other => Err(self.err(format!("unknown genometric clause {other:?}"))),
        }
    }

    fn params_map(&mut self) -> Result<Operator, GmqlError> {
        let mut aggs = Vec::new();
        let mut joinby = Vec::new();
        if !self.try_rparen() {
            loop {
                if self.eat_kw("joinby") {
                    self.expect(&Tok::Colon)?;
                    joinby = self.ident_list()?;
                } else {
                    aggs = self.agg_assignments()?;
                }
                if !self.eat_semi_section() {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(Operator::Map { aggs, joinby })
    }

    fn params_cover(&mut self, variant: CoverVariant) -> Result<Operator, GmqlError> {
        let min_acc = self.acc_bound()?;
        self.expect(&Tok::Comma)?;
        let max_acc = self.acc_bound()?;
        let mut groupby = Vec::new();
        let mut aggs = Vec::new();
        while self.eat_semi_section() {
            if self.eat_kw("groupby") {
                self.expect(&Tok::Colon)?;
                groupby = self.ident_list()?;
            } else if self.eat_kw("aggregate") {
                self.expect(&Tok::Colon)?;
                aggs = self.agg_assignments()?;
            } else {
                return Err(self.err("COVER accepts 'groupby:' and 'aggregate:' sections"));
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(Operator::Cover { variant, min_acc, max_acc, groupby, aggs })
    }

    fn acc_bound(&mut self) -> Result<AccBound, GmqlError> {
        if self.eat_kw("ANY") {
            Ok(AccBound::Any)
        } else if self.eat_kw("ALL") {
            Ok(AccBound::All)
        } else {
            Ok(AccBound::Value(self.usize_lit()?))
        }
    }

    // ---- shared pieces ---------------------------------------------------

    /// `name AS AGG(attr)` comma list (used by EXTEND, MAP, GROUP, COVER).
    fn agg_assignments(&mut self) -> Result<Vec<(String, Aggregate)>, GmqlError> {
        let mut out = Vec::new();
        if matches!(self.peek(), Some(Tok::RParen | Tok::Semi)) {
            return Ok(out);
        }
        loop {
            let name = self.ident()?;
            if !self.eat_kw("AS") {
                return Err(self.err(format!("expected AS after aggregate name {name:?}")));
            }
            let func_name = self.ident()?;
            let func = AggFunc::parse(&func_name)
                .ok_or_else(|| self.err(format!("unknown aggregate function {func_name:?}")))?;
            let attr = if self.eat(&Tok::LParen) {
                if self.eat(&Tok::RParen) {
                    None
                } else {
                    let a = self.ident()?;
                    self.expect(&Tok::RParen)?;
                    Some(a)
                }
            } else {
                None
            };
            out.push((name, Aggregate { func, attr }));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, GmqlError> {
        let mut out = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn sort_keys(&mut self) -> Result<Vec<(String, SortDir)>, GmqlError> {
        let mut out = Vec::new();
        loop {
            let name = self.ident()?;
            let dir = if self.eat_kw("DESC") {
                SortDir::Desc
            } else {
                self.eat_kw("ASC");
                SortDir::Asc
            };
            out.push((name, dir));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn usize_lit(&mut self) -> Result<usize, GmqlError> {
        match self.next()? {
            Tok::Number(n) if n >= 0.0 && n.fract() == 0.0 => Ok(n as usize),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected non-negative integer, found {other}")))
            }
        }
    }

    fn i64_lit(&mut self) -> Result<i64, GmqlError> {
        let neg = self.eat(&Tok::Minus);
        match self.next()? {
            Tok::Number(n) if n.fract() == 0.0 => Ok(if neg { -(n as i64) } else { n as i64 }),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected integer, found {other}")))
            }
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Section separator `;` inside parentheses (not statement-final).
    fn eat_semi_section(&mut self) -> bool {
        if self.peek() == Some(&Tok::Semi) && self.peek2() != Some(&Tok::RParen) {
            // A `;` directly before `)` would be an empty section.
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn try_rparen(&mut self) -> bool {
        self.eat(&Tok::RParen)
    }

    // ---- metadata predicates ---------------------------------------------

    fn meta_predicate(&mut self) -> Result<MetaPredicate, GmqlError> {
        self.meta_or()
    }

    fn meta_or(&mut self) -> Result<MetaPredicate, GmqlError> {
        let mut left = self.meta_and()?;
        while self.eat_kw("OR") {
            let right = self.meta_and()?;
            left = MetaPredicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn meta_and(&mut self) -> Result<MetaPredicate, GmqlError> {
        let mut left = self.meta_unary()?;
        while self.eat_kw("AND") {
            let right = self.meta_unary()?;
            left = MetaPredicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn meta_unary(&mut self) -> Result<MetaPredicate, GmqlError> {
        self.enter_expr()?;
        let result = self.meta_unary_inner();
        self.depth -= 1;
        result
    }

    fn meta_unary_inner(&mut self) -> Result<MetaPredicate, GmqlError> {
        if self.eat_kw("NOT") {
            return Ok(MetaPredicate::Not(Box::new(self.meta_unary()?)));
        }
        if self.eat(&Tok::LParen) {
            let inner = self.meta_or()?;
            self.expect(&Tok::RParen)?;
            return Ok(inner);
        }
        if self.eat_kw("EXISTS") {
            self.expect(&Tok::LParen)?;
            let attr = self.ident()?;
            self.expect(&Tok::RParen)?;
            return Ok(MetaPredicate::Exists(attr));
        }
        let attr = self.ident()?;
        let op = match self.next()? {
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => {
                self.pos -= 1;
                return Err(self.err(format!("expected comparison operator, found {other}")));
            }
        };
        let value = match self.next()? {
            Tok::Str(s) => s,
            Tok::Number(n) => {
                if n.fract() == 0.0 {
                    format!("{}", n as i64)
                } else {
                    format!("{n}")
                }
            }
            Tok::Ident(s) => s,
            other => {
                self.pos -= 1;
                return Err(self.err(format!("expected literal, found {other}")));
            }
        };
        Ok(MetaPredicate::Cmp { attr, op, value })
    }

    // ---- region expressions -----------------------------------------------

    fn region_expr(&mut self) -> Result<RegionExpr, GmqlError> {
        self.region_or()
    }

    fn region_or(&mut self) -> Result<RegionExpr, GmqlError> {
        let mut left = self.region_and()?;
        while self.eat_kw("OR") {
            let right = self.region_and()?;
            left = RegionExpr::Binary(Box::new(left), BinOp::Or, Box::new(right));
        }
        Ok(left)
    }

    fn region_and(&mut self) -> Result<RegionExpr, GmqlError> {
        let mut left = self.region_cmp()?;
        while self.eat_kw("AND") {
            let right = self.region_cmp()?;
            left = RegionExpr::Binary(Box::new(left), BinOp::And, Box::new(right));
        }
        Ok(left)
    }

    fn region_cmp(&mut self) -> Result<RegionExpr, GmqlError> {
        let left = self.region_add()?;
        let op = match self.peek() {
            Some(Tok::EqEq) => Some(CmpOp::Eq),
            Some(Tok::NotEq) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.region_add()?;
            return Ok(RegionExpr::Binary(Box::new(left), BinOp::Cmp(op), Box::new(right)));
        }
        Ok(left)
    }

    fn region_add(&mut self) -> Result<RegionExpr, GmqlError> {
        let mut left = self.region_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.region_mul()?;
            left = RegionExpr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn region_mul(&mut self) -> Result<RegionExpr, GmqlError> {
        let mut left = self.region_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.region_unary()?;
            left = RegionExpr::Binary(Box::new(left), op, Box::new(right));
        }
        Ok(left)
    }

    fn region_unary(&mut self) -> Result<RegionExpr, GmqlError> {
        self.enter_expr()?;
        let result = self.region_unary_inner();
        self.depth -= 1;
        result
    }

    fn region_unary_inner(&mut self) -> Result<RegionExpr, GmqlError> {
        if self.eat_kw("NOT") {
            return Ok(RegionExpr::Not(Box::new(self.region_unary()?)));
        }
        if self.eat(&Tok::Minus) {
            let inner = self.region_unary()?;
            return Ok(RegionExpr::Binary(
                Box::new(RegionExpr::Lit(Value::Int(0))),
                BinOp::Sub,
                Box::new(inner),
            ));
        }
        match self.next()? {
            Tok::Number(n) => Ok(RegionExpr::Lit(number_value(n))),
            Tok::Str(s) => Ok(RegionExpr::Lit(Value::Str(s))),
            Tok::Ident(name) => Ok(RegionExpr::Attr(name)),
            Tok::LParen => {
                let inner = self.region_or()?;
                self.expect(&Tok::RParen)?;
                Ok(inner)
            }
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected expression, found {other}")))
            }
        }
    }
}

/// Represent a numeric literal as Int when it is a safe integer.
fn number_value(n: f64) -> Value {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        Value::Int(n as i64)
    } else {
        Value::Float(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_parses() {
        let q = "
            PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
            PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
            RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
            MATERIALIZE RESULT;
        ";
        let stmts = parse(q).unwrap();
        assert_eq!(stmts.len(), 4);
        match &stmts[0] {
            Statement::Assign { var, call } => {
                assert_eq!(var, "PROMS");
                assert_eq!(call.operands, vec!["ANNOTATIONS"]);
                match &call.op {
                    Operator::Select { meta, region, .. } => {
                        assert_eq!(*meta, MetaPredicate::eq("annType", "promoter"));
                        assert!(region.is_none());
                    }
                    other => panic!("expected SELECT, got {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        match &stmts[2] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Map { aggs, .. } => {
                    assert_eq!(aggs.len(), 1);
                    assert_eq!(aggs[0].0, "peak_count");
                    assert_eq!(aggs[0].1, Aggregate::count());
                }
                other => panic!("expected MAP, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(stmts[3], Statement::Materialize { var: "RESULT".into(), into: None });
    }

    #[test]
    fn select_with_region_section() {
        let stmts =
            parse("X = SELECT(cell == 'HeLa'; region: p_value < 0.01 AND left > 1000) D;").unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Select { meta, region, .. } => {
                    assert!(matches!(meta, MetaPredicate::Cmp { .. }));
                    assert!(region.is_some());
                }
                other => panic!("{other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn select_region_only() {
        let stmts = parse("X = SELECT(region: score >= 2.5) D;").unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Select { meta, region, .. } => {
                    assert_eq!(*meta, MetaPredicate::True);
                    assert!(region.is_some());
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_full_form() {
        let stmts =
            parse("X = JOIN(DLE(10000), UP; output: INT; joinby: cell, tissue) A B;").unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Join { clauses, output, joinby } => {
                    assert_eq!(
                        *clauses,
                        vec![GenometricClause::DistLessEq(10000), GenometricClause::Upstream]
                    );
                    assert_eq!(*output, JoinOutput::Intersection);
                    assert_eq!(*joinby, vec!["cell", "tissue"]);
                }
                other => panic!("{other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn join_md_and_negative_dge() {
        let stmts = parse("X = JOIN(MD(1), DGE(-5)) A B;").unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Join { clauses, .. } => {
                    assert_eq!(
                        *clauses,
                        vec![GenometricClause::MinDist(1), GenometricClause::DistGreaterEq(-5)]
                    );
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn cover_bounds() {
        let stmts =
            parse("X = COVER(2, ANY) D; Y = HISTOGRAM(ALL, ALL; groupby: cell) D;").unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Cover { variant, min_acc, max_acc, .. } => {
                    assert_eq!(*variant, CoverVariant::Cover);
                    assert_eq!(*min_acc, AccBound::Value(2));
                    assert_eq!(*max_acc, AccBound::Any);
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
        match &stmts[1] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Cover { variant, groupby, .. } => {
                    assert_eq!(*variant, CoverVariant::Histogram);
                    assert_eq!(*groupby, vec!["cell"]);
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn extend_and_project() {
        let stmts = parse(
            "X = EXTEND(region_count AS COUNT, max_p AS MAX(p_value)) D;
             Y = PROJECT(name, p_value, minus_log AS 0 - p_value) X;",
        )
        .unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Extend { assignments } => {
                    assert_eq!(assignments.len(), 2);
                    assert_eq!(assignments[1].1, Aggregate::over(AggFunc::Max, "p_value"));
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
        match &stmts[1] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Project { attrs, new_attrs, .. } => {
                    assert_eq!(attrs.as_deref(), Some(&["name".to_string(), "p_value".into()][..]));
                    assert_eq!(new_attrs.len(), 1);
                    assert_eq!(new_attrs[0].0, "minus_log");
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn order_and_difference_and_merge() {
        let stmts = parse(
            "A = ORDER(age DESC, name; top: 5; region: p_value; region_top: 100) D;
             B = DIFFERENCE(exact: false; joinby: cell) D E;
             C = MERGE(groupby: tissue) D;",
        )
        .unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Order { meta_keys, top, region_keys, region_top } => {
                    assert_eq!(meta_keys[0], ("age".to_string(), SortDir::Desc));
                    assert_eq!(meta_keys[1], ("name".to_string(), SortDir::Asc));
                    assert_eq!(*top, Some(5));
                    assert_eq!(region_keys.len(), 1);
                    assert_eq!(*region_top, Some(100));
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
        match &stmts[1] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Difference { exact, joinby } => {
                    assert!(!exact);
                    assert_eq!(*joinby, vec!["cell"]);
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
        match &stmts[2] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Merge { groupby } => assert_eq!(*groupby, vec!["tissue"]),
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn union_no_params() {
        let stmts = parse("U = UNION() A B;").unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => {
                assert_eq!(call.op, Operator::Union);
                assert_eq!(call.operands, vec!["A", "B"]);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn arity_errors() {
        assert!(parse("U = UNION() A;").is_err());
        assert!(parse("S = SELECT(x == 1) A B;").is_err());
    }

    #[test]
    fn error_positions_reported() {
        let err = parse("X = SELEKT(a == 1) D;").unwrap_err();
        match err {
            GmqlError::Syntax { line, .. } => assert_eq!(line, 1),
            other => panic!("{other:?}"),
        }
        assert!(parse("").is_err());
        assert!(parse("X = SELECT(a == ) D;").is_err());
    }

    #[test]
    fn materialize_into() {
        let stmts = parse("MATERIALIZE X INTO results;").unwrap();
        assert_eq!(
            stmts[0],
            Statement::Materialize { var: "X".into(), into: Some("results".into()) }
        );
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Without the depth guard these inputs abort the process with a
        // stack overflow; with it they must return a positioned Syntax
        // error. 50k levels is far beyond any thread's stack budget.
        let depth = 50_000;
        let meta = format!("X = SELECT({}a == 1{}) D;", "(".repeat(depth), ")".repeat(depth));
        match parse(&meta).unwrap_err() {
            GmqlError::Syntax { line, column, message } => {
                assert_eq!(line, 1);
                assert!(column > 0);
                assert!(message.contains("nesting"), "unexpected message: {message}");
            }
            other => panic!("expected Syntax, got {other:?}"),
        }
        let region =
            format!("X = SELECT(region: {}s > 1{}) D;", "(".repeat(depth), ")".repeat(depth));
        assert!(matches!(parse(&region).unwrap_err(), GmqlError::Syntax { .. }));
        let nots = format!("X = SELECT({}a == 1) D;", "NOT ".repeat(depth));
        assert!(matches!(parse(&nots).unwrap_err(), GmqlError::Syntax { .. }));
        let minus = format!("X = SELECT(region: {}1 > 0) D;", "-".repeat(depth));
        assert!(matches!(parse(&minus).unwrap_err(), GmqlError::Syntax { .. }));
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        // The guard must not reject realistic queries: 40 paren levels.
        let depth = 40;
        let q = format!("X = SELECT({}a == 1{}) D;", "(".repeat(depth), ")".repeat(depth));
        parse(&q).unwrap();
        // Depth resets between expressions: many sibling groups are fine.
        let siblings = (0..200).map(|i| format!("(a == {i})")).collect::<Vec<_>>().join(" OR ");
        parse(&format!("X = SELECT({siblings}) D;")).unwrap();
    }

    #[test]
    fn meta_predicate_parens_and_not() {
        let stmts = parse("X = SELECT(NOT (a == 1) AND (b == 2 OR c == 3)) D;").unwrap();
        match &stmts[0] {
            Statement::Assign { call, .. } => match &call.op {
                Operator::Select { meta, .. } => {
                    assert!(matches!(meta, MetaPredicate::And(_, _)));
                }
                _ => unreachable!(),
            },
            _ => unreachable!(),
        }
    }
}
