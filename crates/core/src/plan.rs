//! Logical query plans.
//!
//! Statements compile into a DAG of logical nodes with **inferred
//! schemas**: GMQL is a closed algebra over datasets (paper §2), so every
//! node's output schema is computable from its inputs, and attribute
//! references are validated before any region is touched. The paper's
//! architecture (§4.2) separates "compiler, logical optimizer" from the
//! backend — this module is the compiler half; [`crate::optimizer`] is
//! the optimizer; [`crate::exec`] is the (hand-built) backend.

use crate::ast::{Operator, Statement};
use crate::error::GmqlError;
use nggc_gdm::{Attribute, Schema, ValueType};
use std::collections::HashMap;

/// Index of a node in a [`LogicalPlan`].
pub type NodeId = usize;

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// A source dataset loaded from the repository.
    Source(String),
    /// An operator application.
    Apply(Operator),
}

/// A node of the logical DAG.
#[derive(Debug, Clone)]
pub struct LogicalNode {
    /// What the node computes.
    pub op: PlanOp,
    /// Input node ids (empty for sources).
    pub inputs: Vec<NodeId>,
    /// Inferred output region schema.
    pub schema: Schema,
    /// The query variable this node defines (sources use the dataset name).
    pub label: String,
}

/// A compiled logical plan: nodes in topological order plus the
/// materialization outputs.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    /// Nodes; every node's inputs precede it.
    pub nodes: Vec<LogicalNode>,
    /// `(output dataset name, node)` pairs from MATERIALIZE statements.
    pub outputs: Vec<(String, NodeId)>,
}

impl LogicalPlan {
    /// Compile statements against a schema catalog for source datasets.
    ///
    /// `source_schema` returns the region schema of a repository dataset,
    /// or `None` when the dataset does not exist.
    pub fn compile(
        statements: &[Statement],
        source_schema: &dyn Fn(&str) -> Option<Schema>,
    ) -> Result<LogicalPlan, GmqlError> {
        let mut plan = LogicalPlan::default();
        // Variable name -> node. Also caches source nodes by dataset name.
        let mut env: HashMap<String, NodeId> = HashMap::new();

        let resolve = |plan: &mut LogicalPlan,
                       env: &mut HashMap<String, NodeId>,
                       name: &str|
         -> Result<NodeId, GmqlError> {
            if let Some(&id) = env.get(name) {
                return Ok(id);
            }
            let schema = source_schema(name).ok_or_else(|| {
                GmqlError::semantic(format!("unknown variable or dataset {name:?}"))
            })?;
            let id = plan.nodes.len();
            plan.nodes.push(LogicalNode {
                op: PlanOp::Source(name.to_owned()),
                inputs: Vec::new(),
                schema,
                label: name.to_owned(),
            });
            env.insert(name.to_owned(), id);
            Ok(id)
        };

        let mut any_materialize = false;
        for stmt in statements {
            match stmt {
                Statement::Assign { var, call } => {
                    let mut inputs: Vec<NodeId> = call
                        .operands
                        .iter()
                        .map(|o| resolve(&mut plan, &mut env, o))
                        .collect::<Result<_, _>>()?;
                    // A SELECT semijoin references an extra dataset; it
                    // becomes a second input of the node.
                    if let Operator::Select { semijoin: Some(sj), .. } = &call.op {
                        inputs.push(resolve(&mut plan, &mut env, &sj.external)?);
                    }
                    let in_schemas: Vec<&Schema> =
                        inputs.iter().map(|&i| &plan.nodes[i].schema).collect();
                    let schema = infer_schema(&call.op, &in_schemas)?;
                    let id = plan.nodes.len();
                    plan.nodes.push(LogicalNode {
                        op: PlanOp::Apply(call.op.clone()),
                        inputs,
                        schema,
                        label: var.clone(),
                    });
                    env.insert(var.clone(), id);
                }
                Statement::Materialize { var, into } => {
                    let id = *env.get(var).ok_or_else(|| {
                        GmqlError::semantic(format!("MATERIALIZE of undefined variable {var:?}"))
                    })?;
                    any_materialize = true;
                    plan.outputs.push((into.clone().unwrap_or_else(|| var.clone()), id));
                }
            }
        }
        if !any_materialize {
            // Convenience: materialize the last assignment when the query
            // has no explicit MATERIALIZE (useful interactively).
            if let Some(Statement::Assign { var, .. }) =
                statements.iter().rev().find(|s| matches!(s, Statement::Assign { .. }))
            {
                let id = env[var];
                plan.outputs.push((var.clone(), id));
            }
        }
        if plan.outputs.is_empty() {
            return Err(GmqlError::semantic("query materializes nothing"));
        }
        Ok(plan)
    }

    /// Human-readable plan listing (one node per line).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let what = match &n.op {
                PlanOp::Source(name) => format!("SOURCE {name}"),
                PlanOp::Apply(op) => format!("{} <- {:?}", op.name(), n.inputs),
            };
            out.push_str(&format!("#{i} [{}] {} :: {}\n", n.label, what, n.schema));
        }
        for (name, id) in &self.outputs {
            out.push_str(&format!("OUTPUT {name} = #{id}\n"));
        }
        out
    }

    /// Render the plan as a tree rooted at each output, in dependency
    /// order (`nggc query --explain` / `--explain-analyze`).
    ///
    /// `annotate` supplies extra per-node text appended to the node's
    /// line — EXPLAIN ANALYZE passes measured runtime stats, plain
    /// EXPLAIN passes nothing. The plan is a DAG: a node shared by
    /// several consumers (e.g. after optimizer deduplication) is
    /// expanded once and referenced as `(shared, shown above)` on later
    /// visits, so the rendering stays linear in plan size.
    pub fn render_tree(&self, annotate: &dyn Fn(NodeId) -> String) -> String {
        let mut out = String::new();
        let mut seen = vec![false; self.nodes.len()];
        for (name, id) in &self.outputs {
            out.push_str(&format!("OUTPUT {name} = #{id}\n"));
            self.render_node(*id, "", true, &mut seen, annotate, &mut out);
        }
        out
    }

    fn render_node(
        &self,
        id: NodeId,
        prefix: &str,
        last: bool,
        seen: &mut [bool],
        annotate: &dyn Fn(NodeId) -> String,
        out: &mut String,
    ) {
        let node = &self.nodes[id];
        let connector = if last { "└─ " } else { "├─ " };
        let what = match &node.op {
            PlanOp::Source(name) => format!("SOURCE {name}"),
            PlanOp::Apply(op) => op.name().to_owned(),
        };
        if seen[id] {
            out.push_str(&format!(
                "{prefix}{connector}#{id} {what} [{}] (shared, shown above)\n",
                node.label
            ));
            return;
        }
        seen[id] = true;
        let mut line =
            format!("{prefix}{connector}#{id} {what} [{}] :: {}", node.label, node.schema);
        let ann = annotate(id);
        if !ann.is_empty() {
            line.push_str("  ");
            line.push_str(&ann);
        }
        line.push('\n');
        out.push_str(&line);
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        for (i, &input) in node.inputs.iter().enumerate() {
            self.render_node(input, &child_prefix, i + 1 == node.inputs.len(), seen, annotate, out);
        }
    }
}

/// Infer the output schema of an operator given input schemas, validating
/// every attribute reference.
pub fn infer_schema(op: &Operator, inputs: &[&Schema]) -> Result<Schema, GmqlError> {
    let unary = || -> Result<&Schema, GmqlError> {
        inputs.first().copied().ok_or_else(|| GmqlError::semantic("missing operand"))
    };
    match op {
        Operator::Select { region, .. } => {
            let s = unary()?;
            if let Some(expr) = region {
                expr.check(s)?;
            }
            Ok(s.clone())
        }
        Operator::Project { attrs, new_attrs, .. } => {
            let s = unary()?;
            let mut out = match attrs {
                Some(names) => {
                    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                    s.project(&refs)?.0
                }
                None => s.clone(),
            };
            for (name, expr) in new_attrs {
                let ty = expr.check(s)?.unwrap_or(ValueType::Float);
                out.push(Attribute::new(name.clone(), ty))?;
            }
            Ok(out)
        }
        Operator::Extend { assignments } => {
            let s = unary()?;
            for (_, agg) in assignments {
                agg.resolve(s)?;
            }
            Ok(s.clone())
        }
        Operator::Merge { .. } | Operator::Order { .. } => Ok(unary()?.clone()),
        Operator::Group { region_aggs, .. } => {
            let s = unary()?;
            let mut out = s.clone();
            for (name, agg) in region_aggs {
                let (_, ty) = agg.resolve(s)?;
                out.push(Attribute::new(name.clone(), ty))?;
            }
            Ok(out)
        }
        Operator::Union => {
            let [a, b] = two(inputs)?;
            Ok(a.merge(b).schema)
        }
        Operator::Difference { .. } => Ok(two(inputs)?[0].clone()),
        Operator::Join { output: _, .. } => {
            let [a, b] = two(inputs)?;
            let mut out = Schema::empty();
            for attr in a.attributes() {
                out.push(Attribute::new(format!("left.{}", attr.name), attr.ty))?;
            }
            for attr in b.attributes() {
                out.push(Attribute::new(format!("right.{}", attr.name), attr.ty))?;
            }
            Ok(out)
        }
        Operator::Map { aggs, .. } => {
            let [r, e] = two(inputs)?;
            let mut out = r.clone();
            for (name, agg) in aggs {
                let (_, ty) = agg.resolve(e)?;
                out.push(Attribute::new(name.clone(), ty))?;
            }
            Ok(out)
        }
        Operator::Cover { aggs, .. } => {
            let s = unary()?;
            let mut out = Schema::new(vec![Attribute::new("accindex", ValueType::Int)])?;
            for (name, agg) in aggs {
                let (_, ty) = agg.resolve(s)?;
                out.push(Attribute::new(name.clone(), ty))?;
            }
            Ok(out)
        }
    }
}

fn two<'a>(inputs: &[&'a Schema]) -> Result<[&'a Schema; 2], GmqlError> {
    match inputs {
        [a, b] => Ok([a, b]),
        _ => Err(GmqlError::semantic("binary operator requires two operands")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn catalog(name: &str) -> Option<Schema> {
        match name {
            "ENCODE" | "PEAKS2" => Some(
                Schema::new(vec![
                    Attribute::new("p_value", ValueType::Float),
                    Attribute::new("name", ValueType::Str),
                ])
                .unwrap(),
            ),
            "ANNOTATIONS" => {
                Some(Schema::new(vec![Attribute::new("annType", ValueType::Str)]).unwrap())
            }
            _ => None,
        }
    }

    fn compile(q: &str) -> Result<LogicalPlan, GmqlError> {
        LogicalPlan::compile(&parse(q).unwrap(), &catalog)
    }

    #[test]
    fn paper_query_compiles_with_schemas() {
        let plan = compile(
            "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
             PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
             RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
             MATERIALIZE RESULT;",
        )
        .unwrap();
        assert_eq!(plan.outputs.len(), 1);
        let result = &plan.nodes[plan.outputs[0].1];
        assert_eq!(result.label, "RESULT");
        // RESULT schema = ANNOTATIONS schema + peak_count.
        assert!(result.schema.get("annType").is_some());
        assert_eq!(result.schema.get("peak_count").unwrap().ty, ValueType::Int);
    }

    #[test]
    fn unknown_dataset_rejected() {
        let err = compile("X = SELECT(a == 1) NOPE;").unwrap_err();
        assert!(matches!(err, GmqlError::Semantic(_)));
    }

    #[test]
    fn unknown_attribute_in_region_predicate_rejected() {
        let err = compile("X = SELECT(region: zzz > 1) ENCODE;").unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn join_schema_prefixes() {
        let plan = compile("J = JOIN(DLE(100)) ANNOTATIONS ENCODE;").unwrap();
        let s = &plan.nodes[plan.outputs[0].1].schema;
        assert!(s.get("left.annType").is_some());
        assert!(s.get("right.p_value").is_some());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn union_merges_schemas() {
        let plan = compile("U = UNION() ENCODE PEAKS2;").unwrap();
        let s = &plan.nodes[plan.outputs[0].1].schema;
        assert_eq!(s.len(), 2, "identical schemas unify");
    }

    #[test]
    fn cover_schema_has_accindex() {
        let plan = compile("C = COVER(2, ANY; aggregate: maxp AS MAX(p_value)) ENCODE;").unwrap();
        let s = &plan.nodes[plan.outputs[0].1].schema;
        assert_eq!(s.get("accindex").unwrap().ty, ValueType::Int);
        assert_eq!(s.get("maxp").unwrap().ty, ValueType::Float);
    }

    #[test]
    fn implicit_materialize_of_last_assignment() {
        let plan = compile("X = SELECT(a == 1) ENCODE;").unwrap();
        assert_eq!(plan.outputs, vec![("X".to_string(), 1)]);
    }

    #[test]
    fn map_aggregate_resolves_against_experiment_schema() {
        // p_value lives in ENCODE (experiment side), not ANNOTATIONS.
        let plan = compile("M = MAP(mp AS MAX(p_value)) ANNOTATIONS ENCODE;").unwrap();
        let s = &plan.nodes[plan.outputs[0].1].schema;
        assert!(s.get("mp").is_some());
        // The reverse direction must fail: SUM needs a numeric attribute,
        // and `p_value` is absent from ANNOTATIONS (the experiment side).
        assert!(compile("M = MAP(mp AS SUM(annType)) ENCODE ANNOTATIONS;").is_err());
        assert!(compile("M = MAP(mp AS MAX(p_value)) ENCODE ANNOTATIONS;").is_err());
    }

    #[test]
    fn explain_lists_nodes() {
        let plan = compile("X = SELECT(a == 1) ENCODE; MATERIALIZE X INTO out;").unwrap();
        let text = plan.explain();
        assert!(text.contains("SOURCE ENCODE"));
        assert!(text.contains("OUTPUT out"));
    }

    #[test]
    fn render_tree_nests_inputs_under_consumers() {
        let plan = compile(
            "PROMS = SELECT(annType == 'promoter') ANNOTATIONS;
             RESULT = MAP(n AS COUNT) PROMS ENCODE;
             MATERIALIZE RESULT;",
        )
        .unwrap();
        let text = plan.render_tree(&|_| String::new());
        assert!(text.starts_with("OUTPUT RESULT = #3\n"), "{text}");
        assert!(text.contains("└─ #3 MAP [RESULT]"), "{text}");
        // MAP's two inputs branch under it, the SELECT chain nests deeper.
        assert!(text.contains("   ├─ #1 SELECT [PROMS]"), "{text}");
        assert!(text.contains("   │  └─ #0 SOURCE ANNOTATIONS [ANNOTATIONS]"), "{text}");
        assert!(text.contains("   └─ #2 SOURCE ENCODE [ENCODE]"), "{text}");
    }

    #[test]
    fn render_tree_marks_shared_nodes_and_annotates() {
        // ENCODE feeds both sides of the union: one expansion, one
        // shared reference.
        let plan = compile("U = UNION() ENCODE ENCODE; MATERIALIZE U;").unwrap();
        let text = plan.render_tree(&|id| format!("(node {id})"));
        assert_eq!(text.matches("SOURCE ENCODE [ENCODE] ::").count(), 1, "{text}");
        assert!(text.contains("(shared, shown above)"), "{text}");
        assert!(text.contains("(node 1)"), "annotation missing: {text}");
    }
}
