//! Canonical plan fingerprints for the query result cache.
//!
//! A fingerprint is a structural 64-bit hash of an **optimized**
//! [`LogicalPlan`]: two queries that differ only in whitespace,
//! comments, or intermediate variable names map to the same
//! fingerprint, while any change to a predicate, clause, operator
//! parameter, or input dataset identity changes it. Combined with the
//! repository's per-dataset generation counters this keys the result
//! cache (`docs/caching.md`).
//!
//! Stability: the hash is a hand-rolled FNV-1a over a canonical text
//! encoding of the plan, so it is stable across processes and releases
//! (unlike `std::collections::hash_map::DefaultHasher`, whose algorithm
//! is unspecified). [`FINGERPRINT_VERSION`] is mixed in; bump it
//! whenever the encoding changes so stale on-disk entries self-expire.

use crate::plan::{LogicalPlan, PlanOp};

/// Version tag mixed into every fingerprint. Bump on any change to the
/// canonical encoding below.
pub const FINGERPRINT_VERSION: u32 = 2;

/// A canonical fingerprint of an optimized logical plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(pub u64);

impl PlanFingerprint {
    /// Fixed-width lowercase hex rendering (stable file/dir name).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Compute the canonical fingerprint of a plan.
///
/// Call this on the *optimized* plan so logically-equal queries that
/// the optimizer normalizes differently (fused SELECTs, deduplicated
/// subtrees) still collide on purpose. The encoding covers, per node in
/// topological order: the operator (including every predicate, clause,
/// and parameter via its canonical `Debug` rendering — `Source` nodes
/// contribute the dataset name, i.e. input identity) and the input node
/// ids. Node *labels* (intermediate variable names) are deliberately
/// excluded. The plan's outputs contribute both the node id and the
/// output dataset name, because output names title the result the
/// client receives.
pub fn fingerprint(plan: &LogicalPlan) -> PlanFingerprint {
    let mut h = Fnv::new();
    h.write(&FINGERPRINT_VERSION.to_le_bytes());
    // Scan pruning changes what a Source node physically reads; mixing
    // the ScanSpec derivation version in keeps cached results from
    // aliasing across pruning-semantics changes.
    h.write(&crate::scan::SCAN_SPEC_VERSION.to_le_bytes());
    h.write(&(plan.nodes.len() as u64).to_le_bytes());
    for node in &plan.nodes {
        match &node.op {
            PlanOp::Source(name) => {
                h.write(b"S:");
                h.write(name.as_bytes());
            }
            PlanOp::Apply(op) => {
                h.write(b"A:");
                // `Operator` and everything it contains derive `Debug`
                // with plain field syntax; the rendering is a canonical
                // description of the operator's parameters and is
                // independent of query-text spelling.
                h.write(format!("{op:?}").as_bytes());
            }
        }
        h.write(b"|in:");
        for &input in &node.inputs {
            h.write(&(input as u64).to_le_bytes());
        }
        h.write(b";");
    }
    h.write(b"|out:");
    for (name, id) in &plan.outputs {
        h.write(name.as_bytes());
        h.write(b"=");
        h.write(&(*id as u64).to_le_bytes());
        h.write(b";");
    }
    PlanFingerprint(h.0)
}

/// Names of the source datasets a plan reads, deduplicated, in first-use
/// order. The cache snapshots each source's repository generation under
/// this list.
pub fn source_datasets(plan: &LogicalPlan) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for node in &plan.nodes {
        if let PlanOp::Source(name) = &node.op {
            if !out.iter().any(|n| n == name) {
                out.push(name.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::parser::parse;
    use nggc_gdm::{Attribute, Schema, ValueType};

    fn catalog(name: &str) -> Option<Schema> {
        match name {
            "ENCODE" | "OTHER" => Some(
                Schema::new(vec![
                    Attribute::new("p_value", ValueType::Float),
                    Attribute::new("name", ValueType::Str),
                ])
                .unwrap(),
            ),
            _ => None,
        }
    }

    fn fp(query: &str) -> PlanFingerprint {
        let plan = LogicalPlan::compile(&parse(query).unwrap(), &catalog).unwrap();
        let (plan, _) = optimize(&plan);
        fingerprint(&plan)
    }

    #[test]
    fn whitespace_and_variable_names_do_not_matter() {
        let a = fp("X = SELECT(region: p_value > 0.5) ENCODE; MATERIALIZE X INTO out;");
        let b = fp("LONGNAME   =   SELECT(region: p_value > 0.5)   ENCODE ;\nMATERIALIZE LONGNAME INTO out;");
        assert_eq!(a, b);
    }

    #[test]
    fn predicates_matter() {
        let a = fp("X = SELECT(region: p_value > 0.5) ENCODE;");
        let b = fp("X = SELECT(region: p_value > 0.6) ENCODE;");
        assert_ne!(a, b);
    }

    #[test]
    fn source_dataset_identity_matters() {
        let a = fp("X = SELECT() ENCODE;");
        let b = fp("X = SELECT() OTHER;");
        assert_ne!(a, b);
    }

    #[test]
    fn output_name_matters() {
        // The output name titles the materialized result, so INTO
        // renames produce distinct cache entries.
        let a = fp("X = SELECT() ENCODE; MATERIALIZE X INTO a;");
        let b = fp("X = SELECT() ENCODE; MATERIALIZE X INTO b;");
        assert_ne!(a, b);
    }

    #[test]
    fn optimizer_normalization_collides_on_purpose() {
        // A chain of two SELECTs fuses into the same optimized plan as
        // the single conjunctive SELECT, so both spellings share one
        // cache entry.
        let a = fp("X = SELECT(region: p_value > 0.5) ENCODE;\
                    Y = SELECT(region: p_value < 0.9) X; MATERIALIZE Y INTO out;");
        let b = fp(
            "Y = SELECT(region: p_value > 0.5 AND p_value < 0.9) ENCODE; MATERIALIZE Y INTO out;",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_is_stable_across_calls() {
        let a = fp("X = SELECT(region: p_value > 0.5) ENCODE;");
        let b = fp("X = SELECT(region: p_value > 0.5) ENCODE;");
        assert_eq!(a, b);
        assert_eq!(a.to_hex().len(), 16);
    }

    #[test]
    fn source_datasets_deduplicates_in_order() {
        let plan = LogicalPlan::compile(
            &parse("U = UNION() ENCODE OTHER; V = UNION() U ENCODE; MATERIALIZE V;").unwrap(),
            &catalog,
        )
        .unwrap();
        assert_eq!(source_datasets(&plan), vec!["ENCODE".to_string(), "OTHER".to_string()]);
    }
}
