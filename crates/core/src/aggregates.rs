//! Aggregate functions.
//!
//! Aggregates appear in three GMQL positions: MAP (aggregate experiment
//! regions over each reference region — the paper's `peak_count AS COUNT`
//! example), EXTEND (region aggregates lifted into sample metadata), and
//! COVER/GROUP region-attribute aggregation.

use crate::error::GmqlError;
use nggc_gdm::{Schema, Value, ValueType};
use std::fmt;

/// The aggregate function set of GMQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of regions (takes no argument).
    Count,
    /// Sum of a numeric attribute.
    Sum,
    /// Arithmetic mean of a numeric attribute.
    Avg,
    /// Minimum (by total value order).
    Min,
    /// Maximum (by total value order).
    Max,
    /// Median (lower median for even counts).
    Median,
    /// First quartile (lower, by the nearest-rank method).
    Q1,
    /// Third quartile (lower, by the nearest-rank method).
    Q3,
    /// Population standard deviation.
    Std,
    /// Distinct values joined by `,` in first-seen order.
    Bag,
}

impl AggFunc {
    /// Parse a (case-insensitive) function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" | "MEAN" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "MEDIAN" | "Q2" => Some(AggFunc::Median),
            "Q1" => Some(AggFunc::Q1),
            "Q3" => Some(AggFunc::Q3),
            "STD" | "STDEV" => Some(AggFunc::Std),
            "BAG" => Some(AggFunc::Bag),
            _ => None,
        }
    }

    /// Canonical name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Median => "MEDIAN",
            AggFunc::Q1 => "Q1",
            AggFunc::Q3 => "Q3",
            AggFunc::Std => "STD",
            AggFunc::Bag => "BAG",
        }
    }

    /// True when the function requires an attribute argument.
    pub fn needs_attr(self) -> bool {
        !matches!(self, AggFunc::Count)
    }

    /// The result type given the input attribute type.
    pub fn result_type(self, input: Option<ValueType>) -> ValueType {
        match self {
            AggFunc::Count => ValueType::Int,
            AggFunc::Sum => input.unwrap_or(ValueType::Float),
            AggFunc::Avg | AggFunc::Std => ValueType::Float,
            AggFunc::Min | AggFunc::Max | AggFunc::Median | AggFunc::Q1 | AggFunc::Q3 => {
                input.unwrap_or(ValueType::Float)
            }
            AggFunc::Bag => ValueType::Str,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An aggregate call: function + optional attribute argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Aggregate {
    /// The function.
    pub func: AggFunc,
    /// The attribute the function ranges over (`None` for COUNT).
    pub attr: Option<String>,
}

impl Aggregate {
    /// `COUNT` aggregate.
    pub fn count() -> Aggregate {
        Aggregate { func: AggFunc::Count, attr: None }
    }

    /// Aggregate over an attribute.
    pub fn over(func: AggFunc, attr: impl Into<String>) -> Aggregate {
        Aggregate { func, attr: Some(attr.into()) }
    }

    /// Validate against a schema and return `(attribute position, result
    /// type)`; position is `None` for COUNT.
    pub fn resolve(&self, schema: &Schema) -> Result<(Option<usize>, ValueType), GmqlError> {
        match (&self.attr, self.func.needs_attr()) {
            (None, true) => {
                Err(GmqlError::semantic(format!("{} requires an attribute", self.func)))
            }
            (Some(a), false) => {
                Err(GmqlError::semantic(format!("{} takes no attribute, got {a:?}", self.func)))
            }
            (None, false) => Ok((None, ValueType::Int)),
            (Some(a), true) => {
                let pos = schema
                    .position(a)
                    .ok_or_else(|| GmqlError::semantic(format!("unknown attribute {a:?}")))?;
                let ty = schema.attributes()[pos].ty;
                if !matches!(
                    self.func,
                    AggFunc::Bag
                        | AggFunc::Min
                        | AggFunc::Max
                        | AggFunc::Median
                        | AggFunc::Q1
                        | AggFunc::Q3
                ) && !ty.is_numeric()
                {
                    return Err(GmqlError::semantic(format!(
                        "{} requires a numeric attribute, {a:?} is {ty}",
                        self.func
                    )));
                }
                Ok((Some(pos), self.func.result_type(Some(ty))))
            }
        }
    }

    /// Compute the aggregate over the values of the resolved attribute
    /// (one entry per region; nulls are skipped, matching SQL semantics).
    /// `n_regions` is the group size, used by COUNT.
    pub fn compute(&self, values: &[&Value], n_regions: usize) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(n_regions as i64),
            AggFunc::Sum => {
                let nums: Vec<f64> = numeric(values);
                if nums.is_empty() {
                    Value::Null
                } else {
                    let s: f64 = nums.iter().sum();
                    render_numeric(s, values)
                }
            }
            AggFunc::Avg => {
                let nums: Vec<f64> = numeric(values);
                if nums.is_empty() {
                    Value::Null
                } else {
                    Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
                }
            }
            AggFunc::Std => {
                let nums: Vec<f64> = numeric(values);
                if nums.is_empty() {
                    Value::Null
                } else {
                    let mean = nums.iter().sum::<f64>() / nums.len() as f64;
                    let var = nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                        / nums.len() as f64;
                    Value::Float(var.sqrt())
                }
            }
            AggFunc::Min => order_pick(values, false),
            AggFunc::Max => order_pick(values, true),
            AggFunc::Median | AggFunc::Q1 | AggFunc::Q3 => {
                let mut non_null: Vec<&Value> =
                    values.iter().copied().filter(|v| !v.is_null()).collect();
                if non_null.is_empty() {
                    return Value::Null;
                }
                non_null.sort_by(|a, b| a.total_cmp(b));
                // Nearest-rank (lower) quantiles: q in {0.25, 0.5, 0.75}.
                let q = match self.func {
                    AggFunc::Q1 => 0.25,
                    AggFunc::Q3 => 0.75,
                    _ => 0.5,
                };
                let idx = ((non_null.len() as f64 - 1.0) * q).floor() as usize;
                non_null[idx].clone()
            }
            AggFunc::Bag => {
                let mut seen: Vec<String> = Vec::new();
                for v in values {
                    if v.is_null() {
                        continue;
                    }
                    let s = v.render();
                    if !seen.contains(&s) {
                        seen.push(s);
                    }
                }
                if seen.is_empty() {
                    Value::Null
                } else {
                    Value::Str(seen.join(","))
                }
            }
        }
    }
}

fn numeric(values: &[&Value]) -> Vec<f64> {
    values.iter().filter_map(|v| v.as_f64()).filter(|f| !f.is_nan()).collect()
}

/// SUM keeps integer typing when all inputs are integers.
fn render_numeric(sum: f64, values: &[&Value]) -> Value {
    if values.iter().all(|v| matches!(v, Value::Int(_) | Value::Null)) {
        Value::Int(sum as i64)
    } else {
        Value::Float(sum)
    }
}

fn order_pick(values: &[&Value], max: bool) -> Value {
    let non_null = values.iter().copied().filter(|v| !v.is_null());
    let picked = if max {
        non_null.max_by(|a, b| a.total_cmp(b))
    } else {
        non_null.min_by(|a, b| a.total_cmp(b))
    };
    picked.cloned().unwrap_or(Value::Null)
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.attr {
            Some(a) => write!(f, "{}({a})", self.func),
            None => write!(f, "{}", self.func),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::Attribute;

    fn vals(xs: &[Value]) -> Vec<&Value> {
        xs.iter().collect()
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("MEAN"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("nope"), None);
    }

    #[test]
    fn count_uses_group_size() {
        let agg = Aggregate::count();
        assert_eq!(agg.compute(&[], 7), Value::Int(7));
    }

    #[test]
    fn sum_integer_stays_integer() {
        let xs = [Value::Int(1), Value::Int(2), Value::Null];
        assert_eq!(Aggregate::over(AggFunc::Sum, "x").compute(&vals(&xs), 3), Value::Int(3));
        let ys = [Value::Int(1), Value::Float(0.5)];
        assert_eq!(Aggregate::over(AggFunc::Sum, "x").compute(&vals(&ys), 2), Value::Float(1.5));
    }

    #[test]
    fn avg_and_std() {
        let xs = [Value::Float(2.0), Value::Float(4.0)];
        assert_eq!(Aggregate::over(AggFunc::Avg, "x").compute(&vals(&xs), 2), Value::Float(3.0));
        assert_eq!(Aggregate::over(AggFunc::Std, "x").compute(&vals(&xs), 2), Value::Float(1.0));
    }

    #[test]
    fn empty_numeric_aggregates_are_null() {
        for f in [AggFunc::Sum, AggFunc::Avg, AggFunc::Std, AggFunc::Min, AggFunc::Median] {
            assert_eq!(Aggregate::over(f, "x").compute(&[], 0), Value::Null, "{f}");
        }
    }

    #[test]
    fn median_lower_for_even() {
        let xs = [Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)];
        assert_eq!(Aggregate::over(AggFunc::Median, "x").compute(&vals(&xs), 4), Value::Int(2));
    }

    #[test]
    fn quartiles_nearest_rank() {
        let xs: Vec<Value> = (1..=8).map(Value::Int).collect();
        let v = vals(&xs);
        assert_eq!(Aggregate::over(AggFunc::Q1, "x").compute(&v, 8), Value::Int(2));
        assert_eq!(Aggregate::over(AggFunc::Median, "x").compute(&v, 8), Value::Int(4));
        assert_eq!(Aggregate::over(AggFunc::Q3, "x").compute(&v, 8), Value::Int(6));
        assert_eq!(Aggregate::over(AggFunc::Q1, "x").compute(&[], 0), Value::Null);
        assert_eq!(AggFunc::parse("q2"), Some(AggFunc::Median));
    }

    #[test]
    fn minmax_skip_nulls() {
        let xs = [Value::Null, Value::Int(5), Value::Int(2)];
        assert_eq!(Aggregate::over(AggFunc::Min, "x").compute(&vals(&xs), 3), Value::Int(2));
        assert_eq!(Aggregate::over(AggFunc::Max, "x").compute(&vals(&xs), 3), Value::Int(5));
    }

    #[test]
    fn bag_distinct_in_order() {
        let xs = [Value::Str("b".into()), Value::Str("a".into()), Value::Str("b".into())];
        assert_eq!(
            Aggregate::over(AggFunc::Bag, "x").compute(&vals(&xs), 3),
            Value::Str("b,a".into())
        );
    }

    #[test]
    fn resolve_validates() {
        let schema = Schema::new(vec![
            Attribute::new("score", ValueType::Float),
            Attribute::new("name", ValueType::Str),
        ])
        .unwrap();
        let (pos, ty) = Aggregate::over(AggFunc::Sum, "score").resolve(&schema).unwrap();
        assert_eq!((pos, ty), (Some(0), ValueType::Float));
        assert!(Aggregate::over(AggFunc::Sum, "name").resolve(&schema).is_err(), "SUM of string");
        assert!(Aggregate::over(AggFunc::Bag, "name").resolve(&schema).is_ok());
        assert!(Aggregate::over(AggFunc::Sum, "zzz").resolve(&schema).is_err());
        assert!(Aggregate { func: AggFunc::Sum, attr: None }.resolve(&schema).is_err());
        assert!(Aggregate { func: AggFunc::Count, attr: Some("x".into()) }
            .resolve(&schema)
            .is_err());
        assert_eq!(Aggregate::count().resolve(&schema).unwrap(), (None, ValueType::Int));
    }
}
