//! Scan pruning: derive per-source [`ScanSpec`]s from a logical plan.
//!
//! Queries frequently touch a sliver of each source dataset — one
//! chromosome out of 24, two value columns out of seven — yet a plain
//! load decodes every byte. The v2 container indexes blocks by
//! chromosome and stores columns separately, so whatever the plan
//! *provably* does not need can be skipped where the data lives
//! (predicate/projection pushdown). This module is the "provably" part:
//! a static analysis over the [`LogicalPlan`] that computes, per
//! `Source` node,
//!
//! - the set of chromosomes the rest of the plan can observe
//!   (from `SELECT` region predicates and JOIN/MAP partner extents),
//! - the set of value columns any operator reads, and
//! - an optional coordinate range (render-only, for EXPLAIN).
//!
//! ## Soundness
//!
//! The analysis is conservative in both directions:
//!
//! - **Chromosomes.** A forward pass computes `guarantee[n]` — the
//!   chromosomes node `n`'s output regions can lie on (`None` =
//!   unbounded) — and a backward pass computes `need[n]` — the
//!   chromosomes whose regions downstream can observe. Operators whose
//!   *sample set* or *metadata* depends on region content on other
//!   chromosomes reset the need to "all": `EXTEND` (aggregates over
//!   every region), `ORDER` with a region top-k, `COVER` (sample
//!   emission depends on accumulation), and the backward direction of
//!   `JOIN` (a pair with zero matches emits no sample, so partner
//!   *guarantees* are used instead of downstream needs).
//! - **Columns.** A column must be loaded iff some operator reads its
//!   *values* — predicates, projection expressions, aggregate inputs,
//!   region sort keys. Pruned columns still occupy their schema
//!   position (typed nulls), so column pruning never changes region
//!   existence or coordinates, only the values of columns nothing
//!   reads.
//!
//! Anything the analysis cannot bound stays `None` ("load
//! everything"), so an unknown operator shape degrades to today's full
//! scan, never to a wrong answer.

use crate::ast::Operator;
use crate::plan::{LogicalPlan, NodeId, PlanOp};
use crate::predicates::{BinOp, CmpOp, RegionExpr};
use nggc_gdm::Value;
use std::collections::{BTreeSet, HashMap};

/// Version of the scan-spec derivation, mixed into plan fingerprints so
/// cached results can never alias across pruning-semantics changes.
pub const SCAN_SPEC_VERSION: u32 = 1;

/// What a source scan provably needs. `None` means "everything" on
/// either axis; the coordinate range is advisory (EXPLAIN rendering),
/// never used to drop blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanSpec {
    /// Chromosomes downstream can observe; `None` = all.
    pub chroms: Option<BTreeSet<String>>,
    /// Value columns (lowercased) some operator reads; `None` = all.
    pub columns: Option<BTreeSet<String>>,
    /// Lower coordinate bound from `left >=`-style predicates.
    pub lo: Option<u64>,
    /// Upper coordinate bound from `right <=`-style predicates.
    pub hi: Option<u64>,
}

impl ScanSpec {
    /// True when the spec restricts nothing — a pruned load with a
    /// trivial spec is exactly a full load.
    pub fn is_trivial(&self) -> bool {
        self.chroms.is_none() && self.columns.is_none()
    }

    /// Human-readable form for EXPLAIN: `chr21 [5000000..] cols 2/7`.
    /// `total_cols` is the source schema width when known.
    pub fn render(&self, total_cols: Option<usize>) -> String {
        let mut parts = Vec::new();
        match &self.chroms {
            None => parts.push("*".to_string()),
            Some(set) if set.is_empty() => parts.push("(none)".to_string()),
            Some(set) => parts.push(set.iter().cloned().collect::<Vec<_>>().join(",")),
        }
        if self.lo.is_some() || self.hi.is_some() {
            let lo = self.lo.map(|v| v.to_string()).unwrap_or_default();
            let hi = self.hi.map(|v| v.to_string()).unwrap_or_default();
            parts.push(format!("[{lo}..{hi}]"));
        }
        if let Some(cols) = &self.columns {
            match total_cols {
                Some(t) => parts.push(format!("cols {}/{t}", cols.len().min(t))),
                None => parts.push(format!("cols {}", cols.len())),
            }
        }
        parts.join(" ")
    }
}

// ---------------------------------------------------------------------------
// Region-expression analysis
// ---------------------------------------------------------------------------

/// Coordinate pseudo-attributes resolved positionally, never from value
/// columns (mirrors `predicates::RegionExpr` fixed-attribute handling).
fn is_fixed_attr(lower: &str) -> bool {
    matches!(lower, "chr" | "left" | "right" | "strand" | "len")
}

/// Collect the value columns a region expression reads (lowercased).
fn expr_value_attrs(expr: &RegionExpr, out: &mut BTreeSet<String>) {
    match expr {
        RegionExpr::Attr(name) => {
            let lower = name.to_ascii_lowercase();
            if !is_fixed_attr(&lower) {
                out.insert(lower);
            }
        }
        RegionExpr::Lit(_) => {}
        RegionExpr::Binary(a, _, b) => {
            expr_value_attrs(a, out);
            expr_value_attrs(b, out);
        }
        RegionExpr::Not(inner) => expr_value_attrs(inner, out),
    }
}

fn chrom_eq(attr: &RegionExpr, lit: &RegionExpr) -> Option<String> {
    match (attr, lit) {
        (RegionExpr::Attr(name), RegionExpr::Lit(Value::Str(s)))
            if name.eq_ignore_ascii_case("chr") =>
        {
            Some(s.clone())
        }
        _ => None,
    }
}

/// The chromosomes a region predicate can match, or `None` when it
/// cannot be bounded. `AND` intersects bounds (an unbounded conjunct
/// imposes none), `OR` unions them (either side unbounded → unbounded),
/// `NOT` and every other shape are unbounded.
fn chrom_literals(expr: &RegionExpr) -> Option<BTreeSet<String>> {
    match expr {
        RegionExpr::Binary(a, BinOp::And, b) => match (chrom_literals(a), chrom_literals(b)) {
            (Some(x), Some(y)) => Some(x.intersection(&y).cloned().collect()),
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        },
        RegionExpr::Binary(a, BinOp::Or, b) => match (chrom_literals(a), chrom_literals(b)) {
            (Some(mut x), Some(y)) => {
                x.extend(y);
                Some(x)
            }
            _ => None,
        },
        RegionExpr::Binary(a, BinOp::Cmp(CmpOp::Eq), b) => {
            chrom_eq(a, b).or_else(|| chrom_eq(b, a)).map(|s| std::iter::once(s).collect())
        }
        _ => None,
    }
}

fn lit_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        Value::Float(f) if *f >= 0.0 && f.is_finite() => Some(*f as u64),
        _ => None,
    }
}

/// Advisory coordinate bounds from `left >/>=` and `right </<=`
/// comparisons in top-level conjunctions (render-only).
fn coord_range(expr: &RegionExpr) -> (Option<u64>, Option<u64>) {
    match expr {
        RegionExpr::Binary(a, BinOp::And, b) => {
            let (lo1, hi1) = coord_range(a);
            let (lo2, hi2) = coord_range(b);
            (max_opt(lo1, lo2), min_opt(hi1, hi2))
        }
        RegionExpr::Binary(a, BinOp::Cmp(op), b) => {
            if let (RegionExpr::Attr(name), RegionExpr::Lit(v)) = (&**a, &**b) {
                if let Some(x) = lit_u64(v) {
                    return match (name.to_ascii_lowercase().as_str(), op) {
                        ("left", CmpOp::Gt | CmpOp::Ge) => (Some(x), None),
                        ("right", CmpOp::Lt | CmpOp::Le) => (None, Some(x)),
                        _ => (None, None),
                    };
                }
            }
            (None, None)
        }
        _ => (None, None),
    }
}

fn max_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) | (None, x) => x,
    }
}

fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) | (None, x) => x,
    }
}

// ---------------------------------------------------------------------------
// Chromosome-set lattice helpers (`None` = unbounded/all)
// ---------------------------------------------------------------------------

fn intersect_opt(
    a: Option<BTreeSet<String>>,
    b: Option<BTreeSet<String>>,
) -> Option<BTreeSet<String>> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.intersection(&y).cloned().collect()),
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

fn union_opt(a: Option<BTreeSet<String>>, b: Option<BTreeSet<String>>) -> Option<BTreeSet<String>> {
    match (a, b) {
        (Some(mut x), Some(y)) => {
            x.extend(y);
            Some(x)
        }
        _ => None,
    }
}

fn agg_attrs(aggs: &[(String, crate::aggregates::Aggregate)]) -> BTreeSet<String> {
    aggs.iter().filter_map(|(_, a)| a.attr.as_ref().map(|s| s.to_ascii_lowercase())).collect()
}

// ---------------------------------------------------------------------------
// Derivation
// ---------------------------------------------------------------------------

/// What one consumer demands of one of its inputs.
#[derive(Clone, Default)]
struct Demand {
    chroms: Option<BTreeSet<String>>,
    cols: Option<BTreeSet<String>>,
    lo: Option<u64>,
    hi: Option<u64>,
}

impl Demand {
    /// Demand everything (the safe top of the lattice).
    fn all() -> Demand {
        Demand::default()
    }
}

/// Accumulated demand on a node across all of its consumers.
#[derive(Clone)]
struct NeedAcc {
    /// False until some consumer (or an output) contributes; an
    /// untouched node is dead and gets no pruning either way.
    seen: bool,
    need: Demand,
}

impl NeedAcc {
    fn widen(&mut self, d: Demand) {
        if !self.seen {
            self.seen = true;
            self.need = d;
            return;
        }
        let n = &mut self.need;
        n.chroms = union_opt(std::mem::take(&mut n.chroms), d.chroms);
        n.cols = union_opt(std::mem::take(&mut n.cols), d.cols);
        // Range union: keep a bound only when every consumer has one.
        n.lo = match (n.lo, d.lo) {
            (Some(a), Some(b)) => Some(a.min(b)),
            _ => None,
        };
        n.hi = match (n.hi, d.hi) {
            (Some(a), Some(b)) => Some(a.max(b)),
            _ => None,
        };
    }
}

/// Derive a [`ScanSpec`] for every `Source` node of `plan`. Runs on the
/// plan exactly as it will execute (optimized or not); sources nothing
/// reaches get a trivial spec.
pub fn derive_scan_specs(plan: &LogicalPlan) -> HashMap<NodeId, ScanSpec> {
    let n = plan.nodes.len();

    // Forward pass: guarantee[i] = chromosomes node i's output regions
    // can lie on (None = unbounded).
    let mut guarantee: Vec<Option<BTreeSet<String>>> = Vec::with_capacity(n);
    for node in &plan.nodes {
        let gi = match &node.op {
            PlanOp::Source(_) => None,
            PlanOp::Apply(op) => {
                let gin = |k: usize| guarantee[node.inputs[k]].clone();
                match op {
                    Operator::Select { region, .. } => {
                        intersect_opt(gin(0), region.as_ref().and_then(chrom_literals))
                    }
                    // Region-preserving unary operators: output regions
                    // lie on input chromosomes.
                    Operator::Project { .. }
                    | Operator::Extend { .. }
                    | Operator::Merge { .. }
                    | Operator::Group { .. }
                    | Operator::Order { .. }
                    | Operator::Cover { .. } => gin(0),
                    Operator::Union => union_opt(gin(0), gin(1)),
                    Operator::Difference { .. } => gin(0),
                    // JOIN matches regions on the same chromosome only.
                    Operator::Join { .. } => intersect_opt(gin(0), gin(1)),
                    Operator::Map { .. } => gin(0),
                }
            }
        };
        guarantee.push(gi);
    }

    // Backward pass: accumulate demand from outputs down to sources.
    let mut acc: Vec<NeedAcc> = vec![NeedAcc { seen: false, need: Demand::all() }; n];
    for (_, id) in &plan.outputs {
        acc[*id].widen(Demand::all());
    }
    for i in (0..n).rev() {
        if !acc[i].seen {
            continue;
        }
        let need = acc[i].need.clone();
        let node = &plan.nodes[i];
        let demands: Vec<Demand> = match &node.op {
            PlanOp::Source(_) => continue,
            PlanOp::Apply(op) => match op {
                Operator::Select { region, .. } => {
                    let mut pred_cols = BTreeSet::new();
                    let (mut chroms, mut lo, mut hi) = (None, None, None);
                    if let Some(expr) = region {
                        expr_value_attrs(expr, &mut pred_cols);
                        chroms = chrom_literals(expr);
                        (lo, hi) = coord_range(expr);
                    }
                    let d0 = Demand {
                        chroms: intersect_opt(need.chroms.clone(), chroms),
                        cols: need.cols.clone().map(|mut c| {
                            c.extend(pred_cols.clone());
                            c
                        }),
                        lo: max_opt(need.lo, lo),
                        hi: min_opt(need.hi, hi),
                    };
                    // A semijoin partner (second input) only has its
                    // metadata inspected, but stay conservative.
                    let mut v = vec![d0];
                    v.extend(node.inputs.iter().skip(1).map(|_| Demand::all()));
                    v
                }
                Operator::Project { attrs, new_attrs, .. } => {
                    let mut expr_cols = BTreeSet::new();
                    for (_, e) in new_attrs {
                        expr_value_attrs(e, &mut expr_cols);
                    }
                    let cols = match (need.cols.clone(), attrs) {
                        (None, None) => None,
                        (None, Some(kept)) => {
                            let mut c: BTreeSet<String> =
                                kept.iter().map(|s| s.to_ascii_lowercase()).collect();
                            c.extend(expr_cols);
                            Some(c)
                        }
                        (Some(nc), None) => {
                            let mut c = nc;
                            c.extend(expr_cols);
                            Some(c)
                        }
                        (Some(nc), Some(kept)) => {
                            let keptl: BTreeSet<String> =
                                kept.iter().map(|s| s.to_ascii_lowercase()).collect();
                            let mut c: BTreeSet<String> =
                                nc.intersection(&keptl).cloned().collect();
                            c.extend(expr_cols);
                            Some(c)
                        }
                    };
                    vec![Demand { chroms: need.chroms.clone(), cols, lo: need.lo, hi: need.hi }]
                }
                Operator::Extend { assignments } => {
                    // Metadata aggregates run over *every* region of the
                    // sample: pruning any chromosome would change them.
                    vec![Demand {
                        chroms: None,
                        cols: need.cols.clone().map(|mut c| {
                            c.extend(agg_attrs(assignments));
                            c
                        }),
                        lo: None,
                        hi: None,
                    }]
                }
                Operator::Merge { .. } => vec![need.clone()],
                Operator::Group { region_aggs, .. } => vec![Demand {
                    chroms: need.chroms.clone(),
                    cols: need.cols.clone().map(|mut c| {
                        c.extend(agg_attrs(region_aggs));
                        c
                    }),
                    lo: need.lo,
                    hi: need.hi,
                }],
                Operator::Order { region_keys, region_top, .. } => {
                    // A region top-k ranks regions across the whole
                    // sample, so every chromosome participates.
                    let bounded = region_top.is_none();
                    vec![Demand {
                        chroms: if bounded { need.chroms.clone() } else { None },
                        cols: need.cols.clone().map(|mut c| {
                            c.extend(region_keys.iter().map(|(name, _)| name.to_ascii_lowercase()));
                            c
                        }),
                        lo: if bounded { need.lo } else { None },
                        hi: if bounded { need.hi } else { None },
                    }]
                }
                Operator::Union => vec![need.clone(), need.clone()],
                Operator::Difference { .. } => {
                    // The right side contributes coordinates only, and
                    // only on chromosomes the (needed part of the) left
                    // side can populate.
                    let right_chroms =
                        intersect_opt(need.chroms.clone(), guarantee[node.inputs[0]].clone());
                    vec![
                        need.clone(),
                        Demand {
                            chroms: right_chroms,
                            cols: Some(BTreeSet::new()),
                            lo: None,
                            hi: None,
                        },
                    ]
                }
                Operator::Join { .. } => {
                    // Backward need is unsound through JOIN (a pair with
                    // zero matching regions emits no sample), so each
                    // side is bounded by its *partner's guarantee*
                    // instead: matches require both sides on the same
                    // chromosome.
                    let strip = |prefix: &str| -> Option<BTreeSet<String>> {
                        need.cols.as_ref().map(|cols| {
                            cols.iter()
                                .filter_map(|c| c.strip_prefix(prefix))
                                .map(str::to_string)
                                .collect()
                        })
                    };
                    vec![
                        Demand {
                            chroms: guarantee[node.inputs[1]].clone(),
                            cols: strip("left."),
                            lo: None,
                            hi: None,
                        },
                        Demand {
                            chroms: guarantee[node.inputs[0]].clone(),
                            cols: strip("right."),
                            lo: None,
                            hi: None,
                        },
                    ]
                }
                Operator::Map { aggs, .. } => {
                    // Experiment regions only matter where they can
                    // intersect needed reference regions; aggregates
                    // resolve against the experiment schema.
                    let exp_chroms =
                        intersect_opt(need.chroms.clone(), guarantee[node.inputs[0]].clone());
                    vec![
                        need.clone(),
                        Demand {
                            chroms: exp_chroms,
                            cols: Some(agg_attrs(aggs)),
                            lo: None,
                            hi: None,
                        },
                    ]
                }
                Operator::Cover { aggs, .. } => {
                    // COVER's sample emission depends on accumulation
                    // across all regions — no chromosome pruning.
                    vec![Demand { chroms: None, cols: Some(agg_attrs(aggs)), lo: None, hi: None }]
                }
            },
        };
        for (k, d) in node.inputs.iter().zip(demands) {
            acc[*k].widen(d);
        }
    }

    let mut specs = HashMap::new();
    for (i, node) in plan.nodes.iter().enumerate() {
        if let PlanOp::Source(_) = node.op {
            let spec = if acc[i].seen {
                let d = &acc[i].need;
                ScanSpec { chroms: d.chroms.clone(), columns: d.cols.clone(), lo: d.lo, hi: d.hi }
            } else {
                ScanSpec::default()
            };
            specs.insert(i, spec);
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nggc_gdm::{Attribute, Schema, ValueType};

    fn catalog(name: &str) -> Option<Schema> {
        match name {
            "D" | "E" => Some(
                Schema::new(vec![
                    Attribute::new("score", ValueType::Float),
                    Attribute::new("p_value", ValueType::Float),
                    Attribute::new("peak", ValueType::Int),
                ])
                .unwrap(),
            ),
            _ => None,
        }
    }

    fn specs_for(q: &str) -> HashMap<NodeId, ScanSpec> {
        let plan = LogicalPlan::compile(&parse(q).unwrap(), &catalog).unwrap();
        let (opt, _) = crate::optimizer::optimize(&plan);
        derive_scan_specs(&opt)
    }

    fn only_spec(specs: &HashMap<NodeId, ScanSpec>) -> &ScanSpec {
        assert_eq!(specs.len(), 1);
        specs.values().next().unwrap()
    }

    #[test]
    fn chr_equality_prunes_chromosomes() {
        let specs =
            specs_for("A = SELECT(region: chr == 'chr21' AND left > 5000000) D; MATERIALIZE A;");
        let spec = only_spec(&specs);
        assert_eq!(
            spec.chroms,
            Some(std::iter::once("chr21".to_string()).collect::<BTreeSet<_>>())
        );
        assert_eq!(spec.lo, Some(5000000));
        assert_eq!(spec.columns, None, "materialized output needs every column");
        assert_eq!(spec.render(Some(3)), "chr21 [5000000..]");
    }

    #[test]
    fn or_of_chr_literals_unions() {
        let specs =
            specs_for("A = SELECT(region: chr == 'chr1' OR chr == 'chr2') D; MATERIALIZE A;");
        let chroms = only_spec(&specs).chroms.clone().unwrap();
        assert_eq!(chroms.len(), 2);
        assert!(chroms.contains("chr1") && chroms.contains("chr2"));
    }

    #[test]
    fn or_with_unbounded_side_disables_pruning() {
        let specs = specs_for("A = SELECT(region: chr == 'chr1' OR score > 2) D; MATERIALIZE A;");
        assert_eq!(only_spec(&specs).chroms, None);
    }

    #[test]
    fn negated_predicate_is_unbounded() {
        let specs = specs_for("A = SELECT(region: NOT (chr == 'chr1')) D; MATERIALIZE A;");
        assert_eq!(only_spec(&specs).chroms, None);
    }

    #[test]
    fn map_prunes_experiment_columns_to_aggregate_inputs() {
        let specs = specs_for(
            "R = SELECT(region: chr == 'chrX') D;
             M = MAP(avg AS AVG(p_value)) R E;
             MATERIALIZE M;",
        );
        let plan = LogicalPlan::compile(
            &parse(
                "R = SELECT(region: chr == 'chrX') D;
                 M = MAP(avg AS AVG(p_value)) R E;
                 MATERIALIZE M;",
            )
            .unwrap(),
            &catalog,
        )
        .unwrap();
        let (opt, _) = crate::optimizer::optimize(&plan);
        assert_eq!(specs.len(), 2);
        // Find the experiment source (E): its columns collapse to the
        // aggregate input, and its chromosomes to the reference's.
        let exp_id = opt
            .nodes
            .iter()
            .position(|n| matches!(&n.op, PlanOp::Source(name) if name == "E"))
            .unwrap();
        let exp = &specs[&exp_id];
        assert_eq!(
            exp.columns,
            Some(std::iter::once("p_value".to_string()).collect::<BTreeSet<_>>())
        );
        assert_eq!(exp.chroms, Some(std::iter::once("chrX".to_string()).collect::<BTreeSet<_>>()));
        // The reference side keeps all columns (they flow to the output).
        let ref_id = opt
            .nodes
            .iter()
            .position(|n| matches!(&n.op, PlanOp::Source(name) if name == "D"))
            .unwrap();
        assert_eq!(specs[&ref_id].columns, None);
    }

    #[test]
    fn join_bounds_each_side_by_partner_guarantee() {
        let specs = specs_for(
            "A = SELECT(region: chr == 'chr1') D;
             B = SELECT(region: chr == 'chr2') E;
             J = JOIN(DLE(1000)) A B;
             MATERIALIZE J;",
        );
        // Each source is already select-bounded to its own chromosome;
        // the JOIN additionally bounds it by the partner's — so both
        // collapse to the intersection with the partner's set.
        for spec in specs.values() {
            let chroms = spec.chroms.clone().expect("both sides bounded");
            assert!(chroms.len() <= 1, "partner guarantee intersected: {chroms:?}");
        }
    }

    #[test]
    fn extend_disables_chromosome_pruning() {
        // The narrow chr1 demand originates *above* the EXTEND; the
        // EXTEND's COUNT must still see every region, so the source
        // cannot be pruned.
        let specs = specs_for(
            "B = EXTEND(n AS COUNT) D;
             C = SELECT(region: chr == 'chr1') B;
             MATERIALIZE C;",
        );
        assert_eq!(only_spec(&specs).chroms, None, "EXTEND aggregates over all regions");
    }

    #[test]
    fn project_restricts_columns() {
        let specs = specs_for("A = PROJECT(score) D; MATERIALIZE A;");
        let cols = only_spec(&specs).columns.clone().unwrap();
        assert_eq!(cols, std::iter::once("score".to_string()).collect::<BTreeSet<_>>());
    }

    #[test]
    fn select_predicate_columns_are_loaded() {
        let specs = specs_for(
            "A = SELECT(region: p_value < 0.01) D;
             B = PROJECT(score) A;
             MATERIALIZE B;",
        );
        let cols = only_spec(&specs).columns.clone().unwrap();
        assert!(cols.contains("score") && cols.contains("p_value"), "{cols:?}");
        assert!(!cols.contains("peak"));
    }

    #[test]
    fn trivial_spec_renders_wildcard() {
        let specs = specs_for("A = SELECT(x == 1) D; MATERIALIZE A;");
        let spec = only_spec(&specs);
        assert!(spec.is_trivial());
        assert_eq!(spec.render(None), "*");
    }

    #[test]
    fn shared_source_unions_consumer_demands() {
        // One consumer needs chr1 only, the other everything: the
        // shared source must load everything.
        let specs = specs_for(
            "A = SELECT(region: chr == 'chr1') D;
             U = UNION() A D;
             MATERIALIZE U;",
        );
        assert_eq!(only_spec(&specs).chroms, None);
    }
}
