//! Error type of the GMQL crate.

use nggc_gdm::GdmError;
use std::fmt;

/// Errors raised while parsing, planning, or executing GMQL queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GmqlError {
    /// Lexical or syntactic error in the query text.
    Syntax {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// Explanation.
        message: String,
    },
    /// A semantic error: unknown variable, unknown attribute, type error.
    Semantic(String),
    /// A runtime failure while evaluating an operator.
    Runtime(String),
    /// An underlying data-model violation.
    Model(GdmError),
}

impl GmqlError {
    /// Construct a [`GmqlError::Syntax`].
    pub fn syntax(line: usize, column: usize, message: impl Into<String>) -> GmqlError {
        GmqlError::Syntax { line, column, message: message.into() }
    }

    /// Construct a [`GmqlError::Semantic`].
    pub fn semantic(message: impl Into<String>) -> GmqlError {
        GmqlError::Semantic(message.into())
    }

    /// Construct a [`GmqlError::Runtime`].
    pub fn runtime(message: impl Into<String>) -> GmqlError {
        GmqlError::Runtime(message.into())
    }
}

impl fmt::Display for GmqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmqlError::Syntax { line, column, message } => {
                write!(f, "syntax error at {line}:{column}: {message}")
            }
            GmqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            GmqlError::Runtime(m) => write!(f, "runtime error: {m}"),
            GmqlError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for GmqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GmqlError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GdmError> for GmqlError {
    fn from(e: GdmError) -> Self {
        GmqlError::Model(e)
    }
}
