//! Error type of the GMQL crate.

use nggc_gdm::GdmError;
use std::fmt;

/// Errors raised while parsing, planning, or executing GMQL queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GmqlError {
    /// Lexical or syntactic error in the query text.
    Syntax {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        column: usize,
        /// Explanation.
        message: String,
    },
    /// A semantic error: unknown variable, unknown attribute, type error.
    Semantic(String),
    /// A runtime failure while evaluating an operator.
    Runtime(String),
    /// An underlying data-model violation.
    Model(GdmError),
    /// The query was cancelled cooperatively (Ctrl-C, cancel token).
    /// Reports partial progress: where execution stopped and what it had
    /// consumed by then.
    Cancelled {
        /// Label of the plan node that was executing (or about to).
        node: String,
        /// Wall time elapsed when the cancellation took effect.
        elapsed_ms: u64,
        /// Peak governed memory charged, in bytes.
        mem_peak: u64,
    },
    /// The query's wall-clock deadline elapsed mid-execution.
    DeadlineExceeded {
        /// Label of the plan node that was executing (or about to).
        node: String,
        /// Wall time elapsed when the deadline was observed.
        elapsed_ms: u64,
        /// The configured deadline.
        limit_ms: u64,
        /// Peak governed memory charged, in bytes.
        mem_peak: u64,
    },
    /// Materialising an intermediate would exceed the memory budget.
    MemoryExhausted {
        /// Label of the plan node whose output was rejected.
        node: String,
        /// Bytes the rejected materialisation asked for.
        requested: u64,
        /// The configured budget in bytes.
        budget: u64,
        /// Bytes already charged when the request was rejected.
        charged: u64,
    },
}

impl GmqlError {
    /// Construct a [`GmqlError::Syntax`].
    pub fn syntax(line: usize, column: usize, message: impl Into<String>) -> GmqlError {
        GmqlError::Syntax { line, column, message: message.into() }
    }

    /// Construct a [`GmqlError::Semantic`].
    pub fn semantic(message: impl Into<String>) -> GmqlError {
        GmqlError::Semantic(message.into())
    }

    /// Construct a [`GmqlError::Runtime`].
    pub fn runtime(message: impl Into<String>) -> GmqlError {
        GmqlError::Runtime(message.into())
    }

    /// Is this one of the resource-governor errors
    /// ([`Cancelled`](GmqlError::Cancelled),
    /// [`DeadlineExceeded`](GmqlError::DeadlineExceeded),
    /// [`MemoryExhausted`](GmqlError::MemoryExhausted))?
    pub fn is_resource_limit(&self) -> bool {
        matches!(
            self,
            GmqlError::Cancelled { .. }
                | GmqlError::DeadlineExceeded { .. }
                | GmqlError::MemoryExhausted { .. }
        )
    }
}

impl fmt::Display for GmqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmqlError::Syntax { line, column, message } => {
                write!(f, "syntax error at {line}:{column}: {message}")
            }
            GmqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            GmqlError::Runtime(m) => write!(f, "runtime error: {m}"),
            GmqlError::Model(e) => write!(f, "model error: {e}"),
            GmqlError::Cancelled { node, elapsed_ms, mem_peak } => write!(
                f,
                "query cancelled at node {node:?} after {elapsed_ms} ms \
                 (peak governed memory {mem_peak} B)"
            ),
            GmqlError::DeadlineExceeded { node, elapsed_ms, limit_ms, mem_peak } => write!(
                f,
                "query deadline of {limit_ms} ms exceeded at node {node:?} \
                 ({elapsed_ms} ms elapsed, peak governed memory {mem_peak} B)"
            ),
            GmqlError::MemoryExhausted { node, requested, budget, charged } => write!(
                f,
                "memory budget of {budget} B exhausted at node {node:?}: \
                 requested {requested} B with {charged} B already charged"
            ),
        }
    }
}

impl std::error::Error for GmqlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GmqlError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GdmError> for GmqlError {
    fn from(e: GdmError) -> Self {
        GmqlError::Model(e)
    }
}
