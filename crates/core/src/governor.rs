//! The query resource governor: cooperative cancellation, wall-clock
//! deadlines, and memory budgets for local execution.
//!
//! The paper's cloud targets (§4.2) inherit per-job resource isolation
//! from Spark/Flink; a single-process engine must build its own. A
//! [`QueryGovernor`] wraps an [`InterruptState`] (the error-agnostic
//! primitive in `nggc-engine`) and translates trips into typed
//! [`GmqlError`] variants that carry **partial progress**: which plan
//! node execution stopped at, how long it ran, and how much governed
//! memory it had charged.
//!
//! Enforcement is **cooperative**: the executor checks the governor at
//! every plan-node boundary, operator kernels poll it every
//! [`CHECKPOINT_STRIDE`](nggc_engine::CHECKPOINT_STRIDE) inner-loop
//! iterations, and the per-chromosome fan-out skips queued kernels once
//! it has tripped. Memory is accounted in *encoded bytes* (the
//! `encoded_size()` model of `nggc-gdm`): every materialised
//! intermediate is charged when produced and released when its last
//! consumer has run, so the budget bounds the working set of the plan,
//! not the process RSS.
//!
//! Trips are exported to the metrics registry:
//! `nggc_query_cancelled_total`, `nggc_query_deadline_exceeded_total`,
//! `nggc_query_mem_rejections_total`, and the peak-usage gauge
//! `nggc_query_mem_peak_bytes`.

use crate::error::GmqlError;
use nggc_engine::{CancelToken, Interrupt, InterruptState};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable supplying a default `--timeout`.
pub const ENV_TIMEOUT: &str = "NGGC_QUERY_TIMEOUT";
/// Environment variable supplying a default `--max-memory`.
pub const ENV_MAX_MEMORY: &str = "NGGC_QUERY_MAX_MEMORY";

/// The limits a [`QueryGovernor`] enforces. `None` means unbounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorLimits {
    /// Wall-clock deadline for the whole query.
    pub timeout: Option<Duration>,
    /// Budget for governed intermediates, in encoded bytes.
    pub max_memory: Option<u64>,
}

impl GovernorLimits {
    /// Limits from the `NGGC_QUERY_TIMEOUT` / `NGGC_QUERY_MAX_MEMORY`
    /// environment variables. Unset variables leave the corresponding
    /// limit unbounded; malformed values are an error (silently ignoring
    /// a typo'd limit would defeat the point).
    pub fn from_env() -> Result<GovernorLimits, String> {
        let mut limits = GovernorLimits::default();
        if let Ok(v) = std::env::var(ENV_TIMEOUT) {
            limits.timeout = Some(parse_duration(&v).map_err(|e| format!("{ENV_TIMEOUT}: {e}"))?);
        }
        if let Ok(v) = std::env::var(ENV_MAX_MEMORY) {
            limits.max_memory =
                Some(parse_bytes(&v).map_err(|e| format!("{ENV_MAX_MEMORY}: {e}"))?);
        }
        Ok(limits)
    }

    /// Are any limits set?
    pub fn is_bounded(&self) -> bool {
        self.timeout.is_some() || self.max_memory.is_some()
    }
}

/// Per-query resource governor. Cheap to clone handles out of
/// ([`cancel_token`](Self::cancel_token), [`state`](Self::state));
/// create one per query execution.
#[derive(Debug, Clone)]
pub struct QueryGovernor {
    state: Arc<InterruptState>,
}

impl QueryGovernor {
    /// Governor enforcing `limits`.
    pub fn new(limits: GovernorLimits) -> QueryGovernor {
        let mut state = InterruptState::new();
        if let Some(t) = limits.timeout {
            state = state.with_deadline(t);
        }
        if let Some(m) = limits.max_memory {
            state = state.with_budget(m);
        }
        QueryGovernor { state: Arc::new(state) }
    }

    /// Governor with no deadline and no budget — still cancellable.
    pub fn unbounded() -> QueryGovernor {
        QueryGovernor::new(GovernorLimits::default())
    }

    /// The shared interruption state, for threading into an
    /// [`ExecContext`](nggc_engine::ExecContext) or other subsystems.
    pub fn state(&self) -> &Arc<InterruptState> {
        &self.state
    }

    /// A handle that can only cancel — safe to give to signal handlers
    /// and watcher threads.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken::new(Arc::clone(&self.state))
    }

    /// Request cooperative cancellation.
    pub fn cancel(&self) {
        self.state.cancel();
    }

    /// Boundary checkpoint: fails with a typed, metric-counted error if
    /// the query was cancelled or ran past its deadline. `node` names
    /// the plan node about to run (or just finished), for the
    /// partial-progress report.
    pub fn check(&self, node: &str) -> Result<(), GmqlError> {
        match self.state.poll() {
            Some(i) => Err(self.trip(node, i)),
            None => Ok(()),
        }
    }

    /// Charge `bytes` of materialised intermediate against the budget.
    /// On rejection nothing is charged and the returned
    /// [`GmqlError::MemoryExhausted`] names the node.
    pub fn charge(&self, node: &str, bytes: u64) -> Result<(), GmqlError> {
        self.state.charge(bytes).map_err(|i| self.trip(node, i))
    }

    /// Release a previously successful charge (intermediate freed).
    pub fn release(&self, bytes: u64) {
        self.state.release(bytes);
    }

    /// Time left before the deadline (`None` = no deadline). Use this to
    /// clamp downstream budgets (federation call policies, repository
    /// waits) so the query's deadline is honored end-to-end.
    pub fn remaining(&self) -> Option<Duration> {
        self.state.remaining()
    }

    /// Bytes of governed memory still unspent, or `None` when the query
    /// has no memory budget. Use this to bound allocations made outside
    /// the executor (e.g. repository loads) before they happen.
    pub fn remaining_memory(&self) -> Option<u64> {
        self.state.budget().map(|b| b.saturating_sub(self.state.charged()))
    }

    /// Record a refusal made on the governor's behalf by a subsystem
    /// that pre-checks allocations (e.g. a repository refusing to load a
    /// dataset whose catalog estimate exceeds [`remaining_memory`]).
    /// Returns the typed error and bumps the rejection counter exactly
    /// as an executor-side [`charge`] failure would.
    ///
    /// [`remaining_memory`]: QueryGovernor::remaining_memory
    /// [`charge`]: QueryGovernor::charge
    pub fn refuse_allocation(&self, node: &str, requested: u64) -> GmqlError {
        self.trip(
            node,
            Interrupt::MemoryExhausted {
                requested,
                budget: self.state.budget().unwrap_or(u64::MAX),
                charged: self.state.charged(),
            },
        )
    }

    /// Bytes currently charged.
    pub fn charged(&self) -> u64 {
        self.state.charged()
    }

    /// High-water mark of charged bytes.
    pub fn mem_peak(&self) -> u64 {
        self.state.peak()
    }

    /// Export the peak-memory gauge. Called by the executor when a
    /// governed run finishes (success or failure); harmless to call
    /// again.
    pub fn export_peak(&self) {
        let reg = nggc_obs::global();
        if reg.is_enabled() {
            reg.gauge("nggc_query_mem_peak_bytes").set(self.state.peak() as i64);
        }
    }

    /// Translate a tripped [`Interrupt`] into the corresponding
    /// [`GmqlError`], bump its counter, and export the peak gauge.
    fn trip(&self, node: &str, interrupt: Interrupt) -> GmqlError {
        let reg = nggc_obs::global();
        self.export_peak();
        let elapsed_ms = self.state.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        let mem_peak = self.state.peak();
        match interrupt {
            Interrupt::Cancelled => {
                reg.counter("nggc_query_cancelled_total").inc();
                GmqlError::Cancelled { node: node.to_owned(), elapsed_ms, mem_peak }
            }
            Interrupt::DeadlineExceeded => {
                reg.counter("nggc_query_deadline_exceeded_total").inc();
                let limit_ms = self
                    .state
                    .limit()
                    .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
                    .unwrap_or(0);
                GmqlError::DeadlineExceeded {
                    node: node.to_owned(),
                    elapsed_ms,
                    limit_ms,
                    mem_peak,
                }
            }
            Interrupt::MemoryExhausted { requested, budget, charged } => {
                reg.counter("nggc_query_mem_rejections_total").inc();
                GmqlError::MemoryExhausted { node: node.to_owned(), requested, budget, charged }
            }
        }
    }
}

/// Parse a human-friendly duration: `500ms`, `30s`, `2m`, `1h`, `250us`,
/// or a bare number of **seconds**. Fractions are allowed (`1.5s`).
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let s = s.trim();
    let split = s.find(|c: char| !(c.is_ascii_digit() || c == '.')).unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = num.parse().map_err(|_| format!("invalid duration {s:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("invalid duration {s:?}"));
    }
    let secs = match unit.trim() {
        "" | "s" | "sec" | "secs" => value,
        "ms" => value / 1e3,
        "us" | "µs" => value / 1e6,
        "ns" => value / 1e9,
        "m" | "min" | "mins" => value * 60.0,
        "h" | "hr" | "hrs" => value * 3600.0,
        other => return Err(format!("unknown duration unit {other:?} in {s:?}")),
    };
    Ok(Duration::from_secs_f64(secs))
}

/// Parse a human-friendly byte count: `64MiB`, `2GB`, `512KiB`, `1024`,
/// with both binary (`KiB`/`MiB`/`GiB`/`TiB`) and decimal (`KB`/`MB`/
/// `GB`/`TB`) suffixes, case-insensitive, optional `B`.
pub fn parse_bytes(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let split = s.find(|c: char| !(c.is_ascii_digit() || c == '.')).unwrap_or(s.len());
    let (num, unit) = s.split_at(split);
    let value: f64 = num.parse().map_err(|_| format!("invalid byte count {s:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("invalid byte count {s:?}"));
    }
    let mult: f64 = match unit.trim().to_ascii_lowercase().as_str() {
        "" | "b" => 1.0,
        "k" | "kb" => 1e3,
        "m" | "mb" => 1e6,
        "g" | "gb" => 1e9,
        "t" | "tb" => 1e12,
        "kib" => 1024.0,
        "mib" => 1024.0 * 1024.0,
        "gib" => 1024.0 * 1024.0 * 1024.0,
        "tib" => 1024.0 * 1024.0 * 1024.0 * 1024.0,
        other => return Err(format!("unknown byte unit {other:?} in {s:?}")),
    };
    let bytes = value * mult;
    if bytes > u64::MAX as f64 {
        return Err(format!("byte count {s:?} overflows"));
    }
    Ok(bytes as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_duration_accepts_common_forms() {
        assert_eq!(parse_duration("500ms").unwrap(), Duration::from_millis(500));
        assert_eq!(parse_duration("30s").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_duration("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("1h").unwrap(), Duration::from_secs(3600));
        assert_eq!(parse_duration("250us").unwrap(), Duration::from_micros(250));
        assert_eq!(parse_duration("3").unwrap(), Duration::from_secs(3));
        assert_eq!(parse_duration("1.5s").unwrap(), Duration::from_millis(1500));
        assert_eq!(parse_duration(" 10ms ").unwrap(), Duration::from_millis(10));
    }

    #[test]
    fn parse_duration_rejects_garbage() {
        for bad in ["", "fast", "10 parsecs", "-5s", "1.2.3s", "s"] {
            assert!(parse_duration(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_bytes_accepts_common_forms() {
        assert_eq!(parse_bytes("1024").unwrap(), 1024);
        assert_eq!(parse_bytes("64MiB").unwrap(), 64 * 1024 * 1024);
        assert_eq!(parse_bytes("64mib").unwrap(), 64 * 1024 * 1024);
        assert_eq!(parse_bytes("2GB").unwrap(), 2_000_000_000);
        assert_eq!(parse_bytes("512KiB").unwrap(), 512 * 1024);
        assert_eq!(parse_bytes("1.5kb").unwrap(), 1500);
        assert_eq!(parse_bytes("10B").unwrap(), 10);
    }

    #[test]
    fn parse_bytes_rejects_garbage() {
        for bad in ["", "lots", "64QiB", "-1", "MiB"] {
            assert!(parse_bytes(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn unbounded_governor_only_trips_on_cancel() {
        let g = QueryGovernor::unbounded();
        assert!(g.check("N").is_ok());
        g.charge("N", u64::MAX / 4).unwrap();
        assert!(g.check("N").is_ok());
        g.cancel();
        match g.check("FINAL") {
            Err(GmqlError::Cancelled { node, .. }) => assert_eq!(node, "FINAL"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn deadline_trip_reports_limit_and_node() {
        let g = QueryGovernor::new(GovernorLimits {
            timeout: Some(Duration::from_millis(5)),
            max_memory: None,
        });
        std::thread::sleep(Duration::from_millis(10));
        match g.check("JOINED") {
            Err(GmqlError::DeadlineExceeded { node, limit_ms, elapsed_ms, .. }) => {
                assert_eq!(node, "JOINED");
                assert_eq!(limit_ms, 5);
                assert!(elapsed_ms >= 5);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn budget_trip_reports_accounting() {
        let g = QueryGovernor::new(GovernorLimits { timeout: None, max_memory: Some(1000) });
        g.charge("A", 600).unwrap();
        match g.charge("B", 500) {
            Err(GmqlError::MemoryExhausted { node, requested, budget, charged }) => {
                assert_eq!((node.as_str(), requested, budget, charged), ("B", 500, 1000, 600));
            }
            other => panic!("expected MemoryExhausted, got {other:?}"),
        }
        g.release(600);
        g.charge("B", 500).unwrap();
        assert_eq!(g.mem_peak(), 600);
    }

    #[test]
    fn cancel_token_cancels_from_another_thread() {
        let g = QueryGovernor::unbounded();
        let token = g.cancel_token();
        let handle = std::thread::spawn(move || token.cancel());
        handle.join().unwrap();
        assert!(g.check("X").is_err());
    }

    #[test]
    fn limits_from_env_parse_and_reject() {
        // Use process-global env vars carefully: set, read, and restore.
        std::env::set_var(ENV_TIMEOUT, "250ms");
        std::env::set_var(ENV_MAX_MEMORY, "1MiB");
        let limits = GovernorLimits::from_env().unwrap();
        assert_eq!(limits.timeout, Some(Duration::from_millis(250)));
        assert_eq!(limits.max_memory, Some(1024 * 1024));
        assert!(limits.is_bounded());
        std::env::set_var(ENV_TIMEOUT, "not-a-duration");
        assert!(GovernorLimits::from_env().is_err());
        std::env::remove_var(ENV_TIMEOUT);
        std::env::remove_var(ENV_MAX_MEMORY);
        assert!(!GovernorLimits::from_env().unwrap().is_bounded());
    }
}
