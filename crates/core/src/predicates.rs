//! Predicate and expression languages.
//!
//! GMQL SELECT filters at two levels (paper §2's example filters metadata:
//! `SELECT(annType == 'promoter')`): **metadata predicates** over a
//! sample's attribute–value pairs and **region expressions** over a
//! region's fixed and schema attributes. Region expressions double as the
//! computed-attribute language of PROJECT.

use crate::error::GmqlError;
use nggc_gdm::{GRegion, Metadata, Schema, Value, ValueType};
use std::fmt;

/// Comparison operators shared by both predicate languages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn apply_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }

    /// Render the operator symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate over sample metadata.
///
/// Comparisons are satisfied when **any** value of the attribute
/// satisfies them (metadata are multimaps). String comparisons are
/// case-insensitive for `==`/`!=` (repositories are liberal with case);
/// when both sides parse as numbers the comparison is numeric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaPredicate {
    /// Compare an attribute against a literal.
    Cmp {
        /// Metadata attribute name.
        attr: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal right-hand side.
        value: String,
    },
    /// The attribute exists with at least one value.
    Exists(String),
    /// Conjunction.
    And(Box<MetaPredicate>, Box<MetaPredicate>),
    /// Disjunction.
    Or(Box<MetaPredicate>, Box<MetaPredicate>),
    /// Negation.
    Not(Box<MetaPredicate>),
    /// Always true (SELECT with no metadata predicate).
    True,
}

impl MetaPredicate {
    /// Evaluate against one sample's metadata.
    pub fn eval(&self, meta: &Metadata) -> bool {
        match self {
            MetaPredicate::Cmp { attr, op, value } => {
                meta.get(attr).iter().any(|v| compare_meta(v, *op, value))
            }
            MetaPredicate::Exists(attr) => meta.contains_attribute(attr),
            MetaPredicate::And(a, b) => a.eval(meta) && b.eval(meta),
            MetaPredicate::Or(a, b) => a.eval(meta) || b.eval(meta),
            MetaPredicate::Not(p) => !p.eval(meta),
            MetaPredicate::True => true,
        }
    }

    /// Convenience: `attr == value`.
    pub fn eq(attr: impl Into<String>, value: impl Into<String>) -> MetaPredicate {
        MetaPredicate::Cmp { attr: attr.into(), op: CmpOp::Eq, value: value.into() }
    }

    /// Conjunction builder.
    pub fn and(self, other: MetaPredicate) -> MetaPredicate {
        MetaPredicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction builder.
    pub fn or(self, other: MetaPredicate) -> MetaPredicate {
        MetaPredicate::Or(Box::new(self), Box::new(other))
    }
}

fn compare_meta(actual: &str, op: CmpOp, expected: &str) -> bool {
    if let (Ok(a), Ok(b)) = (actual.trim().parse::<f64>(), expected.trim().parse::<f64>()) {
        return op.apply_ord(a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal));
    }
    match op {
        CmpOp::Eq => actual.eq_ignore_ascii_case(expected),
        CmpOp::Ne => !actual.eq_ignore_ascii_case(expected),
        _ => op.apply_ord(actual.cmp(expected)),
    }
}

impl fmt::Display for MetaPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaPredicate::Cmp { attr, op, value } => write!(f, "{attr} {} '{value}'", op.symbol()),
            MetaPredicate::Exists(a) => write!(f, "EXISTS({a})"),
            MetaPredicate::And(a, b) => write!(f, "({a} AND {b})"),
            MetaPredicate::Or(a, b) => write!(f, "({a} OR {b})"),
            MetaPredicate::Not(p) => write!(f, "NOT ({p})"),
            MetaPredicate::True => write!(f, "TRUE"),
        }
    }
}

/// Binary operators of region expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float).
    Div,
    /// Comparison.
    Cmp(CmpOp),
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// An expression over one region's attributes.
///
/// Attribute references resolve against the fixed coordinate attributes
/// (`chr`, `left`, `right`, `strand`, plus the derived `len`) and the
/// dataset schema. Evaluation is dynamically typed with SQL-ish null
/// propagation: any comparison or arithmetic with null yields null/false.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionExpr {
    /// Attribute reference.
    Attr(String),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Binary(Box<RegionExpr>, BinOp, Box<RegionExpr>),
    /// Logical negation.
    Not(Box<RegionExpr>),
}

impl RegionExpr {
    /// Literal number.
    pub fn num(v: f64) -> RegionExpr {
        RegionExpr::Lit(Value::Float(v))
    }

    /// Attribute reference.
    pub fn attr(name: impl Into<String>) -> RegionExpr {
        RegionExpr::Attr(name.into())
    }

    /// `self <op> other` comparison.
    pub fn cmp(self, op: CmpOp, other: RegionExpr) -> RegionExpr {
        RegionExpr::Binary(Box::new(self), BinOp::Cmp(op), Box::new(other))
    }

    /// Validate attribute references against a schema and report the
    /// expression's static result type (`None` when it depends on nulls).
    pub fn check(&self, schema: &Schema) -> Result<Option<ValueType>, GmqlError> {
        match self {
            RegionExpr::Attr(name) => match name.to_ascii_lowercase().as_str() {
                "chr" | "strand" => Ok(Some(ValueType::Str)),
                "left" | "right" | "len" => Ok(Some(ValueType::Int)),
                _ => schema.get(name).map(|a| Some(a.ty)).ok_or_else(|| {
                    GmqlError::semantic(format!("unknown region attribute {name:?}"))
                }),
            },
            RegionExpr::Lit(v) => Ok(v.value_type()),
            RegionExpr::Not(e) => {
                e.check(schema)?;
                Ok(Some(ValueType::Bool))
            }
            RegionExpr::Binary(a, op, b) => {
                let ta = a.check(schema)?;
                let tb = b.check(schema)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        for t in [ta, tb].into_iter().flatten() {
                            if !t.is_numeric() {
                                return Err(GmqlError::semantic(format!(
                                    "arithmetic on non-numeric type {t}"
                                )));
                            }
                        }
                        if *op == BinOp::Div {
                            Ok(Some(ValueType::Float))
                        } else if ta == Some(ValueType::Int) && tb == Some(ValueType::Int) {
                            Ok(Some(ValueType::Int))
                        } else {
                            Ok(Some(ValueType::Float))
                        }
                    }
                    BinOp::Cmp(_) | BinOp::And | BinOp::Or => Ok(Some(ValueType::Bool)),
                }
            }
        }
    }

    /// Evaluate over a region.
    pub fn eval(&self, region: &GRegion, schema: &Schema) -> Value {
        match self {
            RegionExpr::Attr(name) => match name.to_ascii_lowercase().as_str() {
                "chr" => Value::Str(region.chrom.as_str().to_owned()),
                "left" => Value::Int(region.left as i64),
                "right" => Value::Int(region.right as i64),
                "len" => Value::Int(region.len() as i64),
                "strand" => Value::Str(region.strand.symbol().to_string()),
                _ => schema
                    .position(name)
                    .and_then(|i| region.values.get(i))
                    .cloned()
                    .unwrap_or(Value::Null),
            },
            RegionExpr::Lit(v) => v.clone(),
            RegionExpr::Not(e) => match e.eval(region, schema) {
                Value::Bool(b) => Value::Bool(!b),
                Value::Null => Value::Null,
                _ => Value::Null,
            },
            RegionExpr::Binary(a, op, b) => {
                let va = a.eval(region, schema);
                let vb = b.eval(region, schema);
                eval_binary(&va, *op, &vb)
            }
        }
    }

    /// Evaluate as a boolean predicate (null ⇒ false).
    pub fn eval_bool(&self, region: &GRegion, schema: &Schema) -> bool {
        matches!(self.eval(region, schema), Value::Bool(true))
    }
}

fn eval_binary(a: &Value, op: BinOp, b: &Value) -> Value {
    match op {
        BinOp::And => match (a, b) {
            (Value::Bool(x), Value::Bool(y)) => Value::Bool(*x && *y),
            _ => Value::Null,
        },
        BinOp::Or => match (a, b) {
            (Value::Bool(x), Value::Bool(y)) => Value::Bool(*x || *y),
            _ => Value::Null,
        },
        BinOp::Cmp(c) => {
            if a.is_null() || b.is_null() {
                return Value::Null;
            }
            // Strings compare as strings; anything numeric compares
            // numerically via the total order.
            match (a.as_str(), b.as_str()) {
                (Some(x), Some(y)) => Value::Bool(match c {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    _ => c.apply_ord(x.cmp(y)),
                }),
                _ => Value::Bool(c.apply_ord(a.total_cmp(b))),
            }
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else { return Value::Null };
            let result = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                _ => unreachable!(),
            };
            let ints = matches!(a, Value::Int(_)) && matches!(b, Value::Int(_));
            if ints && op != BinOp::Div {
                Value::Int(result as i64)
            } else {
                Value::Float(result)
            }
        }
    }
}

impl fmt::Display for RegionExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionExpr::Attr(a) => write!(f, "{a}"),
            RegionExpr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            RegionExpr::Not(e) => write!(f, "NOT ({e})"),
            RegionExpr::Binary(a, op, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Cmp(c) => c.symbol(),
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, Strand};

    fn meta() -> Metadata {
        Metadata::from_pairs([
            ("dataType", "ChipSeq"),
            ("antibody", "CTCF"),
            ("antibody", "POLR2A"),
            ("age", "47"),
        ])
    }

    #[test]
    fn meta_eq_case_insensitive_any_value() {
        assert!(MetaPredicate::eq("datatype", "chipseq").eval(&meta()));
        assert!(MetaPredicate::eq("antibody", "POLR2A").eval(&meta()), "any value matches");
        assert!(!MetaPredicate::eq("antibody", "H3K4me3").eval(&meta()));
        assert!(!MetaPredicate::eq("missing", "x").eval(&meta()));
    }

    #[test]
    fn meta_numeric_comparison() {
        let p = MetaPredicate::Cmp { attr: "age".into(), op: CmpOp::Gt, value: "40".into() };
        assert!(p.eval(&meta()));
        let p = MetaPredicate::Cmp { attr: "age".into(), op: CmpOp::Lt, value: "40".into() };
        assert!(!p.eval(&meta()));
    }

    #[test]
    fn meta_boolean_combinators() {
        let p = MetaPredicate::eq("dataType", "ChipSeq").and(MetaPredicate::eq("antibody", "CTCF"));
        assert!(p.eval(&meta()));
        let q = MetaPredicate::Not(Box::new(MetaPredicate::eq("dataType", "DnaseSeq")));
        assert!(q.eval(&meta()));
        let r = MetaPredicate::eq("x", "1").or(MetaPredicate::Exists("age".into()));
        assert!(r.eval(&meta()));
        assert!(MetaPredicate::True.eval(&meta()));
    }

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::new("p_value", ValueType::Float),
            Attribute::new("name", ValueType::Str),
        ])
        .unwrap()
    }

    fn region() -> GRegion {
        GRegion::new("chr2", 100, 250, Strand::Pos)
            .with_values(vec![Value::Float(0.002), Value::Str("peak7".into())])
    }

    #[test]
    fn region_fixed_attributes() {
        let s = schema();
        let r = region();
        assert_eq!(RegionExpr::attr("chr").eval(&r, &s), Value::Str("chr2".into()));
        assert_eq!(RegionExpr::attr("LEFT").eval(&r, &s), Value::Int(100));
        assert_eq!(RegionExpr::attr("len").eval(&r, &s), Value::Int(150));
        assert_eq!(RegionExpr::attr("strand").eval(&r, &s), Value::Str("+".into()));
    }

    #[test]
    fn region_predicate_on_schema_attribute() {
        let s = schema();
        let r = region();
        let p = RegionExpr::attr("p_value").cmp(CmpOp::Lt, RegionExpr::num(0.01));
        assert!(p.eval_bool(&r, &s));
        let q = RegionExpr::attr("name").cmp(CmpOp::Eq, RegionExpr::Lit("peak7".into()));
        assert!(q.eval_bool(&r, &s));
    }

    #[test]
    fn arithmetic_and_typing() {
        let s = schema();
        let r = region();
        let e = RegionExpr::Binary(
            Box::new(RegionExpr::attr("right")),
            BinOp::Sub,
            Box::new(RegionExpr::attr("left")),
        );
        assert_eq!(e.eval(&r, &s), Value::Int(150));
        assert_eq!(e.check(&s).unwrap(), Some(ValueType::Int));
        let d =
            RegionExpr::Binary(Box::new(e), BinOp::Div, Box::new(RegionExpr::Lit(Value::Int(2))));
        assert_eq!(d.eval(&r, &s), Value::Float(75.0));
        assert_eq!(d.check(&s).unwrap(), Some(ValueType::Float));
    }

    #[test]
    fn null_propagation() {
        let s = schema();
        let mut r = region();
        r.values[0] = Value::Null;
        let p = RegionExpr::attr("p_value").cmp(CmpOp::Lt, RegionExpr::num(0.01));
        assert!(!p.eval_bool(&r, &s), "null comparison is not true");
        let e = RegionExpr::Binary(
            Box::new(RegionExpr::attr("p_value")),
            BinOp::Add,
            Box::new(RegionExpr::num(1.0)),
        );
        assert_eq!(e.eval(&r, &s), Value::Null);
    }

    #[test]
    fn check_rejects_unknown_and_bad_types() {
        let s = schema();
        assert!(RegionExpr::attr("nope").check(&s).is_err());
        let bad = RegionExpr::Binary(
            Box::new(RegionExpr::attr("name")),
            BinOp::Add,
            Box::new(RegionExpr::num(1.0)),
        );
        assert!(bad.check(&s).is_err());
    }

    #[test]
    fn logical_ops_on_regions() {
        let s = schema();
        let r = region();
        let p = RegionExpr::Binary(
            Box::new(RegionExpr::attr("left").cmp(CmpOp::Ge, RegionExpr::Lit(Value::Int(100)))),
            BinOp::And,
            Box::new(RegionExpr::attr("chr").cmp(CmpOp::Eq, RegionExpr::Lit("chr2".into()))),
        );
        assert!(p.eval_bool(&r, &s));
        let n = RegionExpr::Not(Box::new(p));
        assert!(!n.eval_bool(&r, &s));
    }

    #[test]
    fn display_roundtrippable_shape() {
        let p = RegionExpr::attr("p_value").cmp(CmpOp::Lt, RegionExpr::num(0.01));
        assert_eq!(p.to_string(), "(p_value < 0.01)");
        let m = MetaPredicate::eq("a", "b").and(MetaPredicate::Exists("c".into()));
        assert_eq!(m.to_string(), "(a == 'b' AND EXISTS(c))");
    }
}
