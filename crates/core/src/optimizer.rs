//! Logical plan optimizer.
//!
//! The paper's architecture (§4.2) puts a logical optimizer between the
//! compiler and the backend encodings. Implemented rewrites:
//!
//! 1. **SELECT fusion** — consecutive SELECTs collapse into one (metadata
//!    predicates conjoin, region predicates conjoin), saving a full
//!    dataset materialisation per fused pair.
//! 2. **Common subexpression elimination** — structurally identical nodes
//!    (same operator, same inputs) are evaluated once; diamond-shaped
//!    query texts (the same SELECT feeding MAP and JOIN) become DAGs.
//!
//! A third optimization, **metadata-first evaluation** inside SELECT, is
//! an execution-strategy flag ([`crate::exec::ExecOptions::meta_first`])
//! rather than a plan rewrite; E10 ablates all three.

use crate::ast::Operator;
use crate::plan::{LogicalNode, LogicalPlan, NodeId, PlanOp};
use crate::predicates::{BinOp, MetaPredicate, RegionExpr};
use std::collections::HashMap;

/// What the optimizer did, for EXPLAIN output and the E10 ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerReport {
    /// Number of SELECT pairs fused.
    pub selects_fused: usize,
    /// Number of duplicate nodes eliminated.
    pub nodes_deduplicated: usize,
}

/// Optimize a plan, returning the rewritten plan and a report.
pub fn optimize(plan: &LogicalPlan) -> (LogicalPlan, OptimizerReport) {
    let mut report = OptimizerReport::default();
    let fused = fuse_selects(plan, &mut report);
    let deduped = eliminate_common_subexpressions(&fused, &mut report);
    (deduped, report)
}

/// Fuse `SELECT(p2) (SELECT(p1) X)` into `SELECT(p1 AND p2) X`.
fn fuse_selects(plan: &LogicalPlan, report: &mut OptimizerReport) -> LogicalPlan {
    let mut nodes: Vec<LogicalNode> = plan.nodes.clone();
    // Iterate to a fixpoint: a chain of three SELECTs fuses twice.
    loop {
        let mut changed = false;
        for i in 0..nodes.len() {
            let PlanOp::Apply(Operator::Select {
                meta: outer_meta,
                region: outer_region,
                semijoin: outer_sj,
            }) = nodes[i].op.clone()
            else {
                continue;
            };
            let input = nodes[i].inputs[0];
            let PlanOp::Apply(Operator::Select {
                meta: inner_meta,
                region: inner_region,
                semijoin: inner_sj,
            }) = nodes[input].op.clone()
            else {
                continue;
            };
            // Conservative: fuse only plain SELECT pairs; semijoins carry
            // extra inputs whose rewiring is not worth the complexity.
            if outer_sj.is_some() || inner_sj.is_some() {
                continue;
            }
            let meta = match (inner_meta, outer_meta) {
                (MetaPredicate::True, m) | (m, MetaPredicate::True) => m,
                (a, b) => a.and(b),
            };
            let region = match (inner_region, outer_region) {
                (None, r) | (r, None) => r,
                (Some(a), Some(b)) => {
                    Some(RegionExpr::Binary(Box::new(a), BinOp::And, Box::new(b)))
                }
            };
            nodes[i].op = PlanOp::Apply(Operator::Select { meta, region, semijoin: None });
            nodes[i].inputs = vec![nodes[input].inputs[0]];
            report.selects_fused += 1;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    let mut out = plan.clone();
    out.nodes = nodes;
    prune_unreachable(&mut out);
    out
}

/// Hash-cons nodes: identical `(op, inputs)` pairs collapse to one node.
fn eliminate_common_subexpressions(
    plan: &LogicalPlan,
    report: &mut OptimizerReport,
) -> LogicalPlan {
    let mut out = LogicalPlan::default();
    let mut remap: Vec<NodeId> = Vec::with_capacity(plan.nodes.len());
    let mut seen: HashMap<String, NodeId> = HashMap::new();
    for node in &plan.nodes {
        let inputs: Vec<NodeId> = node.inputs.iter().map(|&i| remap[i]).collect();
        let key = format!("{:?}|{:?}", node.op, inputs);
        if let Some(&existing) = seen.get(&key) {
            remap.push(existing);
            report.nodes_deduplicated += 1;
        } else {
            let id = out.nodes.len();
            let mut n = node.clone();
            n.inputs = inputs;
            out.nodes.push(n);
            seen.insert(key, id);
            remap.push(id);
        }
    }
    out.outputs = plan.outputs.iter().map(|(name, id)| (name.clone(), remap[*id])).collect();
    out
}

/// Drop nodes not reachable from any output, preserving topological order.
fn prune_unreachable(plan: &mut LogicalPlan) {
    let mut live = vec![false; plan.nodes.len()];
    let mut stack: Vec<NodeId> = plan.outputs.iter().map(|(_, id)| *id).collect();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id], true) {
            continue;
        }
        stack.extend(plan.nodes[id].inputs.iter().copied());
    }
    let mut remap: Vec<Option<NodeId>> = vec![None; plan.nodes.len()];
    let mut nodes = Vec::new();
    for (i, node) in plan.nodes.iter().enumerate() {
        if live[i] {
            let mut n = node.clone();
            n.inputs = n.inputs.iter().map(|&x| remap[x].expect("inputs precede")).collect();
            remap[i] = Some(nodes.len());
            nodes.push(n);
        }
    }
    plan.outputs = plan
        .outputs
        .iter()
        .map(|(name, id)| (name.clone(), remap[*id].expect("output is live")))
        .collect();
    plan.nodes = nodes;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use nggc_gdm::{Attribute, Schema, ValueType};

    fn catalog(name: &str) -> Option<Schema> {
        (name == "D").then(|| Schema::new(vec![Attribute::new("score", ValueType::Float)]).unwrap())
    }

    fn compile(q: &str) -> LogicalPlan {
        LogicalPlan::compile(&parse(q).unwrap(), &catalog).unwrap()
    }

    #[test]
    fn select_chain_fuses() {
        let plan = compile(
            "A = SELECT(x == 1) D;
             B = SELECT(y == 2) A;
             C = SELECT(region: score > 1) B;
             MATERIALIZE C;",
        );
        let (opt, report) = optimize(&plan);
        assert_eq!(report.selects_fused, 2);
        // Source + one fused SELECT remain.
        assert_eq!(opt.nodes.len(), 2);
        match &opt.nodes[1].op {
            PlanOp::Apply(Operator::Select { meta, region, .. }) => {
                assert!(meta.to_string().contains("AND"), "metadata predicates conjoined: {meta}");
                assert!(region.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cse_merges_identical_selects() {
        let plan = compile(
            "A = SELECT(x == 1) D;
             B = SELECT(x == 1) D;
             M = MAP(n AS COUNT) A B;
             MATERIALIZE M;",
        );
        let (opt, report) = optimize(&plan);
        assert_eq!(report.nodes_deduplicated, 1);
        // Source, one SELECT, MAP.
        assert_eq!(opt.nodes.len(), 3);
        let map_node = opt.nodes.last().unwrap();
        assert_eq!(map_node.inputs[0], map_node.inputs[1], "diamond over one node");
    }

    #[test]
    fn optimization_preserves_outputs() {
        let plan = compile("A = SELECT(x == 1) D; MATERIALIZE A INTO out;");
        let (opt, _) = optimize(&plan);
        assert_eq!(opt.outputs.len(), 1);
        assert_eq!(opt.outputs[0].0, "out");
        assert!(opt.outputs[0].1 < opt.nodes.len());
    }

    #[test]
    fn no_op_on_plain_plan() {
        let plan = compile("M = MAP(n AS COUNT) D D;");
        let (opt, report) = optimize(&plan);
        assert_eq!(report, OptimizerReport::default());
        assert_eq!(opt.nodes.len(), plan.nodes.len());
    }
}
