//! # `nggc-bench` — experiment harness
//!
//! Shared workload builders and table rendering for the experiment
//! binaries (`src/bin/exp_*.rs`, one per DESIGN.md experiment id) and the
//! Criterion micro-benchmarks (`benches/`). See EXPERIMENTS.md for the
//! paper-vs-measured record each binary regenerates.

#![warn(missing_docs)]

use nggc_gdm::Dataset;
use nggc_synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};

/// The §2 experiment's reference cardinalities (the paper's only
/// quantified result).
pub mod paper {
    /// ENCODE samples mapped in the §2 experiment.
    pub const SAMPLES: usize = 2_423;
    /// Total peaks across those samples.
    pub const PEAKS: usize = 83_899_526;
    /// UCSC promoters used as references.
    pub const PROMOTERS: usize = 131_780;
    /// Reported output size in bytes ("29 GB of data").
    pub const OUTPUT_BYTES: usize = 29 * 1024 * 1024 * 1024;
}

/// A scaled §2-experiment workload.
pub struct MapWorkload {
    /// The synthetic genome.
    pub genome: Genome,
    /// ENCODE-shaped peak dataset.
    pub encode: Dataset,
    /// Promoter annotation dataset (single reference sample).
    pub annotations: Dataset,
    /// The scale factor relative to the paper's experiment.
    pub scale: f64,
}

/// Build the §2 workload at `scale` (1.0 = the paper's 2,423 samples /
/// 83.9 M peaks / 131,780 promoters). Cardinalities scale linearly;
/// the genome scales with the square root so region density grows with
/// scale, as it does when adding ENCODE samples over a fixed genome.
pub fn map_workload(scale: f64, seed: u64) -> MapWorkload {
    assert!(scale > 0.0);
    let genome = Genome::human((scale.sqrt() * 0.05).clamp(0.0005, 1.0));
    let samples = ((paper::SAMPLES as f64 * scale).round() as usize).max(2);
    let peaks_per_sample = paper::PEAKS as f64 / paper::SAMPLES as f64;
    let genes = ((paper::PROMOTERS as f64 * scale).round() as usize).max(20);
    let encode = generate_encode(
        &genome,
        &EncodeConfig {
            samples,
            mean_peaks_per_sample: peaks_per_sample,
            chipseq_fraction: 1.0,
            seed,
            ..Default::default()
        },
    );
    let (annotations, _) = generate_annotations(
        &genome,
        &AnnotationConfig { genes, seed: seed ^ 0xa0a0, ..Default::default() },
    );
    MapWorkload { genome, encode, annotations, scale }
}

/// The §2 query (annotation regions are all promoters here, so the
/// region filter is a no-op kept for fidelity).
pub const MAP_QUERY: &str = "
    PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
    RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;
    MATERIALIZE RESULT;
";

/// Simple fixed-width table printer for experiment outputs.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells.to_vec());
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Human-readable byte counts.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_scales_cardinalities() {
        let w = map_workload(0.001, 1);
        assert_eq!(w.encode.sample_count(), 2);
        assert!(w.annotations.region_count() >= 2 * 131); // genes + promoters
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("long_header"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KiB");
        assert!(human_bytes(29 * 1024 * 1024 * 1024).starts_with("29.00 GiB"));
    }
}
