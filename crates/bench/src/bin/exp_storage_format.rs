//! **E11** — native storage formats: v1 text vs v2 binary columnar.
//!
//! The paper's repository layer (§4.3) stores curated datasets on disk;
//! this experiment measures what the v2 binary columnar container
//! (delta+varint coordinates, bitpacked strands, typed value columns —
//! see docs/storage.md) buys over the v1 text format on an ENCODE-shaped
//! synthetic dataset:
//!
//! * save throughput and on-disk footprint,
//! * cold-load throughput (the acceptance bar is v2 ≥ 2× v1),
//! * chromosome-granular partial reads, which v1 cannot do at all
//!   (it must parse every sample file) and v2 serves via its index.
//!
//! Usage: `exp_storage_format [scale] [--iters N] [--metrics-json PATH]`
//! (default scale 0.005, 3 iterations; best-of-N timings are reported).

use nggc_bench::{human_bytes, map_workload, Table};
use nggc_formats::native_v2;
use std::path::Path;
use std::time::{Duration, Instant};

fn dir_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                total += dir_bytes(&path);
            } else if let Ok(meta) = entry.metadata() {
                total += meta.len();
            }
        }
    }
    total
}

fn best_of(iters: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..iters).map(|_| f()).min().expect("at least one iteration")
}

fn main() {
    let mut scale = 0.005f64;
    let mut iters = 3usize;
    let mut metrics_json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).unwrap_or(iters),
            "--metrics-json" => metrics_json = args.next(),
            other => {
                if let Ok(s) = other.parse() {
                    scale = s;
                }
            }
        }
    }

    println!("== E11: native storage v1 (text) vs v2 (binary columnar) ==\n");
    let w = map_workload(scale, 42);
    let dataset = w.encode;
    println!(
        "workload: scale {scale} — {} samples, {} regions, {} chromosomes",
        dataset.sample_count(),
        dataset.region_count(),
        w.genome.chromosomes().len(),
    );
    println!();

    let root = std::env::temp_dir().join(format!("nggc_exp_storage_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let v1_dir = root.join("v1");
    let v2_dir = root.join("v2");
    std::fs::create_dir_all(&v1_dir).unwrap();
    std::fs::create_dir_all(&v2_dir).unwrap();

    let reg = nggc_obs::global();

    // -- save --------------------------------------------------------
    let v1_save = best_of(iters, || {
        let t0 = Instant::now();
        nggc_formats::write_dataset(&dataset, &v1_dir).expect("v1 save");
        t0.elapsed()
    });
    let v2_save = best_of(iters, || {
        let t0 = Instant::now();
        native_v2::write_dataset_v2(&dataset, &v2_dir).expect("v2 save");
        t0.elapsed()
    });
    let v1_bytes = dir_bytes(&v1_dir);
    let v2_bytes = dir_bytes(&v2_dir);

    // -- cold load (no cache: every iteration reparses from disk) ----
    let v1_load = best_of(iters, || {
        let t0 = Instant::now();
        let d = nggc_formats::read_dataset(&v1_dir).expect("v1 load");
        assert_eq!(d.region_count(), dataset.region_count());
        t0.elapsed()
    });
    let v2_load = best_of(iters, || {
        let t0 = Instant::now();
        let d = native_v2::read_dataset_v2(&v2_dir).expect("v2 load");
        assert_eq!(d.region_count(), dataset.region_count());
        t0.elapsed()
    });

    // Round-trip fidelity: the v2 container must reproduce the dataset
    // exactly (schema, metadata, regions, sample order).
    let reread = native_v2::read_dataset_v2(&v2_dir).expect("v2 reread");
    assert_eq!(reread.name, dataset.name, "dataset name survives");
    assert_eq!(reread.schema, dataset.schema, "schema survives");
    assert_eq!(reread.sample_count(), dataset.sample_count(), "sample count survives");
    for (a, b) in reread.samples.iter().zip(&dataset.samples) {
        assert_eq!(a.name, b.name, "sample order and names survive");
        assert_eq!(a.regions, b.regions, "regions survive bit-exactly");
        let pairs = |s: &nggc_gdm::Sample| -> Vec<(String, String)> {
            s.metadata.iter().map(|(k, v)| (k.to_owned(), v.to_owned())).collect()
        };
        assert_eq!(pairs(a), pairs(b), "metadata survives");
    }

    // -- chromosome-granular read (v2 only; v1 parses everything) ----
    let chrom = dataset.samples[0].regions[0].chrom.to_string();
    let v2_chrom_load = best_of(iters, || {
        let t0 = Instant::now();
        native_v2::read_dataset_v2_chrom(&v2_dir, &chrom).expect("v2 chrom load");
        t0.elapsed()
    });

    for (format, save, load, bytes) in
        [("v1", v1_save, v1_load, v1_bytes), ("v2", v2_save, v2_load, v2_bytes)]
    {
        reg.counter_with("nggc_bench_storage_bytes", &[("format", format)]).add(bytes);
        reg.histogram_with("nggc_bench_storage_save_ns", &[("format", format)])
            .record_duration(save);
        reg.histogram_with("nggc_bench_storage_load_ns", &[("format", format)])
            .record_duration(load);
    }
    reg.histogram_with("nggc_bench_storage_load_ns", &[("format", "v2-chrom")])
        .record_duration(v2_chrom_load);

    let mut table = Table::new(&["format", "save", "cold load", "on-disk", "vs v1 bytes"]);
    table.row(&[
        "v1 text".into(),
        format!("{v1_save:.2?}"),
        format!("{v1_load:.2?}"),
        human_bytes(v1_bytes as usize),
        "1.00×".into(),
    ]);
    table.row(&[
        "v2 binary".into(),
        format!("{v2_save:.2?}"),
        format!("{v2_load:.2?}"),
        human_bytes(v2_bytes as usize),
        format!("{:.2}×", v2_bytes as f64 / v1_bytes as f64),
    ]);
    table.row(&[
        format!("v2 [{chrom}]"),
        "-".into(),
        format!("{v2_chrom_load:.2?}"),
        "-".into(),
        "-".into(),
    ]);
    println!("{}", table.render());

    let speedup = v1_load.as_secs_f64() / v2_load.as_secs_f64();
    println!("round-trip: load(save_v2(d)) == d ✓");
    println!("cold-load speedup v2 over v1: {speedup:.2}× (acceptance bar: ≥ 2×)");
    assert!(speedup >= 2.0, "v2 cold load must be at least 2× faster than v1 (got {speedup:.2}×)");

    if let Some(path) = metrics_json {
        std::fs::write(&path, reg.render_json()).expect("write metrics json");
        println!("metrics registry written to {path}");
    }
    std::fs::remove_dir_all(&root).ok();
}
