//! **E3** — Figure 4: MAP result → genome space → gene network.
//!
//! The paper's Figure 4 interprets a MAP over gene regions as a tabular
//! genome space and then as a weighted gene network. This binary
//! regenerates the figure's two transformations on a small synthetic
//! workload and prints both artefacts, plus network statistics and a
//! k-means clustering of the gene profiles ("DNA region clustering",
//! abstract).

use nggc_analysis::{kmeans, pca, GenomeSpace, Network};
use nggc_bench::Table;
use nggc_core::GmqlEngine;
use nggc_synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};

fn main() {
    let genome = Genome::human(0.001);
    let encode = generate_encode(
        &genome,
        &EncodeConfig { samples: 8, mean_peaks_per_sample: 500.0, seed: 4, ..Default::default() },
    );
    let (annotations, _) = generate_annotations(
        &genome,
        &AnnotationConfig { genes: 10, seed: 2, ..Default::default() },
    );
    let mut engine = GmqlEngine::with_workers(4);
    engine.register(encode);
    engine.register(annotations);

    // MAP experiments onto gene regions (Figure 4, first transformation).
    let out = engine
        .run(
            "GENES = SELECT(region: annType == 'gene') ANNOTATIONS;
             EXPS  = SELECT(dataType == 'ChipSeq') ENCODE;
             GS    = MAP(n AS COUNT) GENES EXPS;
             MATERIALIZE GS;",
        )
        .expect("query runs");

    let space =
        GenomeSpace::from_map_result(&out["GS"], "n", Some("name")).expect("genome space builds");
    println!(
        "== E3 / Figure 4: genome space ({} genes × {} experiments) ==\n",
        space.n_regions(),
        space.n_experiments()
    );
    println!("{}", space.to_tsv());

    // Second transformation: the gene network.
    let threshold = 0.6;
    let network = Network::from_genome_space(&space, threshold);
    println!("== gene network (|pearson| >= {threshold}) ==");
    let mut table = Table::new(&["gene_a", "gene_b", "weight"]);
    for (a, b, w) in &network.edges {
        table.row(&[network.nodes[*a].clone(), network.nodes[*b].clone(), format!("{w:.3}")]);
    }
    println!("{}", table.render());
    let (_, components) = network.components();
    println!(
        "nodes: {}, edges: {}, components: {}, mean |weight|: {:.3}",
        network.n_nodes(),
        network.n_edges(),
        components,
        network.mean_weight()
    );
    println!("hubs: {:?}", network.hubs(3));

    // Region clustering over the same space.
    let clustering = kmeans(&space, 3, 50, 11);
    println!("\n== k-means clustering of gene profiles (k=3) ==");
    for (key, cluster) in space.regions.iter().zip(&clustering.assignment) {
        println!("  {key} -> cluster {cluster}");
    }
    println!("inertia: {:.2} after {} iterations", clustering.inertia, clustering.iterations);

    // Latent structure (§4.1's "advanced latent semantic analysis"):
    // principal components of the gene × experiment matrix.
    let p = pca(&space, 2, 200);
    println!("\n== PCA of gene profiles ==");
    println!(
        "explained variance: {:?}",
        p.explained_variance.iter().map(|v| format!("{v:.1}")).collect::<Vec<_>>()
    );
    for (key, score) in space.regions.iter().zip(&p.scores) {
        println!("  {key}: PC1 {:+.2}  PC2 {:+.2}", score[0], score[1]);
    }
}
