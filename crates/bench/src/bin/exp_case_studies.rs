//! **E4 + E5** — the §3 case studies, as a reproducible report.
//!
//! Compact re-runs of `examples/cancer_replication.rs` (E4) and
//! `examples/ctcf_loops.rs` (E5), printing one summary table each: the
//! planted-signal recovery metrics that show the GMQL formulations of
//! both open problems extract the intended biology.

use nggc_analysis::region_enrichment;
use nggc_bench::Table;
use nggc_core::GmqlEngine;
use nggc_synth::{
    generate_ctcf_study, generate_replication_study, CtcfStudyConfig, Genome,
    ReplicationStudyConfig,
};
use std::collections::BTreeSet;

fn e4() {
    let genome = Genome::human(0.01);
    let study = generate_replication_study(&genome, &ReplicationStudyConfig::default());
    let mut engine = GmqlEngine::with_workers(2);
    engine.register(study.expression.clone());
    engine.register(study.breaks.clone());
    engine.register(study.mutations.clone());

    let out = engine
        .run(
            "CONTROL = SELECT(condition == 'control') EXPRESSION;
             INDUCED = SELECT(condition == 'induced') EXPRESSION;
             BOTH    = JOIN(DLE(-1); output: LEFT) CONTROL INDUCED;
             DISREG  = SELECT(region: left.expression > right.expression * 2
                              AND left.gene == right.gene) BOTH;
             BROKEN  = JOIN(DLE(0); output: LEFT) DISREG BREAKS;
             RESULT  = MAP(mutation_count AS COUNT) BROKEN MUTATIONS;
             MATERIALIZE RESULT;",
        )
        .expect("pipeline runs");
    let result = &out["RESULT"];
    let gene_pos = result.schema.position("left.left.gene").expect("gene attr");
    let count_pos = result.schema.position("mutation_count").expect("count attr");

    let mut candidates: BTreeSet<String> = BTreeSet::new();
    let mut muts = 0u64;
    let mut bp = 0u64;
    let mut seen: BTreeSet<(String, u64, u64)> = BTreeSet::new();
    for s in &result.samples {
        for r in &s.regions {
            if let Some(g) = r.values[gene_pos].as_str() {
                candidates.insert(g.to_owned());
            }
            if seen.insert((r.chrom.as_str().to_owned(), r.left, r.right)) {
                muts += r.values[count_pos].as_i64().unwrap_or(0).max(0) as u64;
                bp += r.len();
            }
        }
    }
    let planted: BTreeSet<String> = study.disregulated.iter().cloned().collect();
    let tp = candidates.intersection(&planted).count();
    let enrich =
        region_enrichment(muts, study.mutations.region_count() as u64, bp, genome.total_len());

    println!("== E4: §3 problem 1 — mutations / breaks / dis-regulation ==\n");
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["planted dis-regulated genes".into(), planted.len().to_string()]);
    t.row(&["candidate genes extracted".into(), candidates.len().to_string()]);
    t.row(&["recovered (true positives)".into(), tp.to_string()]);
    t.row(&["recall".into(), format!("{:.3}", tp as f64 / planted.len() as f64)]);
    t.row(&["precision".into(), format!("{:.3}", tp as f64 / candidates.len().max(1) as f64)]);
    t.row(&["mutation fold enrichment".into(), format!("{:.1}", enrich.fold)]);
    t.row(&["binomial p-value".into(), format!("{:.2e}", enrich.p_value)]);
    println!("{}", t.render());
}

fn e5() {
    let genome = Genome::human(0.02);
    let study = generate_ctcf_study(&genome, &CtcfStudyConfig::default());
    let mut engine = GmqlEngine::with_workers(2);
    engine.register(study.loops.clone());
    engine.register(study.marks.clone());
    engine.register(study.annotations.clone());
    engine.register(study.expression.clone());

    let out = engine
        .run(
            "K27    = SELECT(antibody == 'H3K27ac') MARKS;
             K4ME1  = SELECT(antibody == 'H3K4me1') MARKS;
             K4ME3  = SELECT(antibody == 'H3K4me3') MARKS;
             ENH0   = JOIN(DLE(-1); output: INT) K27 K4ME1;
             ENH    = PROJECT(esig AS left.signal) ENH0;
             PROMS  = SELECT(region: annType == 'promoter') ANNOTATIONS;
             APROM0 = JOIN(DLE(-1); output: LEFT) PROMS K4ME3;
             APROM1 = PROJECT(gene0 AS left.name) APROM0;
             EXPR   = SELECT(region: expression > 10) EXPRESSION;
             APROM2 = JOIN(DLE(0); output: LEFT) APROM1 EXPR;
             APROM3 = SELECT(region: left.gene0 == right.gene) APROM2;
             APROM  = PROJECT(gene AS left.gene0) APROM3;
             LE0    = JOIN(DLE(-1); output: RIGHT) CTCF_LOOPS ENH;
             LE     = PROJECT(eloop AS left.loop_id) LE0;
             LP0    = JOIN(DLE(-1); output: RIGHT) CTCF_LOOPS APROM;
             LP     = PROJECT(ploop AS left.loop_id, pgene AS right.gene) LP0;
             PAIRS0 = JOIN(DLE(500000); output: CAT) LE LP;
             PAIRS  = SELECT(region: left.eloop == right.ploop) PAIRS0;
             MATERIALIZE PAIRS;",
        )
        .expect("pipeline runs");
    let pairs = &out["PAIRS"];
    let gene_pos = pairs.schema.position("right.pgene").expect("gene attr");
    let mut candidate_genes: BTreeSet<String> = BTreeSet::new();
    for s in &pairs.samples {
        for r in &s.regions {
            if let Some(g) = r.values[gene_pos].as_str() {
                candidate_genes.insert(g.to_owned());
            }
        }
    }
    let planted: BTreeSet<String> = study.true_pairs.iter().map(|(_, g)| g.clone()).collect();
    let tp = candidate_genes.intersection(&planted).count();

    println!("== E5: §3 problem 2 / Figure 3 — CTCF loops & enhancers ==\n");
    let mut t = Table::new(&["metric", "value"]);
    t.row(&["CTCF loops".into(), study.loops.region_count().to_string()]);
    t.row(&["planted enhancer→gene pairs".into(), study.true_pairs.len().to_string()]);
    t.row(&["candidate genes extracted".into(), candidate_genes.len().to_string()]);
    t.row(&["recovered (true positives)".into(), tp.to_string()]);
    t.row(&["recall".into(), format!("{:.3}", tp as f64 / planted.len().max(1) as f64)]);
    t.row(&["precision".into(), format!("{:.3}", tp as f64 / candidate_genes.len().max(1) as f64)]);
    println!("{}", t.render());
}

fn main() {
    e4();
    e5();
}
