//! Instrumentation-overhead smoke test: the §2 MAP workload with the
//! metrics registry and span fan-out disabled vs. enabled.
//!
//! The observability layer's contract (`docs/observability.md`) is
//! that it stays out of the hot path: counters are lock-free adds and
//! spans short-circuit when nobody subscribes, so turning the registry
//! on must not move query latency by more than a noise bar. CI runs
//! this with a 2% default bar and fails the build when instrumentation
//! regresses past it.
//!
//! Usage: `exp_obs_overhead [scale] [max_overhead_pct] [rounds]`
//! (defaults 0.01, 2.0, 7). Rounds interleave the two configurations
//! and timings are best-of-`rounds` minima, which is the standard way
//! to cut scheduler noise on shared CI runners — the minimum estimates
//! the true cost, the mean estimates the noise.

use nggc_bench::{map_workload, MapWorkload, MAP_QUERY};
use nggc_core::GmqlEngine;
use std::time::{Duration, Instant};

fn one_run(w: &MapWorkload, workers: usize) -> Duration {
    // Fresh engine per run (cloned inputs) so engine state is identical
    // across rounds and across both configurations; only the query
    // itself is timed.
    let mut engine = GmqlEngine::with_workers(workers);
    engine.register(w.encode.clone());
    engine.register(w.annotations.clone());
    let t0 = Instant::now();
    let out = engine.run(MAP_QUERY).expect("query runs");
    let elapsed = t0.elapsed();
    assert!(!out["RESULT"].samples.is_empty(), "workload produced output");
    elapsed
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let bar_pct: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2.0);
    let rounds: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    println!("== instrumentation overhead smoke (scale {scale}, {workers} workers) ==\n");

    let w = map_workload(scale, 42);

    // Warm-up passes so code/allocator state doesn't bias whichever
    // configuration runs first.
    one_run(&w, workers);
    one_run(&w, workers);

    // Interleave the configurations round by round so frequency ramps
    // and allocator drift hit both sides equally, and take the minimum
    // of each side.
    let (mut off, mut on) = (Duration::MAX, Duration::MAX);
    for _ in 0..rounds {
        nggc_obs::metrics::set_enabled(false);
        off = off.min(one_run(&w, workers));
        nggc_obs::metrics::set_enabled(true);
        on = on.min(one_run(&w, workers));
    }

    let overhead_pct = (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
    println!("metrics off (best of {rounds}): {off:.2?}");
    println!("metrics on  (best of {rounds}): {on:.2?}");
    println!("overhead: {overhead_pct:+.2}% (bar: {bar_pct}%)");

    if overhead_pct > bar_pct {
        eprintln!("FAIL: instrumentation overhead {overhead_pct:+.2}% exceeds the {bar_pct}% bar");
        std::process::exit(1);
    }
    println!("OK: within the bar");
}
