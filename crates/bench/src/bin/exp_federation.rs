//! **E7** — federation: ship-query vs ship-data (§4.4).
//!
//! The paper claims GMQL queries over a federation "are short texts and
//! produce short answers", so moving the query to the data beats today's
//! full-data-transmission practice. This binary quantifies that on a
//! three-node federation at growing data sizes: bytes moved and wall
//! time for both strategies, plus the cost of remote compilation with
//! size estimates (which moves only protocol-sized messages).
//!
//! Usage: `exp_federation [samples_per_node]` (default 8).

use nggc_bench::{human_bytes, Table};
use nggc_federation::{Federation, FederationNode, TransferLog};
use nggc_synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};
use std::time::Instant;

const QUERY: &str = "
    PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
    R     = MAP(peak_count AS COUNT) PROMS PEAKS;
    HOT   = SELECT(region: peak_count >= 3) R;
    MATERIALIZE HOT;
";

fn main() {
    let samples: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let genome = Genome::human(0.004);
    println!("== E7: ship-query vs ship-data over a 3-node federation ==\n");

    let mut table = Table::new(&[
        "peaks/node",
        "query_bytes",
        "data_bytes",
        "byte_ratio",
        "query_time",
        "data_time",
    ]);
    for mean_peaks in [500.0, 2_000.0, 8_000.0] {
        let mut federation = Federation::new();
        let mut node_peaks = 0;
        for (i, id) in ["polimi", "broad", "sanger"].iter().enumerate() {
            let mut node = FederationNode::new(*id, 2);
            let mut encode = generate_encode(
                &genome,
                &EncodeConfig {
                    samples,
                    mean_peaks_per_sample: mean_peaks,
                    seed: i as u64 + 1,
                    ..Default::default()
                },
            );
            encode.name = "ENCODE".into();
            node_peaks = encode.region_count();
            node.own(encode);
            let (mut ann, _) = generate_annotations(
                &genome,
                &AnnotationConfig { genes: 200, seed: 77, ..Default::default() },
            );
            ann.name = "ANNOTATIONS".into();
            node.own(ann);
            federation.add_node(node);
        }

        // Compile first: correctness + estimates, tiny transfer.
        let mut clog = TransferLog::default();
        let estimates = federation.compile_remote("polimi", QUERY, &mut clog).expect("compiles");
        assert!(!estimates.is_empty());

        let t0 = Instant::now();
        let (q_out, q_log) = federation.ship_query("polimi", QUERY, 64 * 1024).expect("ship-query");
        let q_time = t0.elapsed();

        let t0 = Instant::now();
        let (d_out, d_log) = federation
            .ship_data("polimi", &["ANNOTATIONS", "ENCODE"], QUERY, 2)
            .expect("ship-data");
        let d_time = t0.elapsed();

        assert_eq!(q_out["HOT"].region_count(), d_out["HOT"].region_count());
        table.row(&[
            node_peaks.to_string(),
            human_bytes(q_log.total()),
            human_bytes(d_log.total()),
            format!("{:.1}x", d_log.total() as f64 / q_log.total().max(1) as f64),
            format!("{q_time:.2?}"),
            format!("{d_time:.2?}"),
        ]);
    }
    println!("{}", table.render());
    println!("remote compilation (schemas + size estimates) moves <1 KiB per query.");
}
