//! **E8 + E9** — search quality (§4.5) and the Internet of Genomes.
//!
//! E8: precision/recall/F1 of the three metadata-search rankers
//! (Boolean, TF-IDF, ontology-expanded) on a corpus with planted
//! relevance — the paper's "classical measures of precision and recall".
//!
//! E9: crawl throughput and freshness of the Internet-of-Genomes
//! simulation — hosts publishing datasets, a polite incremental crawler,
//! snippet search, asynchronous downloads.
//!
//! Usage: `exp_search [--no-iog]` (both run by default; `--no-iog` keeps E8 only).

use nggc_bench::{human_bytes, Table};
use nggc_gdm::{Dataset, Metadata, Sample, Schema};
use nggc_ontology::mini_umls;
use nggc_repository::{MetaIndex, SampleRef};
use nggc_search::{evaluate, Host, MetadataSearch, RankMode, SearchService, SimulatedHost};
use nggc_synth::{generate_encode, EncodeConfig, Genome};
use std::time::Instant;

/// Build a corpus where relevance to each query is planted by
/// construction (cancer cell lines are relevant to "cancer", etc.).
fn corpus() -> (MetaIndex, Vec<(String, Vec<SampleRef>)>) {
    let cells: [(&str, bool, bool); 9] = [
        // (cell line, is cancer, is blood)
        ("HeLa-S3", true, false),
        ("K562", true, true),
        ("HepG2", true, false),
        ("A549", true, false),
        ("MCF-7", true, false),
        ("GM12878", false, true),
        ("IMR90", false, false),
        ("H1-hESC", false, false),
        ("SK-N-SH", true, false),
    ];
    let mut ds = Dataset::new("CORPUS", Schema::empty());
    let mut cancer_rel = Vec::new();
    let mut blood_rel = Vec::new();
    for (i, (cell, is_cancer, is_blood)) in cells.iter().enumerate() {
        for rep in 0..3 {
            let name = format!("s{i}_{rep}");
            ds.add_sample(Sample::new(name.clone(), "CORPUS").with_metadata(Metadata::from_pairs(
                [
                    ("cell", *cell),
                    ("antibody", if rep == 0 { "CTCF" } else { "H3K27ac" }),
                    ("assay", "ChipSeq"),
                ],
            )))
            .expect("sample ok");
            let sref = SampleRef { dataset: "CORPUS".into(), sample: name };
            if *is_cancer {
                cancer_rel.push(sref.clone());
            }
            if *is_blood {
                blood_rel.push(sref);
            }
        }
    }
    let mut idx = MetaIndex::new();
    idx.add_dataset(&ds);
    (idx, vec![("cancer".into(), cancer_rel), ("blood".into(), blood_rel)])
}

fn run_e8() {
    println!("== E8: metadata search — precision / recall / F1 ==\n");
    let (idx, queries) = corpus();
    let onto = mini_umls();
    let search = MetadataSearch::new(&idx, Some(&onto));
    let mut table = Table::new(&["query", "ranker", "hits", "precision", "recall", "f1"]);
    for (query, relevant) in &queries {
        for (label, mode) in [
            ("boolean", RankMode::Boolean),
            ("tf-idf", RankMode::TfIdf),
            ("ontology", RankMode::Expanded),
        ] {
            let hits = search.search(query, mode);
            let e = evaluate(&hits, relevant);
            table.row(&[
                query.clone(),
                label.to_string(),
                hits.len().to_string(),
                format!("{:.2}", e.precision),
                format!("{:.2}", e.recall),
                format!("{:.2}", e.f1),
            ]);
        }
    }
    println!("{}", table.render());
    println!("expected shape: ontology expansion lifts recall from 0 to ≈1 at full precision.\n");
}

fn run_e9() {
    println!("== E9: Internet of Genomes — crawl & search ==\n");
    let genome = Genome::human(0.0005);
    let n_hosts = 20;
    let mut hosts: Vec<SimulatedHost> = Vec::new();
    for h in 0..n_hosts {
        let mut host = SimulatedHost::new(format!("center{h:02}.example"));
        for d in 0..3 {
            let mut ds = generate_encode(
                &genome,
                &EncodeConfig {
                    samples: 4,
                    mean_peaks_per_sample: 60.0,
                    seed: (h * 31 + d) as u64,
                    ..Default::default()
                },
            );
            ds.name = format!("DS_{h:02}_{d}");
            host.publish(ds);
        }
        hosts.push(host);
    }
    let refs: Vec<&dyn Host> = hosts.iter().map(|h| h as &dyn Host).collect();

    let mut service = SearchService::new(1);
    let t0 = Instant::now();
    let stats = service.crawl(&refs);
    let crawl_time = t0.elapsed();
    let mut table = Table::new(&["metric", "value"]);
    table.row(&["hosts visited".into(), stats.hosts_visited.to_string()]);
    table.row(&["entries discovered".into(), stats.entries_seen.to_string()]);
    table.row(&["entries indexed".into(), stats.entries_indexed.to_string()]);
    table.row(&["datasets cached".into(), stats.datasets_fetched.to_string()]);
    table.row(&["bytes fetched".into(), human_bytes(stats.bytes_fetched)]);
    table.row(&["crawl time".into(), format!("{crawl_time:.2?}")]);

    // Freshness: update 5 hosts, re-crawl.
    for host in hosts.iter_mut().take(5) {
        let mut ds = generate_encode(
            &genome,
            &EncodeConfig {
                samples: 4,
                mean_peaks_per_sample: 60.0,
                seed: 999,
                ..Default::default()
            },
        );
        ds.name = "DS_UPDATED".into();
        host.publish(ds);
    }
    let refs: Vec<&dyn Host> = hosts.iter().map(|h| h as &dyn Host).collect();
    let stats2 = service.crawl(&refs);
    table.row(&["re-indexed after 5 updates".into(), stats2.entries_indexed.to_string()]);

    let t0 = Instant::now();
    let hits = service.search("CTCF ChipSeq");
    let search_time = t0.elapsed();
    table.row(&["snippet hits for 'CTCF ChipSeq'".into(), hits.len().to_string()]);
    table.row(&["search latency".into(), format!("{search_time:.2?}")]);

    // Async download of the first non-cached hit.
    if let Some(remote) = hits.iter().find(|s| !s.cached) {
        service.request_download(&remote.link);
        let done = service.poll_downloads(&refs, 4);
        table.row(&["async downloads completed".into(), done.len().to_string()]);
    }
    println!("{}", table.render());
}

fn main() {
    run_e8();
    // E9 runs by default; `--no-iog` restricts the binary to E8.
    if !std::env::args().any(|a| a == "--no-iog") {
        run_e9();
    }
}
