//! **E12** — scan pruning: predicate/projection pushdown vs full scan.
//!
//! The v2 container's chrom index is an offset table (docs/storage.md);
//! the ScanSpec derivation pass (`nggc_core::derive_scan_specs`) pushes
//! SELECT region predicates and projections down into it, so a
//! chromosome-selective query decodes only the blocks it can touch.
//! This experiment measures, on the E-series ENCODE-shaped synthetic
//! dataset, a chr-filtered query executed cold two ways:
//!
//! * **full** — every source load decodes the whole container
//!   (pre-pushdown behaviour, still parallel per block);
//! * **pruned** — `Repository::load_pruned` serves the derived spec
//!   from the chrom index.
//!
//! Asserted acceptance bars: the pruned run must read strictly fewer
//! container bytes than the dataset holds, and the cold query must run
//! at least 2× faster. Results are written as a JSON artifact
//! (`BENCH_scan_pruning.json` by default, committed at the repo root).
//!
//! Usage: `exp_scan_pruning [scale] [--iters N] [--json PATH]`
//! (default scale 0.005, 5 iterations; best-of-N timings).

use nggc_bench::{human_bytes, map_workload, Table};
use nggc_core::{self as gmql, DatasetProvider};
use nggc_engine::ExecContext;
use nggc_formats::native_v2::{self, ScanOptions};
use nggc_gdm::Dataset;
use nggc_repository::Repository;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn best_of(iters: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..iters).map(|_| f()).min().expect("at least one iteration")
}

/// Full-scan baseline: shared-`Arc` loads with the default
/// `load_pruned` (which falls back to a full load).
struct FullProvider<'a>(&'a Repository);

impl DatasetProvider for FullProvider<'_> {
    fn load(&self, name: &str) -> Result<Dataset, gmql::GmqlError> {
        self.load_shared(name).map(|d| (*d).clone())
    }

    fn load_shared(&self, name: &str) -> Result<Arc<Dataset>, gmql::GmqlError> {
        self.0.load(name).map_err(|e| gmql::GmqlError::runtime(e.to_string()))
    }
}

/// Pushdown path: non-trivial ScanSpecs go through the repository's
/// pruned container read (same wiring as the CLI's `RepoProvider`).
struct PrunedProvider<'a>(&'a Repository);

impl DatasetProvider for PrunedProvider<'_> {
    fn load(&self, name: &str) -> Result<Dataset, gmql::GmqlError> {
        self.load_shared(name).map(|d| (*d).clone())
    }

    fn load_shared(&self, name: &str) -> Result<Arc<Dataset>, gmql::GmqlError> {
        self.0.load(name).map_err(|e| gmql::GmqlError::runtime(e.to_string()))
    }

    fn load_pruned(
        &self,
        name: &str,
        spec: &gmql::ScanSpec,
    ) -> Result<Arc<Dataset>, gmql::GmqlError> {
        let opts = ScanOptions { chroms: spec.chroms.clone(), columns: spec.columns.clone() };
        self.0.load_pruned(name, &opts).map_err(|e| gmql::GmqlError::runtime(e.to_string()))
    }
}

fn main() {
    let mut scale = 0.005f64;
    let mut iters = 5usize;
    let mut json_path = "BENCH_scan_pruning.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iters" => iters = args.next().and_then(|v| v.parse().ok()).unwrap_or(iters),
            "--json" => json_path = args.next().unwrap_or(json_path),
            other => {
                if let Ok(s) = other.parse() {
                    scale = s;
                }
            }
        }
    }

    println!("== E12: scan pruning — chr-filtered query, pruned vs full cold scan ==\n");
    let w = map_workload(scale, 42);
    let dataset = w.encode;
    let n_chroms = w.genome.chromosomes().len();
    println!(
        "workload: scale {scale} — {} samples, {} regions, {} chromosomes",
        dataset.sample_count(),
        dataset.region_count(),
        n_chroms,
    );

    let root = std::env::temp_dir().join(format!("nggc_exp_scan_pruning_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    {
        let mut repo = Repository::open(&root).expect("open repo");
        repo.save(&dataset).expect("save dataset");
    }

    // Target the chromosome with the most regions — the worst case for
    // pruning (the biggest surviving block), so the bars below are
    // conservative.
    let chrom = {
        let mut counts = std::collections::HashMap::new();
        for s in &dataset.samples {
            for r in &s.regions {
                *counts.entry(r.chrom.to_string()).or_insert(0usize) += 1;
            }
        }
        counts.into_iter().max_by_key(|&(_, n)| n).expect("non-empty dataset").0
    };
    let query = format!("X = SELECT(region: chr == '{chrom}') {}; MATERIALIZE X;", dataset.name);
    println!("query: {query}\n");

    let ctx = ExecContext::with_workers(
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
    );
    let opts = gmql::ExecOptions::default();

    // Byte accounting from the derived spec itself, via a direct pruned
    // container read (exactly what the repository issues).
    let statements = gmql::parse(&query).expect("parse");
    let catalog = Repository::open(&root).expect("open repo");
    let plan =
        gmql::LogicalPlan::compile(&statements, &|name| catalog.schema_of(name)).expect("compile");
    let (optimized, _) = gmql::optimize(&plan);
    let specs = gmql::derive_scan_specs(&optimized);
    let spec = specs.values().next().expect("one source");
    let scan_opts = ScanOptions { chroms: spec.chroms.clone(), columns: spec.columns.clone() };
    let container_dir = root.join("datasets").join(&dataset.name);
    let (_, stats) =
        native_v2::read_dataset_v2_pruned(&container_dir, &scan_opts).expect("pruned read");

    // Cold runs: reopen the repository each iteration so the LRU never
    // serves a warm Arc; both sides pay the same open cost outside the
    // timed region.
    let mut full_regions = 0;
    let full_cold = best_of(iters, || {
        let repo = Repository::open(&root).expect("open repo");
        let provider = FullProvider(&repo);
        let t0 = Instant::now();
        let out =
            gmql::run_with_provider(&query, &|name| repo.schema_of(name), &provider, &ctx, &opts)
                .expect("full query");
        let elapsed = t0.elapsed();
        full_regions = out["X"].region_count();
        elapsed
    });
    let mut pruned_regions = 0;
    let pruned_cold = best_of(iters, || {
        let repo = Repository::open(&root).expect("open repo");
        let provider = PrunedProvider(&repo);
        let t0 = Instant::now();
        let out =
            gmql::run_with_provider(&query, &|name| repo.schema_of(name), &provider, &ctx, &opts)
                .expect("pruned query");
        let elapsed = t0.elapsed();
        pruned_regions = out["X"].region_count();
        elapsed
    });
    assert_eq!(full_regions, pruned_regions, "pruned query must return identical results");

    let mut table = Table::new(&["path", "cold query", "container bytes read"]);
    table.row(&[
        "full scan".into(),
        format!("{full_cold:.2?}"),
        human_bytes(stats.container_bytes as usize),
    ]);
    table.row(&[
        format!("pruned [{chrom}]"),
        format!("{pruned_cold:.2?}"),
        format!(
            "{} ({}/{} blocks)",
            human_bytes(stats.bytes_read as usize),
            stats.blocks_read,
            stats.blocks_read + stats.blocks_skipped,
        ),
    ]);
    println!("{}", table.render());

    let speedup = full_cold.as_secs_f64() / pruned_cold.as_secs_f64();
    println!("scan spec: {}", spec.render(Some(dataset.schema.len())));
    println!(
        "bytes: {} read vs {} total ({:.1}% skipped)",
        human_bytes(stats.bytes_read as usize),
        human_bytes(stats.container_bytes as usize),
        100.0 * stats.bytes_skipped as f64 / (stats.bytes_read + stats.bytes_skipped) as f64,
    );
    println!("cold-query speedup pruned over full: {speedup:.2}× (acceptance bar: ≥ 2×)");
    assert!(
        stats.bytes_read < stats.container_bytes,
        "pruned read must touch fewer bytes than the container holds"
    );
    assert!(
        speedup >= 2.0,
        "chr-filtered query must run at least 2× faster pruned (got {speedup:.2}×)"
    );

    let json = format!(
        "{{\n  \"experiment\": \"scan_pruning\",\n  \"scale\": {scale},\n  \"samples\": {},\n  \
         \"regions\": {},\n  \"chromosomes\": {n_chroms},\n  \"query_chrom\": \"{chrom}\",\n  \
         \"scan_spec\": \"{}\",\n  \"container_bytes\": {},\n  \"bytes_read\": {},\n  \
         \"bytes_skipped\": {},\n  \"blocks_read\": {},\n  \"blocks_skipped\": {},\n  \
         \"full_cold_us\": {},\n  \"pruned_cold_us\": {},\n  \"speedup\": {speedup:.2}\n}}\n",
        dataset.sample_count(),
        dataset.region_count(),
        spec.render(Some(dataset.schema.len())),
        stats.container_bytes,
        stats.bytes_read,
        stats.bytes_skipped,
        stats.blocks_read,
        stats.blocks_skipped,
        full_cold.as_micros(),
        pruned_cold.as_micros(),
    );
    std::fs::write(&json_path, json).expect("write bench json");
    println!("results written to {json_path}");
    std::fs::remove_dir_all(&root).ok();
}
