//! **E1** — the paper's §2 ENCODE MAP experiment, at configurable scale.
//!
//! Paper: "This query above was executed over 2,423 ENCODE samples
//! including a total of 83,899,526 peaks, which were mapped to 131,780
//! promoters, producing as result 29 GB of data."
//!
//! We run the same three-operation query over ENCODE-shaped synthetic
//! data at a sweep of scale factors and report the measured
//! cardinalities next to the paper's, plus the per-scale extrapolation
//! of the output size to scale 1.0 (which should land in the tens of
//! gigabytes, matching the paper's 29 GB shape).
//!
//! Usage: `exp_map_encode [max_scale]` (default 0.02).

use nggc_bench::{human_bytes, map_workload, paper, Table, MAP_QUERY};
use nggc_core::GmqlEngine;
use std::time::Instant;

fn main() {
    let max_scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let scales: Vec<f64> = [0.002, 0.005, 0.01, 0.02, 0.05, 0.1]
        .into_iter()
        .filter(|&s| s <= max_scale + 1e-12)
        .collect();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);

    println!("== E1: §2 ENCODE MAP experiment (synthetic, {workers} workers) ==\n");
    println!(
        "paper reference @ scale 1.0: {} samples, {} peaks, {} promoters, {}",
        paper::SAMPLES,
        paper::PEAKS,
        paper::PROMOTERS,
        human_bytes(paper::OUTPUT_BYTES)
    );
    println!();

    let mut table = Table::new(&[
        "scale",
        "samples",
        "peaks",
        "promoters",
        "out_samples",
        "out_regions",
        "out_bytes",
        "extrap@1.0",
        "time",
    ]);
    for scale in scales {
        let w = map_workload(scale, 42);
        let promoters = w.annotations.region_count() / 2; // genes + promoters
        let peaks = w.encode.region_count();
        let samples = w.encode.sample_count();

        let mut engine = GmqlEngine::with_workers(workers);
        engine.register(w.encode);
        engine.register(w.annotations);
        let t0 = Instant::now();
        let out = engine.run(MAP_QUERY).expect("query runs");
        let elapsed = t0.elapsed();
        let result = &out["RESULT"];
        let out_bytes = result.encoded_size();
        // Output grows with samples × promoters, i.e. quadratically in the
        // scale factor: extrapolate accordingly.
        let extrap = (out_bytes as f64 / (scale * scale)) as usize;

        table.row(&[
            format!("{scale}"),
            samples.to_string(),
            peaks.to_string(),
            promoters.to_string(),
            result.sample_count().to_string(),
            result.region_count().to_string(),
            human_bytes(out_bytes),
            human_bytes(extrap),
            format!("{elapsed:.2?}"),
        ]);

        // Shape checks mirroring the paper's cardinality structure.
        assert_eq!(result.sample_count(), samples, "one output sample per input sample");
        assert_eq!(
            result.region_count(),
            samples * promoters,
            "each output sample holds every promoter"
        );
    }
    println!("{}", table.render());
    println!("shape check: output samples = input samples; output regions = samples × promoters ✓");
    println!("(the paper's 2,423 × 131,780 = {} regions ≈ 29 GB)", 2_423usize * 131_780);
}
