//! **E7b** — multi-node distributed execution (§4.4).
//!
//! A federation where the datasets a query needs live on *different*
//! nodes: ANNOTATIONS on one, per-center ENCODE slices on others. The
//! coordinator places execution on the owner of the largest referenced
//! bytes, ships the smaller datasets there as private temporary uploads,
//! and retrieves only results — reporting placement and bytes at growing
//! annotation sizes.

use nggc_bench::{human_bytes, Table};
use nggc_federation::{Federation, FederationNode};
use nggc_synth::{generate_annotations, generate_encode, AnnotationConfig, EncodeConfig, Genome};
use std::time::Instant;

const QUERY: &str = "
    PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
    PEAKS = SELECT(dataType == 'ChipSeq') ENCODE;
    R     = MAP(peak_count AS COUNT) PROMS PEAKS;
    HOT   = SELECT(region: peak_count >= 2) R;
    MATERIALIZE HOT;
";

fn main() {
    let genome = Genome::human(0.003);
    println!("== E7b: distributed execution across dataset owners ==\n");
    let mut table =
        Table::new(&["genes@broad", "host", "shipped", "bytes_moved", "time", "regions"]);
    for genes in [100usize, 400, 1200] {
        let mut federation = Federation::new();
        // polimi owns the (large) experiment data.
        let mut polimi = FederationNode::new("polimi", 2);
        let mut encode = generate_encode(
            &genome,
            &EncodeConfig {
                samples: 8,
                mean_peaks_per_sample: 4_000.0,
                seed: 11,
                ..Default::default()
            },
        );
        encode.name = "ENCODE".into();
        polimi.own(encode);
        federation.add_node(polimi);
        // broad owns the (smaller) annotation.
        let mut broad = FederationNode::new("broad", 2);
        let (mut ann, _) = generate_annotations(
            &genome,
            &AnnotationConfig { genes, seed: 5, ..Default::default() },
        );
        ann.name = "ANNOTATIONS".into();
        broad.own(ann);
        federation.add_node(broad);

        let t0 = Instant::now();
        let (out, plan, log) =
            federation.execute_distributed(QUERY, 64 * 1024).expect("distributed run");
        let elapsed = t0.elapsed();
        table.row(&[
            genes.to_string(),
            plan.host.clone(),
            plan.shipped
                .iter()
                .map(|(d, owner)| format!("{d}<-{owner}"))
                .collect::<Vec<_>>()
                .join(","),
            human_bytes(log.total()),
            format!("{elapsed:.2?}"),
            out["HOT"].region_count().to_string(),
        ]);
        assert_eq!(plan.host, "polimi", "execution follows the big data");
    }
    println!("{}", table.render());
    println!(
        "placement follows the data: the annotation (small) travels as a private upload;\n\
         the experiments (large) never move — §4.4's \"distributing the processing to data\"."
    );
}
