//! **E6** — parallel-framework comparison (§4.2 / paper ref [10]).
//!
//! The paper's companion study evaluates Flink and Spark "on three
//! genomic queries inspired by GMQL". We reproduce the *shape* of that
//! study on the hand-built engine: the same three query archetypes —
//! a MAP (aggregation of experiments over references), a genometric
//! JOIN (distance ≤ d), and a COVER/HISTOGRAM (accumulation) — executed
//! serially and with increasing worker counts.
//!
//! Note: on a single-hardware-thread machine the speedups degenerate to
//! ≈1 and mostly measure scheduling overhead; on a multi-core machine
//! the sample-parallel decomposition scales with min(workers, samples).
//!
//! Usage: `exp_parallel_scaling [scale]` (default 0.005).

use nggc_bench::{map_workload, Table};
use nggc_core::GmqlEngine;
use std::time::Instant;

const QUERIES: [(&str, &str); 3] = [
    (
        "Q1-MAP",
        "PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
         R = MAP(n AS COUNT, s AS AVG(signal_value)) PROMS ENCODE;
         MATERIALIZE R;",
    ),
    (
        "Q2-JOIN",
        "PROMS = SELECT(region: annType == 'promoter') ANNOTATIONS;
         R = JOIN(DLE(20000); output: LEFT) PROMS ENCODE;
         MATERIALIZE R;",
    ),
    (
        "Q3-HISTO",
        "R = HISTOGRAM(2, ANY) ENCODE;
         MATERIALIZE R;",
    ),
];

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.005);
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let worker_counts: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&w| w <= (hw * 2).max(2)).collect();

    println!("== E6: three genomic queries, serial vs parallel engine ==");
    println!("(hardware threads: {hw}; workload scale {scale})\n");

    let w = map_workload(scale, 7);
    println!(
        "workload: {} samples, {} peaks, {} reference regions\n",
        w.encode.sample_count(),
        w.encode.region_count(),
        w.annotations.region_count() / 2
    );

    let mut table = Table::new(&["query", "workers", "time", "speedup", "out_regions"]);
    for (name, query) in QUERIES {
        let mut baseline = None;
        for &workers in &worker_counts {
            let mut engine = GmqlEngine::with_workers(workers);
            engine.register(w.encode.clone());
            engine.register(w.annotations.clone());
            // Warm-up + best-of-2 to damp scheduling noise.
            let mut best = f64::INFINITY;
            let mut out_regions = 0;
            for _ in 0..2 {
                let t0 = Instant::now();
                let out = engine.run(query).expect("query runs");
                best = best.min(t0.elapsed().as_secs_f64());
                out_regions = out.values().map(|d| d.region_count()).sum();
            }
            let base = *baseline.get_or_insert(best);
            table.row(&[
                name.to_string(),
                workers.to_string(),
                format!("{:.3}s", best),
                format!("{:.2}x", base / best),
                out_regions.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}
