//! Smoke tests: every experiment binary runs end to end at a tiny scale
//! and prints the expected table shape.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> String {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    assert!(out.status.success(), "{bin} failed:\n{}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn exp_map_encode_smoke() {
    let stdout = run(env!("CARGO_BIN_EXE_exp_map_encode"), &["0.002"]);
    assert!(stdout.contains("paper reference @ scale 1.0"));
    assert!(stdout.contains("extrap@1.0"));
    assert!(stdout.contains("shape check"));
}

#[test]
fn exp_genome_space_smoke() {
    let stdout = run(env!("CARGO_BIN_EXE_exp_genome_space"), &[]);
    assert!(stdout.contains("genome space"));
    assert!(stdout.contains("gene network"));
    assert!(stdout.contains("PCA of gene profiles"));
}

#[test]
fn exp_search_smoke() {
    let stdout = run(env!("CARGO_BIN_EXE_exp_search"), &[]);
    assert!(stdout.contains("precision"));
    assert!(stdout.contains("ontology"));
    assert!(stdout.contains("Internet of Genomes"));
    assert!(stdout.contains("re-indexed after 5 updates"));
}

#[test]
fn exp_federation_smoke() {
    let stdout = run(env!("CARGO_BIN_EXE_exp_federation"), &["4"]);
    assert!(stdout.contains("ship-query vs ship-data"));
    assert!(stdout.contains("byte_ratio"));
}

#[test]
fn exp_parallel_scaling_smoke() {
    let stdout = run(env!("CARGO_BIN_EXE_exp_parallel_scaling"), &["0.002"]);
    assert!(stdout.contains("Q1-MAP"));
    assert!(stdout.contains("Q2-JOIN"));
    assert!(stdout.contains("Q3-HISTO"));
    assert!(stdout.contains("speedup"));
}

#[test]
fn exp_case_studies_smoke() {
    let stdout = run(env!("CARGO_BIN_EXE_exp_case_studies"), &[]);
    assert!(stdout.contains("E4"));
    assert!(stdout.contains("E5"));
    assert!(stdout.contains("recall"));
}

#[test]
fn exp_distributed_smoke() {
    let stdout = run(env!("CARGO_BIN_EXE_exp_distributed"), &[]);
    assert!(stdout.contains("distributed execution"));
    assert!(stdout.contains("ANNOTATIONS<-broad"));
    assert!(stdout.contains("polimi"));
}
