//! Per-operator benchmarks plus **E10c** — the metadata-first ablation.
//!
//! Measures the GMQL operators the three E6 queries exercise (MAP,
//! genometric JOIN, COVER/HISTOGRAM) at a fixed workload, and SELECT with
//! metadata-first evaluation on vs off (DESIGN.md §5 item 3: the GMQL
//! optimizer's decision to evaluate metadata predicates before any
//! region scan).

use criterion::{criterion_group, criterion_main, Criterion};
use nggc_bench::map_workload;
use nggc_core::{ExecOptions, GmqlEngine};
use std::hint::black_box;

fn engine(meta_first: bool) -> GmqlEngine {
    let w = map_workload(0.002, 5);
    let mut engine =
        GmqlEngine::with_workers(2).with_options(ExecOptions { meta_first, optimize: true });
    engine.register(w.encode);
    engine.register(w.annotations);
    engine
}

fn bench_operators(c: &mut Criterion) {
    let eng = engine(true);
    let mut group = c.benchmark_group("operators");
    group.sample_size(10);
    group.bench_function("map_count", |b| {
        b.iter(|| {
            black_box(
                eng.run(
                    "P = SELECT(region: annType == 'promoter') ANNOTATIONS;
                     R = MAP(n AS COUNT) P ENCODE; MATERIALIZE R;",
                )
                .expect("runs"),
            )
        })
    });
    group.bench_function("join_dle20k", |b| {
        b.iter(|| {
            black_box(
                eng.run(
                    "P = SELECT(region: annType == 'promoter') ANNOTATIONS;
                     R = JOIN(DLE(20000); output: LEFT) P ENCODE; MATERIALIZE R;",
                )
                .expect("runs"),
            )
        })
    });
    group.bench_function("histogram", |b| {
        b.iter(|| black_box(eng.run("R = HISTOGRAM(2, ANY) ENCODE; MATERIALIZE R;").expect("runs")))
    });
    group.bench_function("cover_2_any", |b| {
        b.iter(|| black_box(eng.run("R = COVER(2, ANY) ENCODE; MATERIALIZE R;").expect("runs")))
    });
    group.finish();
}

fn bench_meta_first(c: &mut Criterion) {
    // A selective metadata predicate: only a fraction of samples match,
    // so metadata-first skips most region scans.
    const QUERY: &str = "
        R = SELECT(cell == 'K562'; region: p_value < 0.0001) ENCODE;
        MATERIALIZE R;
    ";
    let mut group = c.benchmark_group("select_meta_first");
    group.sample_size(10);
    let on = engine(true);
    group.bench_function("meta_first_on", |b| b.iter(|| black_box(on.run(QUERY).expect("runs"))));
    let off = engine(false);
    group.bench_function("meta_first_off", |b| b.iter(|| black_box(off.run(QUERY).expect("runs"))));
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    // A diamond query whose two branches are identical: CSE halves the
    // SELECT work; SELECT-fusion collapses the stacked filters.
    const QUERY: &str = "
        A = SELECT(dataType == 'ChipSeq') ENCODE;
        B = SELECT(region: p_value < 0.5) A;
        C = SELECT(dataType == 'ChipSeq') ENCODE;
        D = SELECT(region: p_value < 0.5) C;
        M = MAP(n AS COUNT) B D;
        MATERIALIZE M;
    ";
    let mut group = c.benchmark_group("optimizer");
    group.sample_size(10);
    let on = engine(true); // optimize: true by default
    group.bench_function("optimize_on", |b| b.iter(|| black_box(on.run(QUERY).expect("runs"))));
    let w = map_workload(0.002, 5);
    let mut off_engine =
        GmqlEngine::with_workers(2).with_options(ExecOptions { meta_first: true, optimize: false });
    off_engine.register(w.encode);
    off_engine.register(w.annotations);
    group.bench_function("optimize_off", |b| {
        b.iter(|| black_box(off_engine.run(QUERY).expect("runs")))
    });
    group.finish();
}

criterion_group!(benches, bench_operators, bench_meta_first, bench_optimizer);
criterion_main!(benches);
