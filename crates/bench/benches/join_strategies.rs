//! **E10a/E10b** — join-strategy ablation and bin-width sweep.
//!
//! The GMQL cloud implementations partition genometric joins by genome
//! bins; this reproduction also provides a chrom-sweep sort-merge kernel
//! and the exhaustive baseline. The ablation measures all three on the
//! same workloads, plus the binned kernel across bin widths (DESIGN.md
//! §5 items 1–2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nggc_engine::{
    overlap_pairs_binned, overlap_pairs_naive, overlap_pairs_sort_merge, Binner, NcList,
};
use nggc_gdm::{GRegion, Strand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn regions(n: usize, span: u64, width: u64, seed: u64) -> Vec<GRegion> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<GRegion> = (0..n)
        .map(|_| {
            let l = rng.gen_range(0..span);
            let w = rng.gen_range(50..width);
            GRegion::new("chr1", l, l + w, Strand::Unstranded)
        })
        .collect();
    out.sort_by(|a, b| a.cmp_coords(b));
    out
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_strategies");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        let left = regions(n / 10, 10_000_000, 2_000, 1);
        let right = regions(n, 10_000_000, 400, 2);
        group.bench_with_input(BenchmarkId::new("sort_merge", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0usize;
                overlap_pairs_sort_merge(&left, &right, |_, _| count += 1);
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("binned_100k", n), &n, |b, _| {
            b.iter(|| {
                let mut count = 0usize;
                overlap_pairs_binned(&left, &right, Binner::new(100_000), |_, _| count += 1);
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("nclist_probe", n), &n, |b, _| {
            // Index build amortised across joins: build once, probe per left.
            let index = NcList::build(&right);
            b.iter(|| {
                let mut count = 0usize;
                for a in &left {
                    index.overlaps(a.left, a.right, |_| count += 1);
                }
                black_box(count)
            })
        });
        group.bench_with_input(BenchmarkId::new("nclist_build_probe", n), &n, |b, _| {
            b.iter(|| {
                let index = NcList::build(&right);
                let mut count = 0usize;
                for a in &left {
                    index.overlaps(a.left, a.right, |_| count += 1);
                }
                black_box(count)
            })
        });
        // The exhaustive baseline only at sizes where it finishes quickly.
        if n <= 5_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    let mut count = 0usize;
                    overlap_pairs_naive(&left, &right, |_, _| count += 1);
                    black_box(count)
                })
            });
        }
    }
    group.finish();
}

fn bench_bin_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("bin_width");
    group.sample_size(10);
    let left = regions(2_000, 10_000_000, 2_000, 3);
    let right = regions(20_000, 10_000_000, 400, 4);
    for &width in &[10_000u64, 100_000, 1_000_000, 10_000_000] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            b.iter(|| {
                let mut count = 0usize;
                overlap_pairs_binned(&left, &right, Binner::new(w), |_, _| count += 1);
                black_box(count)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_bin_width);
criterion_main!(benches);
