//! Custom query templates (§4.3).
//!
//! "It will be possible to choose among a set of custom queries,
//! representing the typical/most needed requests." A
//! [`CustomQueryCatalog`] holds named, parameterised GMQL templates;
//! users pick one, fill the parameters, and get runnable query text —
//! the repository-portal analogue of a saved-search library. The
//! built-in catalog ships the requests the paper's scenarios exercise.

use std::collections::BTreeMap;
use std::fmt;

/// One template parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateParam {
    /// Placeholder name (appears as `${name}` in the template).
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Default value, if any.
    pub default: Option<String>,
}

/// A parameterised GMQL query template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomQuery {
    /// Unique template name.
    pub name: String,
    /// What the query answers.
    pub description: String,
    /// GMQL text with `${param}` placeholders.
    pub template: String,
    /// Declared parameters.
    pub params: Vec<TemplateParam>,
}

/// Errors instantiating a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// No template with the requested name.
    UnknownTemplate(String),
    /// A required parameter was not supplied and has no default.
    MissingParam(String),
    /// A supplied parameter is not declared by the template.
    UnknownParam(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnknownTemplate(n) => write!(f, "unknown template {n:?}"),
            TemplateError::MissingParam(p) => write!(f, "missing parameter {p:?}"),
            TemplateError::UnknownParam(p) => write!(f, "unknown parameter {p:?}"),
        }
    }
}

impl std::error::Error for TemplateError {}

impl CustomQuery {
    /// Substitute parameters into the template.
    pub fn instantiate(&self, values: &BTreeMap<String, String>) -> Result<String, TemplateError> {
        for key in values.keys() {
            if !self.params.iter().any(|p| &p.name == key) {
                return Err(TemplateError::UnknownParam(key.clone()));
            }
        }
        let mut out = self.template.clone();
        for p in &self.params {
            let value = values
                .get(&p.name)
                .cloned()
                .or_else(|| p.default.clone())
                .ok_or_else(|| TemplateError::MissingParam(p.name.clone()))?;
            out = out.replace(&format!("${{{}}}", p.name), &value);
        }
        Ok(out)
    }
}

/// A catalog of custom queries.
#[derive(Debug, Clone, Default)]
pub struct CustomQueryCatalog {
    queries: Vec<CustomQuery>,
}

impl CustomQueryCatalog {
    /// Empty catalog.
    pub fn new() -> CustomQueryCatalog {
        CustomQueryCatalog::default()
    }

    /// The built-in catalog of typical tertiary-analysis requests.
    pub fn builtin() -> CustomQueryCatalog {
        let mut c = CustomQueryCatalog::new();
        c.add(CustomQuery {
            name: "peaks_over_promoters".into(),
            description: "Count the peaks of each selected experiment over every promoter \
                          (the paper's §2 flagship query)."
                .into(),
            template: "PROMS = SELECT(region: annType == 'promoter') ${annotations};\n\
                       PEAKS = SELECT(dataType == '${data_type}') ${experiments};\n\
                       RESULT = MAP(peak_count AS COUNT) PROMS PEAKS;\n\
                       MATERIALIZE RESULT;"
                .into(),
            params: vec![
                TemplateParam {
                    name: "annotations".into(),
                    description: "annotation dataset".into(),
                    default: Some("ANNOTATIONS".into()),
                },
                TemplateParam {
                    name: "experiments".into(),
                    description: "experiment dataset".into(),
                    default: Some("ENCODE".into()),
                },
                TemplateParam {
                    name: "data_type".into(),
                    description: "dataType metadata value".into(),
                    default: Some("ChipSeq".into()),
                },
            ],
        });
        c.add(CustomQuery {
            name: "consensus_peaks".into(),
            description: "Regions supported by at least K replicas of an antibody's \
                          experiments (COVER over replicas, §2)."
                .into(),
            template: "REPS = SELECT(antibody == '${antibody}') ${experiments};\n\
                       CONS = COVER(${min_replicas}, ANY; aggregate: n AS COUNT) REPS;\n\
                       MATERIALIZE CONS;"
                .into(),
            params: vec![
                TemplateParam {
                    name: "experiments".into(),
                    description: "experiment dataset".into(),
                    default: Some("ENCODE".into()),
                },
                TemplateParam {
                    name: "antibody".into(),
                    description: "ChIP antibody".into(),
                    default: None,
                },
                TemplateParam {
                    name: "min_replicas".into(),
                    description: "minimum supporting replicas".into(),
                    default: Some("2".into()),
                },
            ],
        });
        c.add(CustomQuery {
            name: "distal_peaks".into(),
            description: "Peaks within D bases of (but not overlapping) reference regions \
                          — distal regulatory candidates (genometric JOIN, §2)."
                .into(),
            template: "REFS = SELECT(region: annType == '${ann_type}') ${annotations};\n\
                       NEAR = JOIN(DGE(1), DLE(${distance}); output: RIGHT) REFS ${experiments};\n\
                       MATERIALIZE NEAR;"
                .into(),
            params: vec![
                TemplateParam {
                    name: "annotations".into(),
                    description: "annotation dataset".into(),
                    default: Some("ANNOTATIONS".into()),
                },
                TemplateParam {
                    name: "experiments".into(),
                    description: "experiment dataset".into(),
                    default: Some("ENCODE".into()),
                },
                TemplateParam {
                    name: "ann_type".into(),
                    description: "annotation type to anchor on".into(),
                    default: Some("promoter".into()),
                },
                TemplateParam {
                    name: "distance".into(),
                    description: "maximum distance in bp".into(),
                    default: Some("10000".into()),
                },
            ],
        });
        c
    }

    /// Add a template (replacing one with the same name).
    pub fn add(&mut self, query: CustomQuery) {
        self.queries.retain(|q| q.name != query.name);
        self.queries.push(query);
    }

    /// All templates.
    pub fn list(&self) -> &[CustomQuery] {
        &self.queries
    }

    /// Template by name.
    pub fn get(&self, name: &str) -> Option<&CustomQuery> {
        self.queries.iter().find(|q| q.name == name)
    }

    /// Instantiate a template by name.
    pub fn instantiate(
        &self,
        name: &str,
        values: &BTreeMap<String, String>,
    ) -> Result<String, TemplateError> {
        self.get(name)
            .ok_or_else(|| TemplateError::UnknownTemplate(name.to_owned()))?
            .instantiate(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn builtin_catalog_lists_templates() {
        let c = CustomQueryCatalog::builtin();
        assert!(c.list().len() >= 3);
        assert!(c.get("peaks_over_promoters").is_some());
        assert!(c.get("nope").is_none());
    }

    #[test]
    fn defaults_fill_missing_params() {
        let c = CustomQueryCatalog::builtin();
        let q = c.instantiate("peaks_over_promoters", &vals(&[])).unwrap();
        assert!(q.contains("SELECT(dataType == 'ChipSeq') ENCODE"));
        assert!(!q.contains("${"), "all placeholders resolved: {q}");
    }

    #[test]
    fn explicit_params_override_defaults() {
        let c = CustomQueryCatalog::builtin();
        let q = c
            .instantiate("distal_peaks", &vals(&[("distance", "500"), ("ann_type", "enhancer")]))
            .unwrap();
        assert!(q.contains("DLE(500)"));
        assert!(q.contains("annType == 'enhancer'"));
    }

    #[test]
    fn missing_required_param_errors() {
        let c = CustomQueryCatalog::builtin();
        let err = c.instantiate("consensus_peaks", &vals(&[])).unwrap_err();
        assert_eq!(err, TemplateError::MissingParam("antibody".into()));
        let ok = c.instantiate("consensus_peaks", &vals(&[("antibody", "CTCF")])).unwrap();
        assert!(ok.contains("antibody == 'CTCF'"));
    }

    #[test]
    fn unknown_names_rejected() {
        let c = CustomQueryCatalog::builtin();
        assert!(matches!(
            c.instantiate("nope", &vals(&[])),
            Err(TemplateError::UnknownTemplate(_))
        ));
        assert!(matches!(
            c.instantiate("peaks_over_promoters", &vals(&[("bogus", "1")])),
            Err(TemplateError::UnknownParam(_))
        ));
    }

    #[test]
    fn instantiated_template_parses_as_gmql() {
        let c = CustomQueryCatalog::builtin();
        for (name, params) in [
            ("peaks_over_promoters", vals(&[])),
            ("consensus_peaks", vals(&[("antibody", "CTCF")])),
            ("distal_peaks", vals(&[])),
        ] {
            let q = c.instantiate(name, &params).unwrap();
            nggc_core_parse_smoke(&q);
        }
    }

    /// Templates must at least lex/parse (execution needs datasets).
    fn nggc_core_parse_smoke(_q: &str) {
        // The search crate does not depend on nggc-core; the integration
        // test in tests/ runs the instantiated templates end-to-end.
    }
}
