//! Feature-based region search.
//!
//! §4.5: "Best-matching regions with user-specified features should be
//! provided ... the user selects interesting regions, then provides
//! information about the features of interest, then those features are
//! computed, and finally regions are ordered based on their computed
//! features." This module implements the compute-then-rank loop: a
//! [`FeatureSpec`] names the features, [`compute_features`] evaluates
//! them for every candidate region, and [`rank_regions`] orders
//! candidates by similarity to a target feature vector (z-normalised
//! Euclidean distance).

use nggc_gdm::{Dataset, GRegion, Sample};

/// A feature computable for a region.
#[derive(Debug, Clone, PartialEq)]
pub enum Feature {
    /// Region length in bp.
    Length,
    /// A numeric schema attribute's value.
    Attribute(String),
    /// Number of regions of a reference sample overlapping the region
    /// (e.g. "how many known enhancers does it touch").
    OverlapCount(String),
    /// GC-proxy: region midpoint position within its chromosome,
    /// normalised to [0,1] (a stand-in for position-correlated features).
    RelativePosition,
}

/// A list of features to compute, with optional reference samples for
/// [`Feature::OverlapCount`].
#[derive(Debug, Clone, Default)]
pub struct FeatureSpec {
    /// The features, in output order.
    pub features: Vec<Feature>,
}

/// Computed feature matrix: one row (vector) per candidate region.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    /// Feature values, row-major.
    pub rows: Vec<Vec<f64>>,
    /// Per-column mean (for z-normalisation).
    pub means: Vec<f64>,
    /// Per-column standard deviation.
    pub stds: Vec<f64>,
}

/// Compute features for every region of `candidates`. References for
/// `OverlapCount(name)` are looked up in `references` by sample name;
/// missing references yield 0 counts. `chrom_lens` supplies chromosome
/// lengths for `RelativePosition` (regions beyond the table get 0).
pub fn compute_features(
    candidates: &Sample,
    spec: &FeatureSpec,
    dataset: &Dataset,
    references: &[&Sample],
    chrom_lens: &dyn Fn(&nggc_gdm::Chrom) -> Option<u64>,
) -> FeatureMatrix {
    let n = candidates.regions.len();
    let mut rows = vec![Vec::with_capacity(spec.features.len()); n];
    for feature in &spec.features {
        match feature {
            Feature::Length => {
                for (row, r) in rows.iter_mut().zip(&candidates.regions) {
                    row.push(r.len() as f64);
                }
            }
            Feature::Attribute(name) => {
                let pos = dataset.schema.position(name);
                for (row, r) in rows.iter_mut().zip(&candidates.regions) {
                    let v =
                        pos.and_then(|p| r.values.get(p)).and_then(|v| v.as_f64()).unwrap_or(0.0);
                    row.push(v);
                }
            }
            Feature::OverlapCount(ref_name) => {
                let reference = references.iter().find(|s| &s.name == ref_name);
                for (row, r) in rows.iter_mut().zip(&candidates.regions) {
                    let count = reference
                        .map(|s| s.chrom_slice(&r.chrom).iter().filter(|x| x.overlaps(r)).count())
                        .unwrap_or(0);
                    row.push(count as f64);
                }
            }
            Feature::RelativePosition => {
                for (row, r) in rows.iter_mut().zip(&candidates.regions) {
                    let rel = chrom_lens(&r.chrom)
                        .filter(|&l| l > 0)
                        .map(|l| r.midpoint() as f64 / l as f64)
                        .unwrap_or(0.0);
                    row.push(rel);
                }
            }
        }
    }
    let cols = spec.features.len();
    let mut means = vec![0.0; cols];
    let mut stds = vec![0.0; cols];
    if n > 0 {
        for c in 0..cols {
            let mean = rows.iter().map(|r| r[c]).sum::<f64>() / n as f64;
            let var = rows.iter().map(|r| (r[c] - mean).powi(2)).sum::<f64>() / n as f64;
            means[c] = mean;
            stds[c] = var.sqrt();
        }
    }
    FeatureMatrix { rows, means, stds }
}

/// A ranked region.
#[derive(Debug, Clone)]
pub struct RankedRegion<'a> {
    /// The candidate region.
    pub region: &'a GRegion,
    /// Index in the candidate sample.
    pub index: usize,
    /// Distance to the target (smaller = better).
    pub distance: f64,
}

/// Rank candidate regions by z-normalised Euclidean distance to `target`
/// (one value per feature, in spec order). Returns the top `k`.
pub fn rank_regions<'a>(
    candidates: &'a Sample,
    matrix: &FeatureMatrix,
    target: &[f64],
    k: usize,
) -> Vec<RankedRegion<'a>> {
    assert_eq!(target.len(), matrix.means.len(), "target vector must match the feature spec arity");
    let mut ranked: Vec<RankedRegion<'a>> = matrix
        .rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let d2: f64 = row
                .iter()
                .zip(target)
                .zip(matrix.means.iter().zip(&matrix.stds))
                .map(|((x, t), (m, s))| {
                    let denom = if *s > 1e-12 { *s } else { 1.0 };
                    let zx = (x - m) / denom;
                    let zt = (t - m) / denom;
                    (zx - zt).powi(2)
                })
                .sum();
            RankedRegion { region: &candidates.regions[i], index: i, distance: d2.sqrt() }
        })
        .collect();
    ranked.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.index.cmp(&b.index)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, Schema, Strand, Value, ValueType};

    fn dataset() -> Dataset {
        let schema = Schema::new(vec![Attribute::new("signal", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new("D", schema);
        ds.add_sample(Sample::new("cands", "D").with_regions(vec![
            GRegion::new("chr1", 0, 100, Strand::Unstranded).with_values(vec![Value::Float(1.0)]),
            GRegion::new("chr1", 1000, 1500, Strand::Unstranded)
                .with_values(vec![Value::Float(10.0)]),
            GRegion::new("chr1", 5000, 5100, Strand::Unstranded)
                .with_values(vec![Value::Float(9.0)]),
        ]))
        .unwrap();
        ds
    }

    #[test]
    fn features_computed_in_order() {
        let ds = dataset();
        let enh = Sample::new("enhancers", "R").with_regions(vec![GRegion::new(
            "chr1",
            1100,
            1200,
            Strand::Unstranded,
        )]);
        let spec = FeatureSpec {
            features: vec![
                Feature::Length,
                Feature::Attribute("signal".into()),
                Feature::OverlapCount("enhancers".into()),
            ],
        };
        let m = compute_features(&ds.samples[0], &spec, &ds, &[&enh], &|_| Some(1_000_000));
        assert_eq!(m.rows[0], vec![100.0, 1.0, 0.0]);
        assert_eq!(m.rows[1], vec![500.0, 10.0, 1.0]);
        assert_eq!(m.rows[2], vec![100.0, 9.0, 0.0]);
    }

    #[test]
    fn ranking_prefers_similar_regions() {
        let ds = dataset();
        let spec =
            FeatureSpec { features: vec![Feature::Length, Feature::Attribute("signal".into())] };
        let m = compute_features(&ds.samples[0], &spec, &ds, &[], &|_| None);
        // Target: short, strong-signal region → index 2 is the best match.
        let ranked = rank_regions(&ds.samples[0], &m, &[100.0, 9.0], 2);
        assert_eq!(ranked[0].index, 2);
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].distance <= ranked[1].distance);
    }

    #[test]
    fn relative_position_feature() {
        let ds = dataset();
        let spec = FeatureSpec { features: vec![Feature::RelativePosition] };
        let m = compute_features(&ds.samples[0], &spec, &ds, &[], &|_| Some(10_000));
        assert!((m.rows[0][0] - 0.005).abs() < 1e-9);
        assert!((m.rows[1][0] - 0.125).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn target_arity_checked() {
        let ds = dataset();
        let spec = FeatureSpec { features: vec![Feature::Length] };
        let m = compute_features(&ds.samples[0], &spec, &ds, &[], &|_| None);
        rank_regions(&ds.samples[0], &m, &[1.0, 2.0], 1);
    }
}
