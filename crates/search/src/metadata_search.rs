//! Metadata search with keyword, TF-IDF, and ontology-expanded ranking.
//!
//! §4.5: "Search methods should locate relevant samples within very
//! large bodies, using classical measures of precision and recall;
//! keyword-based search or free text querying should be supported."
//! Three rankers of increasing sophistication are provided — E8 compares
//! their precision/recall on a planted-relevance corpus:
//!
//! * **Boolean** — samples containing every query token;
//! * **TF-IDF** — cosine-ish scoring with inverse document frequency and
//!   document-length normalisation;
//! * **Ontology-expanded** — query terms expand through the mini-UMLS
//!   is-a graph (§4.3) before TF-IDF scoring, so "cancer" finds HeLa/K562
//!   samples that never mention the word.

use nggc_ontology::Ontology;
use nggc_repository::{tokenize, MetaIndex, SampleRef};
use std::collections::HashMap;

/// Ranking strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankMode {
    /// Conjunctive keyword match, no scores.
    Boolean,
    /// TF-IDF scoring.
    TfIdf,
    /// Ontology expansion + TF-IDF.
    Expanded,
}

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// The sample.
    pub sample: SampleRef,
    /// Relevance score (1.0 for Boolean hits).
    pub score: f64,
}

/// Metadata search engine over a [`MetaIndex`].
pub struct MetadataSearch<'a> {
    index: &'a MetaIndex,
    ontology: Option<&'a Ontology>,
}

impl<'a> MetadataSearch<'a> {
    /// Search over an index; pass an ontology to enable
    /// [`RankMode::Expanded`].
    pub fn new(index: &'a MetaIndex, ontology: Option<&'a Ontology>) -> MetadataSearch<'a> {
        MetadataSearch { index, ontology }
    }

    /// Run a free-text query; hits are sorted by descending score, ties
    /// broken by sample reference for determinism.
    pub fn search(&self, query: &str, mode: RankMode) -> Vec<Hit> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        match mode {
            RankMode::Boolean => self.boolean(&tokens),
            RankMode::TfIdf => self.tfidf(&tokens),
            RankMode::Expanded => {
                // Each expanded term is a *phrase group*: a sample matches
                // the group only when it carries every token of the term.
                // This keeps "cancer cell line" from leaking the common
                // token "cell" into the match set.
                let mut groups: Vec<Vec<String>> = Vec::new();
                for t in &tokens {
                    match self.ontology {
                        Some(o) => {
                            for term in o.expand_term(t) {
                                let g = tokenize(&term);
                                if !g.is_empty() {
                                    groups.push(g);
                                }
                            }
                        }
                        None => groups.push(vec![t.clone()]),
                    }
                }
                groups.sort();
                groups.dedup();
                self.grouped(&groups)
            }
        }
    }

    fn boolean(&self, tokens: &[String]) -> Vec<Hit> {
        let mut sets: Vec<&std::collections::BTreeSet<SampleRef>> = Vec::new();
        for t in tokens {
            match self.index.postings(t) {
                Some(s) => sets.push(s),
                None => return Vec::new(),
            }
        }
        sets.sort_by_key(|s| s.len());
        let (first, rest) = sets.split_first().expect("non-empty token list");
        first
            .iter()
            .filter(|sref| rest.iter().all(|s| s.contains(sref)))
            .map(|sref| Hit { sample: sref.clone(), score: 1.0 })
            .collect()
    }

    /// Score samples by phrase groups: a group contributes its rarest
    /// token's IDF when the sample carries *all* tokens of the group.
    fn grouped(&self, groups: &[Vec<String>]) -> Vec<Hit> {
        let n_docs = self.index.documents().max(1) as f64;
        let mut scores: HashMap<SampleRef, f64> = HashMap::new();
        for group in groups {
            let mut postings: Vec<&std::collections::BTreeSet<SampleRef>> = Vec::new();
            let mut rarest_df = usize::MAX;
            let mut complete = true;
            for t in group {
                match self.index.postings(t) {
                    Some(p) => {
                        rarest_df = rarest_df.min(p.len());
                        postings.push(p);
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete || postings.is_empty() {
                continue;
            }
            let idf = (n_docs / rarest_df.max(1) as f64).ln() + 1.0;
            postings.sort_by_key(|p| p.len());
            let (first, rest) = postings.split_first().expect("non-empty");
            for sref in first.iter() {
                if rest.iter().all(|p| p.contains(sref)) {
                    let norm = 1.0 / (1.0 + (self.index.doc_len(sref) as f64).sqrt());
                    *scores.entry(sref.clone()).or_insert(0.0) += idf * norm;
                }
            }
        }
        let mut hits: Vec<Hit> =
            scores.into_iter().map(|(sample, score)| Hit { sample, score }).collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.sample.cmp(&b.sample)));
        hits
    }

    fn tfidf(&self, tokens: &[String]) -> Vec<Hit> {
        let n_docs = self.index.documents().max(1) as f64;
        let mut scores: HashMap<SampleRef, f64> = HashMap::new();
        for t in tokens {
            let Some(postings) = self.index.postings(t) else { continue };
            let idf = (n_docs / postings.len() as f64).ln() + 1.0;
            for sref in postings {
                // Metadata documents are near-sets (attribute values are
                // deduplicated), so tf ≈ 1; normalise by document length
                // to favour focused samples.
                let norm = 1.0 / (1.0 + (self.index.doc_len(sref) as f64).sqrt());
                *scores.entry(sref.clone()).or_insert(0.0) += idf * norm;
            }
        }
        let mut hits: Vec<Hit> =
            scores.into_iter().map(|(sample, score)| Hit { sample, score }).collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.sample.cmp(&b.sample)));
        hits
    }
}

/// Precision / recall / F1 of a result list against a relevant set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// |retrieved ∩ relevant| / |retrieved|.
    pub precision: f64,
    /// |retrieved ∩ relevant| / |relevant|.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Evaluate hits against ground truth (the §4.5 "classical measures").
pub fn evaluate(hits: &[Hit], relevant: &[SampleRef]) -> Evaluation {
    if hits.is_empty() || relevant.is_empty() {
        return Evaluation {
            precision: 0.0,
            recall: if relevant.is_empty() { 1.0 } else { 0.0 },
            f1: 0.0,
        };
    }
    let tp = hits.iter().filter(|h| relevant.contains(&h.sample)).count() as f64;
    let precision = tp / hits.len() as f64;
    let recall = tp / relevant.len() as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    Evaluation { precision, recall, f1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Dataset, Metadata, Sample, Schema};
    use nggc_ontology::mini_umls;

    fn corpus() -> MetaIndex {
        let mut ds = Dataset::new("REPO", Schema::empty());
        let samples = [
            ("hela_ctcf", vec![("cell", "HeLa-S3"), ("antibody", "CTCF"), ("assay", "ChipSeq")]),
            ("k562_pol2", vec![("cell", "K562"), ("antibody", "POLR2A"), ("assay", "ChipSeq")]),
            ("gm_ctcf", vec![("cell", "GM12878"), ("antibody", "CTCF"), ("assay", "ChipSeq")]),
            ("imr_rna", vec![("cell", "IMR90"), ("assay", "RnaSeq")]),
            (
                "cancer_note",
                vec![("description", "matched cancer tissue biopsy"), ("assay", "RnaSeq")],
            ),
        ];
        for (name, pairs) in samples {
            ds.add_sample(Sample::new(name, "REPO").with_metadata(Metadata::from_pairs(pairs)))
                .unwrap();
        }
        let mut idx = MetaIndex::new();
        idx.add_dataset(&ds);
        idx
    }

    fn sref(name: &str) -> SampleRef {
        SampleRef { dataset: "REPO".into(), sample: name.into() }
    }

    #[test]
    fn boolean_conjunctive() {
        let idx = corpus();
        let s = MetadataSearch::new(&idx, None);
        let hits = s.search("ctcf chipseq", RankMode::Boolean);
        assert_eq!(hits.len(), 2);
        let hits = s.search("ctcf rnaseq", RankMode::Boolean);
        assert!(hits.is_empty());
    }

    #[test]
    fn tfidf_ranks_rarer_terms_higher() {
        let idx = corpus();
        let s = MetadataSearch::new(&idx, None);
        let hits = s.search("k562 chipseq", RankMode::TfIdf);
        assert_eq!(hits[0].sample, sref("k562_pol2"), "sample matching the rare token wins");
        assert!(hits.len() >= 3, "disjunctive scoring keeps chipseq-only hits");
    }

    #[test]
    fn ontology_expansion_finds_cancer_cell_lines() {
        let idx = corpus();
        let onto = mini_umls();
        let s = MetadataSearch::new(&idx, Some(&onto));
        let plain = s.search("cancer", RankMode::TfIdf);
        assert_eq!(plain.len(), 1, "only the literal mention");
        let expanded = s.search("cancer", RankMode::Expanded);
        let names: Vec<&str> = expanded.iter().map(|h| h.sample.sample.as_str()).collect();
        assert!(names.contains(&"hela_ctcf"), "HeLa is-a cancer cell line: {names:?}");
        assert!(names.contains(&"k562_pol2"));
        assert!(names.contains(&"cancer_note"));
        assert!(!names.contains(&"imr_rna"), "IMR90 is not a cancer line");
    }

    #[test]
    fn evaluation_measures() {
        let hits =
            vec![Hit { sample: sref("a"), score: 1.0 }, Hit { sample: sref("b"), score: 0.5 }];
        let eval = evaluate(&hits, &[sref("a"), sref("c")]);
        assert!((eval.precision - 0.5).abs() < 1e-12);
        assert!((eval.recall - 0.5).abs() < 1e-12);
        assert!((eval.f1 - 0.5).abs() < 1e-12);
        let empty = evaluate(&[], &[sref("a")]);
        assert_eq!(empty.recall, 0.0);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let idx = corpus();
        let s = MetadataSearch::new(&idx, None);
        assert!(s.search("  ", RankMode::TfIdf).is_empty());
    }
}
