//! The Internet of Genomes, simulated.
//!
//! §4.5's "most ambitious and challenging vision": research centers
//! publish links to genomic data with suitable metadata; a third party
//! crawls the hosts, indexes all the metadata, stores some samples, and
//! serves search queries with result snippets; users then download
//! datasets asynchronously from the owning host. Network transport is
//! irrelevant to the protocol design (DESIGN.md substitution table), so
//! hosts are in-process objects behind the [`Host`] trait and the crawler
//! talks to them through it.

use nggc_gdm::Dataset;
use nggc_repository::{tokenize, MetaIndex, SampleRef};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};

// ---------------------------------------------------------------------------
// Publishing protocol
// ---------------------------------------------------------------------------

/// One published dataset link (the protocol "prescribing how to publish a
/// link to genomic data in their native format with suitable metadata").
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PublishedEntry {
    /// Stable link (unique within the host).
    pub link: String,
    /// Dataset name.
    pub name: String,
    /// Native format label (e.g. "gdm", "bed", "narrowPeak").
    pub format: String,
    /// Dataset-level metadata pairs exposed to crawlers.
    pub metadata: Vec<(String, String)>,
    /// Approximate size in bytes.
    pub size_bytes: usize,
    /// Logical modification stamp (monotone per host).
    pub updated_at: u64,
}

/// A host's manifest: everything it currently publishes.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Manifest {
    /// Host identifier (a URL in the vision; a name here).
    pub host: String,
    /// Published entries.
    pub entries: Vec<PublishedEntry>,
}

/// A publishing host: answers manifest requests and (politely throttled)
/// dataset fetches.
pub trait Host {
    /// Host identifier.
    fn id(&self) -> &str;
    /// The current manifest (cheap; metadata + links only).
    fn manifest(&self) -> Manifest;
    /// Fetch a published dataset by link.
    fn fetch(&self, link: &str) -> Option<Dataset>;
}

/// An in-process host holding datasets (a research center's download
/// site).
#[derive(Debug, Default)]
pub struct SimulatedHost {
    id: String,
    datasets: BTreeMap<String, (Dataset, u64)>,
    clock: u64,
}

impl SimulatedHost {
    /// Create a host.
    pub fn new(id: impl Into<String>) -> SimulatedHost {
        SimulatedHost { id: id.into(), datasets: BTreeMap::new(), clock: 0 }
    }

    /// Publish (or update) a dataset; the link is `<host>/<name>`.
    pub fn publish(&mut self, dataset: Dataset) -> String {
        self.clock += 1;
        let link = format!("{}/{}", self.id, dataset.name);
        self.datasets.insert(link.clone(), (dataset, self.clock));
        link
    }

    /// Remove a published dataset.
    pub fn unpublish(&mut self, link: &str) -> bool {
        self.datasets.remove(link).is_some()
    }
}

impl Host for SimulatedHost {
    fn id(&self) -> &str {
        &self.id
    }

    fn manifest(&self) -> Manifest {
        Manifest {
            host: self.id.clone(),
            entries: self
                .datasets
                .iter()
                .map(|(link, (ds, stamp))| {
                    // Dataset-level metadata: the union of sample pairs
                    // (deduplicated) — what a publishing protocol would
                    // reasonably expose without shipping region data.
                    let mut pairs: Vec<(String, String)> = ds
                        .samples
                        .iter()
                        .flat_map(|s| s.metadata.iter().map(|(k, v)| (k.to_owned(), v.to_owned())))
                        .collect();
                    pairs.sort();
                    pairs.dedup();
                    PublishedEntry {
                        link: link.clone(),
                        name: ds.name.clone(),
                        format: "gdm".to_owned(),
                        metadata: pairs,
                        size_bytes: ds.encoded_size(),
                        updated_at: *stamp,
                    }
                })
                .collect(),
        }
    }

    fn fetch(&self, link: &str) -> Option<Dataset> {
        self.datasets.get(link).map(|(d, _)| d.clone())
    }
}

// ---------------------------------------------------------------------------
// Crawler
// ---------------------------------------------------------------------------

/// Crawl statistics (E9 reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Hosts visited.
    pub hosts_visited: usize,
    /// Entries discovered in manifests.
    pub entries_seen: usize,
    /// Entries whose metadata was (re)indexed this crawl.
    pub entries_indexed: usize,
    /// Full datasets fetched into the cache.
    pub datasets_fetched: usize,
    /// Bytes of region data fetched.
    pub bytes_fetched: usize,
}

/// The search service's crawler + index + dataset cache.
#[derive(Default)]
pub struct SearchService {
    index: MetaIndex,
    /// link → entry (the searchable catalog).
    catalog: BTreeMap<String, PublishedEntry>,
    /// link → last indexed stamp (incremental crawling).
    seen: HashMap<String, u64>,
    /// Cached datasets ("storing some of the samples within a large
    /// repository").
    cache: BTreeMap<String, Dataset>,
    /// Pending asynchronous downloads.
    pending: VecDeque<String>,
    /// Per-crawl fetch budget per host (the "agreed, non-intrusive
    /// protocol").
    fetch_budget_per_host: usize,
}

impl SearchService {
    /// Service with a per-host fetch budget per crawl.
    pub fn new(fetch_budget_per_host: usize) -> SearchService {
        SearchService { fetch_budget_per_host, ..Default::default() }
    }

    /// Crawl hosts: download manifests, index new/updated metadata, and
    /// opportunistically cache datasets within the politeness budget.
    pub fn crawl(&mut self, hosts: &[&dyn Host]) -> CrawlStats {
        let mut stats = CrawlStats::default();
        for host in hosts {
            stats.hosts_visited += 1;
            let manifest = host.manifest();
            let mut budget = self.fetch_budget_per_host;
            for entry in manifest.entries {
                stats.entries_seen += 1;
                let fresh =
                    self.seen.get(&entry.link).map(|&s| s < entry.updated_at).unwrap_or(true);
                if !fresh {
                    continue;
                }
                // Index the entry's metadata as one synthetic document.
                let mut doc = Dataset::new(entry.name.clone(), nggc_gdm::Schema::empty());
                let mut sample = nggc_gdm::Sample::new(entry.link.clone(), &manifest.host);
                for (k, v) in &entry.metadata {
                    sample.metadata.insert(k, v.clone());
                }
                doc.add_sample_unchecked(sample);
                self.index.add_dataset(&doc);
                self.seen.insert(entry.link.clone(), entry.updated_at);
                self.catalog.insert(entry.link.clone(), entry.clone());
                stats.entries_indexed += 1;
                // Cache the dataset if the budget allows.
                if budget > 0 {
                    if let Some(ds) = host.fetch(&entry.link) {
                        stats.datasets_fetched += 1;
                        stats.bytes_fetched += ds.encoded_size();
                        self.cache.insert(entry.link.clone(), ds);
                        budget -= 1;
                    }
                }
            }
        }
        stats
    }

    /// Number of indexed entries.
    pub fn indexed_entries(&self) -> usize {
        self.catalog.len()
    }

    /// Search published metadata; returns snippets with an indication of
    /// cache presence (the §4.5 "indication of the presence of each
    /// dataset in the repository").
    pub fn search(&self, query: &str) -> Vec<Snippet> {
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return Vec::new();
        }
        let mut snippets = Vec::new();
        for (link, entry) in &self.catalog {
            let matched: Vec<(String, String)> = entry
                .metadata
                .iter()
                .filter(|(k, v)| {
                    let hay: Vec<String> = tokenize(k).into_iter().chain(tokenize(v)).collect();
                    tokens.iter().any(|t| hay.contains(t))
                })
                .cloned()
                .collect();
            if matched.is_empty() {
                continue;
            }
            snippets.push(Snippet {
                link: link.clone(),
                dataset: entry.name.clone(),
                host: link.split('/').next().unwrap_or_default().to_owned(),
                matched_pairs: matched,
                cached: self.cache.contains_key(link),
                size_bytes: entry.size_bytes,
            });
        }
        snippets.sort_by(|a, b| {
            b.matched_pairs.len().cmp(&a.matched_pairs.len()).then(a.link.cmp(&b.link))
        });
        snippets
    }

    /// Request an asynchronous download of a dataset ("users ... could
    /// download them asynchronously").
    pub fn request_download(&mut self, link: &str) -> bool {
        if self.catalog.contains_key(link) && !self.pending.contains(&link.to_owned()) {
            self.pending.push_back(link.to_owned());
            true
        } else {
            false
        }
    }

    /// Process up to `n` pending downloads against the hosts; returns the
    /// completed datasets.
    pub fn poll_downloads(&mut self, hosts: &[&dyn Host], n: usize) -> Vec<Dataset> {
        let mut done = Vec::new();
        for _ in 0..n {
            let Some(link) = self.pending.pop_front() else { break };
            if let Some(ds) = self.cache.get(&link) {
                done.push(ds.clone());
                continue;
            }
            let host_id = link.split('/').next().unwrap_or_default();
            if let Some(host) = hosts.iter().find(|h| h.id() == host_id) {
                if let Some(ds) = host.fetch(&link) {
                    done.push(ds);
                }
            }
        }
        done
    }

    /// The underlying metadata index (for integration with
    /// [`crate::metadata_search::MetadataSearch`]).
    pub fn index(&self) -> &MetaIndex {
        &self.index
    }

    /// Sample references currently indexed for a keyword (test hook).
    pub fn postings(&self, token: &str) -> Vec<SampleRef> {
        self.index.postings(token).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }
}

/// A search result snippet.
#[derive(Debug, Clone, PartialEq)]
pub struct Snippet {
    /// Link to request the dataset.
    pub link: String,
    /// Dataset name.
    pub dataset: String,
    /// Owning host.
    pub host: String,
    /// The metadata pairs that matched the query.
    pub matched_pairs: Vec<(String, String)>,
    /// Whether the service already caches the dataset.
    pub cached: bool,
    /// Published size.
    pub size_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{GRegion, Metadata, Sample, Schema, Strand};

    fn dataset(name: &str, cell: &str) -> Dataset {
        let mut ds = Dataset::new(name, Schema::empty());
        ds.add_sample(
            Sample::new("s1", name)
                .with_regions(vec![GRegion::new("chr1", 0, 100, Strand::Unstranded)])
                .with_metadata(Metadata::from_pairs([("cell", cell), ("assay", "ChipSeq")])),
        )
        .unwrap();
        ds
    }

    fn world() -> (SimulatedHost, SimulatedHost) {
        let mut h1 = SimulatedHost::new("polimi.example");
        h1.publish(dataset("PEAKS_HELA", "HeLa-S3"));
        h1.publish(dataset("PEAKS_K562", "K562"));
        let mut h2 = SimulatedHost::new("broad.example");
        h2.publish(dataset("TF_ATLAS", "GM12878"));
        (h1, h2)
    }

    #[test]
    fn crawl_indexes_all_manifest_entries() {
        let (h1, h2) = world();
        let mut svc = SearchService::new(10);
        let stats = svc.crawl(&[&h1, &h2]);
        assert_eq!(stats.hosts_visited, 2);
        assert_eq!(stats.entries_seen, 3);
        assert_eq!(stats.entries_indexed, 3);
        assert_eq!(stats.datasets_fetched, 3);
        assert!(stats.bytes_fetched > 0);
        assert_eq!(svc.indexed_entries(), 3);
    }

    #[test]
    fn recrawl_is_incremental() {
        let (mut h1, h2) = world();
        let mut svc = SearchService::new(10);
        svc.crawl(&[&h1, &h2]);
        let stats2 = svc.crawl(&[&h1, &h2]);
        assert_eq!(stats2.entries_indexed, 0, "nothing changed");
        // Publish an update on h1 → exactly one reindex.
        h1.publish(dataset("PEAKS_HELA", "HeLa-S3"));
        let stats3 = svc.crawl(&[&h1, &h2]);
        assert_eq!(stats3.entries_indexed, 1);
    }

    #[test]
    fn fetch_budget_limits_cache_fills() {
        let (h1, h2) = world();
        let mut svc = SearchService::new(1);
        let stats = svc.crawl(&[&h1, &h2]);
        assert_eq!(stats.datasets_fetched, 2, "one per host");
        assert_eq!(stats.entries_indexed, 3, "metadata still fully indexed");
    }

    #[test]
    fn search_returns_snippets_with_cache_flags() {
        let (h1, h2) = world();
        let mut svc = SearchService::new(1);
        svc.crawl(&[&h1, &h2]);
        let hits = svc.search("HeLa");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dataset, "PEAKS_HELA");
        assert_eq!(hits[0].host, "polimi.example");
        assert!(!hits[0].matched_pairs.is_empty());
        let all = svc.search("ChipSeq");
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|s| s.cached) && all.iter().any(|s| !s.cached));
    }

    #[test]
    fn async_download_roundtrip() {
        let (h1, h2) = world();
        let mut svc = SearchService::new(0); // nothing cached
        svc.crawl(&[&h1, &h2]);
        assert!(svc.request_download("broad.example/TF_ATLAS"));
        assert!(!svc.request_download("broad.example/TF_ATLAS"), "duplicate rejected");
        assert!(!svc.request_download("nosuch/LINK"));
        let done = svc.poll_downloads(&[&h1, &h2], 10);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].name, "TF_ATLAS");
    }

    /// A host whose dataset fetches always fail (e.g. the download site
    /// is up for manifests but rejects crawler transfers).
    struct FlakyHost(SimulatedHost);

    impl Host for FlakyHost {
        fn id(&self) -> &str {
            self.0.id()
        }
        fn manifest(&self) -> Manifest {
            self.0.manifest()
        }
        fn fetch(&self, _link: &str) -> Option<Dataset> {
            None
        }
    }

    #[test]
    fn crawler_tolerates_fetch_failures() {
        let (h1, _) = world();
        let mut flaky = SimulatedHost::new("flaky.example");
        flaky.publish(dataset("UNREACHABLE", "HeLa-S3"));
        let flaky = FlakyHost(flaky);
        let mut svc = SearchService::new(10);
        let stats = svc.crawl(&[&h1, &flaky]);
        // Metadata still fully indexed; only cache fills are lost.
        assert_eq!(stats.entries_indexed, 3);
        assert_eq!(stats.datasets_fetched, 2, "only h1's datasets cached");
        let hits = svc.search("HeLa");
        assert_eq!(hits.len(), 2, "the flaky host's entry is still searchable");
        assert!(hits.iter().any(|s| s.host == "flaky.example" && !s.cached));
        // Async download from the flaky host completes zero datasets but
        // does not wedge the queue.
        svc.request_download("flaky.example/UNREACHABLE");
        let done = svc.poll_downloads(&[&h1, &flaky], 5);
        assert!(done.is_empty());
    }

    #[test]
    fn unpublish_removes_from_future_manifests() {
        let (mut h1, _) = world();
        assert!(h1.unpublish("polimi.example/PEAKS_K562"));
        assert_eq!(h1.manifest().entries.len(), 1);
        assert!(!h1.unpublish("polimi.example/PEAKS_K562"));
    }
}
