//! # `nggc-search` — search services over genomic repositories
//!
//! Implements the paper's §4.5 search vision in three layers:
//!
//! * [`metadata_search`] — keyword / TF-IDF / ontology-expanded sample
//!   search with the "classical measures of precision and recall";
//! * [`region_search`] — feature-based region search: compute
//!   user-specified features, rank regions by similarity ("search and
//!   feature evaluation have to intertwine");
//! * [`custom`] — §4.3's "set of custom queries": parameterised GMQL
//!   templates for the typical requests;
//! * [`iog`] — the **Internet of Genomes**: a publishing protocol for
//!   hosts, a polite incremental crawler, a metadata index with snippet
//!   search, cached datasets, and asynchronous downloads.

#![warn(missing_docs)]

pub mod custom;
pub mod iog;
pub mod metadata_search;
pub mod region_search;

pub use custom::{CustomQuery, CustomQueryCatalog, TemplateError, TemplateParam};
pub use iog::{CrawlStats, Host, Manifest, PublishedEntry, SearchService, SimulatedHost, Snippet};
pub use metadata_search::{evaluate, Evaluation, Hit, MetadataSearch, RankMode};
pub use region_search::{
    compute_features, rank_regions, Feature, FeatureMatrix, FeatureSpec, RankedRegion,
};
