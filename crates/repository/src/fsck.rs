//! Repository integrity checking and repair (`nggc fsck`).
//!
//! [`fsck`] walks a repository the way a filesystem checker walks a
//! disk: catalog ↔ dataset-directory cross-checks, container
//! magic/header validation (`--deep` adds a full checksum pass over
//! every block), orphaned temp/staging/trash detection, and stale
//! result-cache entries whose source generation is gone. Every finding
//! is an [`FsckIssue`]; with `repair` enabled each issue is fixed in
//! the least destructive way available:
//!
//! | issue | repair |
//! |---|---|
//! | torn catalog | rebuild from dataset scan, fresh generations |
//! | catalog entry without directory | drop the entry |
//! | directory without catalog entry | re-index under a fresh generation |
//! | unreadable / checksum-failing dataset | quarantine with reason file |
//! | orphan temp/staging/trash | remove |
//! | stale result-cache entry | remove |
//!
//! Quarantining (into `quarantine/`, never deletion) keeps damaged
//! bytes around for manual forensics. Re-indexing always assigns a
//! fresh generation so no result cached before the damage can
//! revalidate against recovered data.

use crate::catalog::{self, CatalogEntry};
use crate::durable;
use crate::error::RepoError;
use crate::result_store::ResultStore;
use nggc_formats::native_v2::{self, StorageVersion};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// What [`fsck`] should do.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsckOptions {
    /// Fully decode every dataset, verifying all checksums, instead of
    /// only validating magic bytes, headers and block indexes.
    pub deep: bool,
    /// Fix what can be fixed (re-index, quarantine, sweep) instead of
    /// only reporting.
    pub repair: bool,
}

/// Category of one [`FsckIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// `catalog.json` (or `generations.json`) exists but does not parse.
    TornCatalog,
    /// A catalog entry whose dataset directory is missing.
    MissingDataset,
    /// A dataset directory the catalog does not know about.
    OrphanDataset,
    /// A dataset that fails header validation or (deep mode) a
    /// checksum/decode pass.
    UnreadableDataset,
    /// A leftover staging/temp/trash entry from an interrupted write.
    OrphanTemp,
    /// A result-cache entry whose source generations are gone.
    StaleResult,
}

impl IssueKind {
    /// Short name for report lines and metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            IssueKind::TornCatalog => "torn-catalog",
            IssueKind::MissingDataset => "missing-dataset",
            IssueKind::OrphanDataset => "orphan-dataset",
            IssueKind::UnreadableDataset => "unreadable-dataset",
            IssueKind::OrphanTemp => "orphan-temp",
            IssueKind::StaleResult => "stale-result",
        }
    }
}

/// One finding of a [`fsck`] run.
#[derive(Debug)]
pub struct FsckIssue {
    /// What category of damage this is.
    pub kind: IssueKind,
    /// What is damaged (dataset name, file, or path).
    pub subject: String,
    /// Human-readable explanation.
    pub detail: String,
    /// Whether this run fixed it (always `false` without `repair`).
    pub repaired: bool,
}

/// Outcome of a [`fsck`] run.
#[derive(Debug, Default)]
pub struct FsckReport {
    /// Datasets that passed every check this run performed.
    pub datasets_ok: usize,
    /// Entries currently in `quarantine/` (including ones moved there
    /// by this run).
    pub quarantined: usize,
    /// Everything found wrong, in discovery order.
    pub issues: Vec<FsckIssue>,
    /// Whether the run was a deep (full checksum) pass.
    pub deep: bool,
}

impl FsckReport {
    /// No issues at all?
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Issues this run did not (or could not) fix.
    pub fn unrepaired(&self) -> usize {
        self.issues.iter().filter(|i| !i.repaired).count()
    }
}

/// Dataset directories under `root/datasets` (non-dot entries only), in
/// name order.
fn dataset_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(root.join("datasets"))
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .filter(|p| p.file_name().is_some_and(|n| !n.to_string_lossy().starts_with('.')))
                .collect()
        })
        .unwrap_or_default();
    dirs.sort();
    dirs
}

/// Orphaned staging/temp/trash leftovers, without removing anything.
fn orphan_temp_entries(root: &Path) -> Vec<PathBuf> {
    let mut orphans = Vec::new();
    let mut collect = |dir: &Path, prefix: &str| {
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.filter_map(|e| e.ok()) {
            if prefix.is_empty() || entry.file_name().to_string_lossy().starts_with(prefix) {
                orphans.push(entry.path());
            }
        }
    };
    collect(root, ".tmp-");
    collect(&root.join("datasets"), ".stage-");
    collect(&root.join("result_cache"), ".tmp-");
    collect(&root.join(".trash"), "");
    orphans.sort();
    orphans
}

/// Validate one dataset directory. Shallow mode parses magic, header
/// and block index (no region decode); deep mode fully decodes the
/// dataset, which for revision-3 containers verifies the whole-file
/// trailer and every block checksum.
fn check_dataset(dir: &Path, deep: bool) -> Result<(), String> {
    match native_v2::detect_version(dir) {
        None => Err("neither a v2 container nor a v1 native dataset".into()),
        Some(StorageVersion::V2) if !deep => {
            native_v2::read_index(dir).map(|_| ()).map_err(|e| e.to_string())
        }
        Some(_) => native_v2::read_dataset_auto(dir).map(|_| ()).map_err(|e| e.to_string()),
    }
}

/// Walk the repository at `root`, verifying catalog, datasets, staging
/// areas and the on-disk result cache; optionally repair. See the
/// module docs for the issue → repair table.
pub fn fsck(root: &Path, opts: FsckOptions) -> Result<FsckReport, RepoError> {
    let reg = nggc_obs::global();
    reg.counter("nggc_repo_fsck_runs_total").inc();
    let mut report = FsckReport { deep: opts.deep, ..FsckReport::default() };
    let issue = |report: &mut FsckReport, kind: IssueKind, subject: &str, detail: String| {
        report.issues.push(FsckIssue { kind, subject: subject.to_owned(), detail, repaired: false })
    };

    // -- generations high-water mark ------------------------------------
    let gen_path = root.join("generations.json");
    let mut next_generation: u64 = 1;
    let mut generations_torn = false;
    if gen_path.exists() {
        match fs::read_to_string(&gen_path)
            .ok()
            .and_then(|t| serde_json::from_str::<catalog::GenerationFile>(&t).ok())
        {
            Some(g) => next_generation = g.next.max(1),
            None => {
                generations_torn = true;
                issue(
                    &mut report,
                    IssueKind::TornCatalog,
                    "generations.json",
                    "exists but does not parse".into(),
                );
            }
        }
    }

    // -- catalog ---------------------------------------------------------
    let catalog_path = root.join("catalog.json");
    let mut catalog: Option<BTreeMap<String, CatalogEntry>> = if catalog_path.exists() {
        fs::read_to_string(&catalog_path).ok().and_then(|t| serde_json::from_str(&t).ok())
    } else {
        Some(BTreeMap::new())
    };
    let mut catalog_dirty = false;
    if catalog.is_none() {
        issue(
            &mut report,
            IssueKind::TornCatalog,
            "catalog.json",
            "exists but does not parse".into(),
        );
        if opts.repair {
            // Rebuild with fresh generations; the result cache cannot be
            // validated against a lost catalog, so drop it wholesale.
            let (rebuilt, _, next) = catalog::rebuild_catalog(root, next_generation);
            next_generation = next;
            fs::remove_dir_all(root.join("result_cache")).ok();
            catalog = Some(rebuilt);
            catalog_dirty = true;
            report.issues.last_mut().expect("just pushed").repaired = true;
        }
    }
    // Keep generation assignment above anything the catalog recorded.
    if let Some(cat) = &catalog {
        let cat_next = cat.values().map(|e| e.generation + 1).max().unwrap_or(1);
        next_generation = next_generation.max(cat_next);
    }

    // -- datasets --------------------------------------------------------
    let dirs = dataset_dirs(root);
    if let Some(cat) = &mut catalog {
        // Catalog entries whose directory vanished.
        let missing: Vec<String> = cat
            .keys()
            .filter(|name| !dirs.iter().any(|d| d.file_name().is_some_and(|n| n == name.as_str())))
            .cloned()
            .collect();
        for name in missing {
            issue(
                &mut report,
                IssueKind::MissingDataset,
                &name,
                "catalogued but no dataset directory on disk".into(),
            );
            if opts.repair {
                // A replace interrupted between trash and rename leaves
                // both versions on disk; bring one back (staged = new,
                // trashed = old) before falling back to dropping the
                // entry.
                if catalog::rescue_dataset(root, &name).is_some() {
                    report.datasets_ok += 1;
                } else {
                    cat.remove(&name);
                    catalog_dirty = true;
                }
                report.issues.last_mut().expect("just pushed").repaired = true;
            }
        }
        // Directories: readability, then catalog membership.
        for dir in &dirs {
            let name = dir.file_name().expect("dataset dirs have names").to_string_lossy();
            match check_dataset(dir, opts.deep) {
                Ok(()) => {
                    if cat.contains_key(name.as_ref()) {
                        report.datasets_ok += 1;
                    } else {
                        issue(
                            &mut report,
                            IssueKind::OrphanDataset,
                            &name,
                            "dataset directory not in the catalog".into(),
                        );
                        if opts.repair {
                            match native_v2::read_dataset_auto(dir) {
                                Ok(ds) => {
                                    let generation = next_generation;
                                    next_generation += 1;
                                    cat.insert(
                                        name.to_string(),
                                        CatalogEntry {
                                            name: name.to_string(),
                                            schema: ds.schema.clone(),
                                            stats: ds.stats(),
                                            generation,
                                        },
                                    );
                                    catalog_dirty = true;
                                    report.issues.last_mut().expect("just pushed").repaired = true;
                                }
                                Err(e) => {
                                    // Readable shallowly but not fully:
                                    // treat like any unreadable dataset.
                                    if catalog::quarantine_dataset(
                                        root,
                                        dir,
                                        &format!("re-index during fsck failed: {e}"),
                                    )
                                    .is_ok()
                                    {
                                        report.issues.last_mut().expect("just pushed").repaired =
                                            true;
                                    }
                                }
                            }
                        }
                    }
                }
                Err(reason) => {
                    issue(&mut report, IssueKind::UnreadableDataset, &name, reason.clone());
                    if opts.repair && catalog::quarantine_dataset(root, dir, &reason).is_ok() {
                        if cat.remove(name.as_ref()).is_some() {
                            catalog_dirty = true;
                        }
                        report.issues.last_mut().expect("just pushed").repaired = true;
                    }
                }
            }
        }
    }

    // -- orphaned temp/staging/trash -------------------------------------
    for orphan in orphan_temp_entries(root) {
        issue(
            &mut report,
            IssueKind::OrphanTemp,
            &orphan.display().to_string(),
            "leftover from an interrupted write".into(),
        );
        if opts.repair {
            let removed = if orphan.is_dir() {
                fs::remove_dir_all(&orphan).is_ok()
            } else {
                fs::remove_file(&orphan).is_ok()
            };
            if removed {
                report.issues.last_mut().expect("just pushed").repaired = true;
            }
        }
    }

    // -- result cache -----------------------------------------------------
    if let Some(cat) = &catalog {
        if root.join("result_cache").exists() {
            let store = ResultStore::open(root.join("result_cache"), u64::MAX);
            let gen_of = |name: &str| cat.get(name).map(|e| e.generation);
            for path in store.stale_entries(&gen_of) {
                issue(
                    &mut report,
                    IssueKind::StaleResult,
                    &path.display().to_string(),
                    "cached result whose source generation is gone".into(),
                );
            }
            if opts.repair {
                let swept = store.sweep_stale(&gen_of);
                let mut marked = 0;
                for i in report.issues.iter_mut().rev() {
                    if i.kind == IssueKind::StaleResult && marked < swept {
                        i.repaired = true;
                        marked += 1;
                    }
                }
            }
        }
    }

    // -- persist repairs ---------------------------------------------------
    if opts.repair && (catalog_dirty || generations_torn) {
        if let Some(cat) = &catalog {
            let text = serde_json::to_string_pretty(cat)?;
            durable::atomic_write(&catalog_path, text.as_bytes())?;
            durable::atomic_write(
                &gen_path,
                serde_json::to_string(&catalog::GenerationFile { next: next_generation })?
                    .as_bytes(),
            )?;
            if generations_torn {
                for i in report.issues.iter_mut() {
                    if i.kind == IssueKind::TornCatalog && i.subject == "generations.json" {
                        i.repaired = true;
                    }
                }
            }
        }
    }

    report.quarantined = catalog::quarantine_count(root);
    reg.counter("nggc_repo_fsck_issues_total").add(report.issues.len() as u64);
    reg.counter("nggc_repo_fsck_repairs_total")
        .add(report.issues.iter().filter(|i| i.repaired).count() as u64);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Repository;
    use nggc_gdm::{Attribute, Dataset, GRegion, Sample, Schema, Strand, ValueType};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_fsck_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn dataset(name: &str) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        ds.add_sample(Sample::new("s1", name).with_regions(vec![
            GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![0.5.into()]),
        ]))
        .unwrap();
        ds
    }

    fn seeded(tag: &str) -> PathBuf {
        let root = tmp(tag);
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("A")).unwrap();
        repo.save(&dataset("B")).unwrap();
        root
    }

    #[test]
    fn clean_repo_is_clean() {
        let root = seeded("clean");
        let report = fsck(&root, FsckOptions::default()).unwrap();
        assert!(report.is_clean(), "unexpected issues: {:?}", report.issues);
        assert_eq!(report.datasets_ok, 2);
        let deep = fsck(&root, FsckOptions { deep: true, repair: false }).unwrap();
        assert!(deep.is_clean());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn orphan_dataset_is_reindexed_with_fresh_generation() {
        let root = seeded("orphan");
        // Remove A from the catalog, keeping its directory.
        let mut repo = Repository::open(&root).unwrap();
        let old_gen = repo.generation("A").unwrap();
        repo.delete("A").unwrap();
        // Resurrect the directory only (simulating a crash between
        // catalog persist and directory removal).
        let mut r2 = Repository::open(&root).unwrap();
        r2.save(&dataset("A")).unwrap();
        let resave_gen = r2.generation("A").unwrap();
        let catalog_text = fs::read_to_string(root.join("catalog.json")).unwrap();
        let stripped: BTreeMap<String, CatalogEntry> =
            serde_json::from_str::<BTreeMap<String, CatalogEntry>>(&catalog_text)
                .unwrap()
                .into_iter()
                .filter(|(k, _)| k != "A")
                .collect();
        fs::write(root.join("catalog.json"), serde_json::to_string(&stripped).unwrap()).unwrap();

        let report = fsck(&root, FsckOptions::default()).unwrap();
        assert_eq!(report.issues.len(), 1);
        assert_eq!(report.issues[0].kind, IssueKind::OrphanDataset);
        assert_eq!(report.unrepaired(), 1, "report-only run fixes nothing");

        let repaired = fsck(&root, FsckOptions { deep: false, repair: true }).unwrap();
        assert_eq!(repaired.unrepaired(), 0);
        let repo = Repository::open(&root).unwrap();
        assert!(repo.contains("A"));
        let new_gen = repo.generation("A").unwrap();
        assert!(new_gen > old_gen && new_gen > resave_gen, "re-index must use a fresh generation");
        assert!(fsck(&root, FsckOptions::default()).unwrap().is_clean());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_dataset_entry_is_dropped() {
        let root = seeded("missing");
        fs::remove_dir_all(root.join("datasets/B")).unwrap();
        let report = fsck(&root, FsckOptions::default()).unwrap();
        assert!(report.issues.iter().any(|i| i.kind == IssueKind::MissingDataset));
        let repaired = fsck(&root, FsckOptions { deep: false, repair: true }).unwrap();
        assert_eq!(repaired.unrepaired(), 0);
        let repo = Repository::open(&root).unwrap();
        assert!(!repo.contains("B"));
        assert!(repo.contains("A"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_container_quarantined_only_by_deep_pass() {
        let root = seeded("deepquar");
        // Flip a bit inside B's container, past header and index: the
        // shallow pass (magic + header + index) cannot see it.
        let container = root.join("datasets/B/data.gdm2");
        let mut bytes = fs::read(&container).unwrap();
        let pos = bytes.len() - 6; // inside the last block, before the trailer
        bytes[pos] ^= 0x01;
        fs::write(&container, &bytes).unwrap();

        let shallow = fsck(&root, FsckOptions::default()).unwrap();
        assert!(shallow.is_clean(), "shallow pass skips block checksums: {:?}", shallow.issues);
        let deep = fsck(&root, FsckOptions { deep: true, repair: false }).unwrap();
        assert_eq!(deep.issues.len(), 1);
        assert_eq!(deep.issues[0].kind, IssueKind::UnreadableDataset);
        assert!(deep.issues[0].detail.contains("checksum mismatch"), "{}", deep.issues[0].detail);

        let repaired = fsck(&root, FsckOptions { deep: true, repair: true }).unwrap();
        assert_eq!(repaired.unrepaired(), 0);
        assert_eq!(repaired.quarantined, 1);
        // The damaged bytes are preserved for forensics, with a reason.
        let quarantine: Vec<_> = fs::read_dir(root.join("quarantine"))
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(quarantine.iter().any(|n| n.starts_with("B") && n.ends_with(".reason.txt")));
        let repo = Repository::open(&root).unwrap();
        assert!(!repo.contains("B"));
        assert!(repo.contains("A"));
        assert!(fsck(&root, FsckOptions { deep: true, repair: false }).unwrap().is_clean());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_catalog_rebuilds_and_stale_results_swept() {
        let root = seeded("torn");
        // A cached result recorded against current generations…
        let store = ResultStore::open(root.join("result_cache"), 1 << 20);
        let repo = Repository::open(&root).unwrap();
        let gens = vec![("A".to_owned(), repo.generation("A").unwrap())];
        let mut outs = std::collections::HashMap::new();
        outs.insert("R".to_owned(), dataset("R"));
        store.store(42, &gens, &outs).unwrap();
        drop(repo);
        // …then the catalog is torn mid-write.
        fs::write(root.join("catalog.json"), "{\"A\": {\"name\":").unwrap();

        let report = fsck(&root, FsckOptions::default()).unwrap();
        assert!(report.issues.iter().any(|i| i.kind == IssueKind::TornCatalog));
        let repaired = fsck(&root, FsckOptions { deep: false, repair: true }).unwrap();
        assert_eq!(repaired.unrepaired(), 0);
        // Rebuilt catalog knows both datasets again, under fresh
        // generations, and the untrustworthy result cache is gone.
        let repo = Repository::open(&root).unwrap();
        assert!(repo.contains("A") && repo.contains("B"));
        assert_eq!(ResultStore::open(root.join("result_cache"), 1 << 20).usage().0, 0);
        assert!(fsck(&root, FsckOptions::default()).unwrap().is_clean());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn orphan_temp_entries_reported_and_swept() {
        let root = seeded("temp");
        fs::create_dir_all(root.join("datasets/.stage-999-X")).unwrap();
        fs::write(root.join(".tmp-999-catalog.json"), "half").unwrap();
        fs::create_dir_all(root.join(".trash/X-1-0")).unwrap();
        let report = fsck(&root, FsckOptions::default()).unwrap();
        let temps = report.issues.iter().filter(|i| i.kind == IssueKind::OrphanTemp).count();
        assert_eq!(temps, 3);
        let repaired = fsck(&root, FsckOptions { deep: false, repair: true }).unwrap();
        assert_eq!(repaired.unrepaired(), 0);
        assert!(fsck(&root, FsckOptions::default()).unwrap().is_clean());
        assert!(!root.join("datasets/.stage-999-X").exists());
        fs::remove_dir_all(&root).ok();
    }
}
