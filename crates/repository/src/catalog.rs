//! The dataset repository: a directory of GDM-native datasets plus a
//! catalog.
//!
//! The paper's integration vision (§4.3) assumes repositories of curated
//! datasets "with both regions and metadata" addressable by name. A
//! [`Repository`] manages such a directory: datasets persist in the
//! GDM-native layout, and a JSON catalog keeps name → schema/statistics
//! so that queries can be compiled (and their result sizes estimated,
//! §4.4) without touching region files.

use crate::error::RepoError;
use nggc_formats::native;
use nggc_gdm::{Dataset, DatasetStats, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One catalog entry.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CatalogEntry {
    /// Dataset name.
    pub name: String,
    /// Region schema.
    pub schema: Schema,
    /// Cardinality statistics at save time.
    pub stats: DatasetStats,
}

/// An on-disk dataset repository.
#[derive(Debug)]
pub struct Repository {
    root: PathBuf,
    catalog: BTreeMap<String, CatalogEntry>,
}

impl Repository {
    /// Open (or initialise) a repository at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Repository, RepoError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let catalog_path = root.join("catalog.json");
        let catalog = if catalog_path.exists() {
            let text = fs::read_to_string(&catalog_path)?;
            serde_json::from_str(&text)?
        } else {
            BTreeMap::new()
        };
        Ok(Repository { root, catalog })
    }

    /// The repository root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Save (or replace) a dataset; updates the catalog.
    pub fn save(&mut self, dataset: &Dataset) -> Result<(), RepoError> {
        dataset.validate().map_err(RepoError::Model)?;
        let dir = self.dataset_dir(&dataset.name);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        native::write_dataset(dataset, &dir)?;
        // Any persisted metadata index is now stale.
        fs::remove_file(self.root.join("meta_index.json")).ok();
        self.catalog.insert(
            dataset.name.clone(),
            CatalogEntry {
                name: dataset.name.clone(),
                schema: dataset.schema.clone(),
                stats: dataset.stats(),
            },
        );
        self.flush_catalog()
    }

    /// Load a dataset by name.
    pub fn load(&self, name: &str) -> Result<Dataset, RepoError> {
        if !self.catalog.contains_key(name) {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        Ok(native::read_dataset(&self.dataset_dir(name))?)
    }

    /// Delete a dataset.
    pub fn delete(&mut self, name: &str) -> Result<(), RepoError> {
        if self.catalog.remove(name).is_none() {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        let dir = self.dataset_dir(name);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        fs::remove_file(self.root.join("meta_index.json")).ok();
        self.flush_catalog()
    }

    /// List catalog entries in name order.
    pub fn list(&self) -> Vec<&CatalogEntry> {
        self.catalog.values().collect()
    }

    /// Catalog entry of one dataset.
    pub fn entry(&self, name: &str) -> Option<&CatalogEntry> {
        self.catalog.get(name)
    }

    /// Schema of a dataset (for GMQL compilation) without loading regions.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        self.catalog.get(name).map(|e| e.schema.clone())
    }

    /// Dataset existence check.
    pub fn contains(&self, name: &str) -> bool {
        self.catalog.contains_key(name)
    }

    /// Build (or rebuild) the persistent metadata index over every
    /// dataset in the repository, writing it to `meta_index.json`. The
    /// index powers search without loading any region data afterwards.
    pub fn build_meta_index(&self) -> Result<crate::MetaIndex, RepoError> {
        let mut index = crate::MetaIndex::new();
        for name in self.catalog.keys() {
            let ds = self.load(name)?;
            index.add_dataset(&ds);
        }
        let text = serde_json::to_string(&index)?;
        fs::write(self.root.join("meta_index.json"), text)?;
        Ok(index)
    }

    /// Load the persisted metadata index, or rebuild it when absent /
    /// unreadable.
    pub fn meta_index(&self) -> Result<crate::MetaIndex, RepoError> {
        let path = self.root.join("meta_index.json");
        if let Ok(text) = fs::read_to_string(&path) {
            if let Ok(index) = serde_json::from_str(&text) {
                return Ok(index);
            }
        }
        self.build_meta_index()
    }

    fn dataset_dir(&self, name: &str) -> PathBuf {
        self.root.join("datasets").join(name)
    }

    fn flush_catalog(&self) -> Result<(), RepoError> {
        let text = serde_json::to_string_pretty(&self.catalog)?;
        fs::write(self.root.join("catalog.json"), text)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Metadata, Sample, Strand, ValueType};

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_repo_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn dataset(name: &str) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        ds.add_sample(
            Sample::new("s1", name)
                .with_regions(vec![
                    GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![0.5.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds
    }

    #[test]
    fn save_load_roundtrip() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("PEAKS")).unwrap();
        let back = repo.load("PEAKS").unwrap();
        assert_eq!(back.sample_count(), 1);
        assert!(back.samples[0].metadata.has("cell", "HeLa"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn catalog_persists_across_open() {
        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("A")).unwrap();
            repo.save(&dataset("B")).unwrap();
        }
        let repo = Repository::open(&root).unwrap();
        let names: Vec<&str> = repo.list().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert!(repo.schema_of("A").unwrap().get("p").is_some());
        assert_eq!(repo.entry("A").unwrap().stats.regions, 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn delete_removes_everything() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("X")).unwrap();
        repo.delete("X").unwrap();
        assert!(!repo.contains("X"));
        assert!(matches!(repo.load("X"), Err(RepoError::NotFound(_))));
        assert!(matches!(repo.delete("X"), Err(RepoError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn meta_index_builds_and_persists() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("A")).unwrap();
        let idx = repo.build_meta_index().unwrap();
        assert_eq!(idx.lookup("cell", "HeLa").len(), 1);
        assert!(root.join("meta_index.json").exists());
        // Loading uses the persisted file.
        let idx2 = repo.meta_index().unwrap();
        assert_eq!(idx2.documents(), 1);
        // A corrupt file falls back to a rebuild.
        fs::write(root.join("meta_index.json"), "garbage").unwrap();
        let idx3 = repo.meta_index().unwrap();
        assert_eq!(idx3.documents(), 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_replaces() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("X")).unwrap();
        let mut ds2 = dataset("X");
        ds2.add_sample(Sample::new("s2", "X").with_regions(vec![
            GRegion::new("chr2", 0, 5, Strand::Neg).with_values(vec![0.1.into()]),
        ]))
        .unwrap();
        repo.save(&ds2).unwrap();
        assert_eq!(repo.load("X").unwrap().sample_count(), 2);
        fs::remove_dir_all(&root).ok();
    }
}
