//! The dataset repository: a directory of GDM-native datasets plus a
//! catalog.
//!
//! The paper's integration vision (§4.3) assumes repositories of curated
//! datasets "with both regions and metadata" addressable by name. A
//! [`Repository`] manages such a directory: datasets persist in the
//! GDM-native layout, and a JSON catalog keeps name → schema/statistics
//! so that queries can be compiled (and their result sizes estimated,
//! §4.4) without touching region files.

use crate::durable;
use crate::error::RepoError;
use nggc_formats::native;
use nggc_formats::native_v2::{self, ScanOptions, StorageVersion};
use nggc_gdm::{Dataset, DatasetStats, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Datasets kept in the in-memory read cache (count backstop for the
/// byte-aware LRU eviction).
const CACHE_CAPACITY: usize = 8;

/// Encoded bytes the in-memory read cache may hold. The byte bound is
/// the primary eviction criterion — a handful of huge datasets must not
/// blow past any memory budget just because they fit the count cap.
const CACHE_BYTE_CAPACITY: u64 = 256 << 20;

/// One catalog entry.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CatalogEntry {
    /// Dataset name.
    pub name: String,
    /// Region schema.
    pub schema: Schema,
    /// Cardinality statistics at save time.
    pub stats: DatasetStats,
    /// Monotonic per-dataset generation, bumped on every save (and thus
    /// migrate). The query result cache keys entry validity on it.
    /// Catalogs written before generations existed deserialize as 0.
    #[serde(default)]
    pub generation: u64,
}

/// An on-disk dataset repository with a small in-memory read cache.
///
/// Datasets persist in the GDM-native layout: new saves write the v2
/// binary columnar container ([`nggc_formats::native_v2`]); loads
/// transparently read either v2 containers or legacy v1 text
/// directories, detected by magic bytes. [`Repository::migrate`]
/// rewrites a v1 dataset as v2 in place.
///
/// [`Repository::load`] keeps the last [`CACHE_CAPACITY`] used datasets
/// in memory behind [`Arc`]s (LRU eviction), so a cache hit is a
/// reference-count bump rather than a deep copy; `save` populates the
/// cache with the just-saved dataset and `delete` invalidates it. Cache
/// traffic, load/save latency, and load/save bytes are reported to the
/// global `nggc-obs` registry (`nggc_repo_*`).
#[derive(Debug)]
pub struct Repository {
    root: PathBuf,
    catalog: BTreeMap<String, CatalogEntry>,
    cache: Mutex<DatasetCache>,
    /// Per-name single-flight table for cold loads: concurrent misses
    /// for the same dataset wait on one leader's disk read instead of
    /// each reading and decoding the full dataset (cold-load stampede).
    inflight: Mutex<HashMap<String, Arc<LoadFlight>>>,
    /// Next generation to assign on save. Monotonic across the whole
    /// repository *and* across reopen/delete/recreate (persisted in
    /// `generations.json`), so a deleted-then-recreated dataset never
    /// reuses a generation a cached result might still reference.
    next_generation: u64,
    /// What [`Repository::open`] found and cleaned up; surfaced by
    /// `nggc stats` and `nggc serve` as a one-line health summary.
    health: RepoHealth,
}

/// Repository state observed (and recovered) while opening.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepoHealth {
    /// Catalogued datasets.
    pub datasets_ok: usize,
    /// Entries sitting in `quarantine/` (unreadable datasets set aside
    /// by catalog recovery or `fsck --repair`).
    pub quarantined: usize,
    /// Orphaned temp/staging/trash entries swept while opening —
    /// leftovers of writes a crash interrupted before publication.
    pub swept: usize,
    /// Whether the catalog was torn/corrupt and had to be rebuilt by
    /// scanning the dataset directories.
    pub catalog_rebuilt: bool,
    /// Catalogued datasets whose directory vanished mid-replace and was
    /// brought back from staging (new version) or trash (old version).
    pub rescued: usize,
}

impl fmt::Display for RepoHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dataset{} ok, {} quarantined, {} orphan temp entr{} swept",
            self.datasets_ok,
            if self.datasets_ok == 1 { "" } else { "s" },
            self.quarantined,
            self.swept,
            if self.swept == 1 { "y" } else { "ies" },
        )?;
        if self.rescued > 0 {
            write!(f, ", {} rescued from an interrupted replace", self.rescued)?;
        }
        if self.catalog_rebuilt {
            write!(f, ", catalog rebuilt from dataset scan")?;
        }
        Ok(())
    }
}

/// Rendezvous for one in-progress cold load. The leader fills
/// `result` and flips `done`; followers wait on the condvar and share
/// the leader's `Arc` without touching disk.
#[derive(Debug, Default)]
struct LoadFlight {
    slot: Mutex<FlightSlot>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct FlightSlot {
    done: bool,
    /// `Ok` carries the loaded dataset; `Err(())` tells followers the
    /// leader failed (they retry and surface their own typed error).
    result: Option<Result<Arc<Dataset>, ()>>,
}

/// Removes the in-flight entry and wakes followers even if the
/// leader's disk read panics, so no waiter blocks forever.
struct FlightGuard<'a> {
    repo: &'a Repository,
    name: &'a str,
    flight: &'a Arc<LoadFlight>,
    outcome: Option<Result<Arc<Dataset>, ()>>,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        {
            let mut slot = self.flight.slot.lock().unwrap_or_else(|p| p.into_inner());
            slot.done = true;
            // A panic before `outcome` was set counts as a failure.
            slot.result = Some(self.outcome.take().unwrap_or(Err(())));
        }
        self.repo.inflight.lock().unwrap_or_else(|p| p.into_inner()).remove(self.name);
        self.flight.cv.notify_all();
    }
}

#[derive(Debug)]
struct DatasetCache {
    // Value: dataset plus the byte estimate it was charged at.
    entries: BTreeMap<String, (Arc<Dataset>, u64)>,
    // LRU order: front = least recently used, back = most recent.
    order: VecDeque<String>,
    bytes: u64,
    max_entries: usize,
    max_bytes: u64,
}

impl Default for DatasetCache {
    fn default() -> DatasetCache {
        DatasetCache::bounded(CACHE_CAPACITY, CACHE_BYTE_CAPACITY)
    }
}

impl DatasetCache {
    fn bounded(max_entries: usize, max_bytes: u64) -> DatasetCache {
        DatasetCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            bytes: 0,
            max_entries,
            max_bytes,
        }
    }

    fn get(&mut self, name: &str) -> Option<Arc<Dataset>> {
        let hit = self.entries.get(name).map(|(ds, _)| Arc::clone(ds));
        if hit.is_some() {
            self.touch(name);
        }
        hit
    }

    fn touch(&mut self, name: &str) {
        if let Some(pos) = self.order.iter().position(|n| n == name) {
            self.order.remove(pos);
        }
        self.order.push_back(name.to_owned());
    }

    /// Insert `dataset`, charged at `bytes` (the catalog's encoded-size
    /// estimate), then evict LRU entries while either bound — bytes
    /// first, entry count as a backstop — is exceeded. The newest entry
    /// always stays resident, even when it alone exceeds `max_bytes`:
    /// it is the one the caller is actively using, and evicting it
    /// would only force an immediate reload.
    fn insert(&mut self, name: String, dataset: Arc<Dataset>, bytes: u64) {
        if let Some((_, old)) = self.entries.insert(name.clone(), (dataset, bytes)) {
            self.bytes -= old;
        }
        self.bytes += bytes;
        self.touch(&name);
        while self.entries.len() > 1
            && (self.bytes > self.max_bytes || self.entries.len() > self.max_entries)
        {
            if let Some(evicted) = self.order.pop_front() {
                if let Some((_, b)) = self.entries.remove(&evicted) {
                    self.bytes -= b;
                }
                nggc_obs::global().counter("nggc_repo_cache_evictions_total").inc();
            }
        }
    }

    fn invalidate(&mut self, name: &str) {
        if let Some((_, b)) = self.entries.remove(name) {
            self.bytes -= b;
            self.order.retain(|n| n != name);
        }
    }
}

/// Persisted shape of `generations.json`: the next generation to hand
/// out, flushed on every save so it survives reopen.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct GenerationFile {
    pub(crate) next: u64,
}

/// Total bytes of all files under `dir` (recursive).
fn dir_bytes(dir: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(dir) else {
        return 0;
    };
    let mut total = 0;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.is_dir() {
            total += dir_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

/// Remove every orphaned staging artefact under `root` — write-side
/// temp files (`.tmp-*`), dataset staging dirs (`datasets/.stage-*`)
/// and trashed trees (`.trash/*`). All of them are pre- or
/// post-publication leftovers of the durable-write protocols, so
/// removing them can never lose published data. Returns how many
/// entries were swept.
pub(crate) fn sweep_orphans(root: &Path) -> usize {
    let mut swept = 0usize;
    let mut sweep_matching = |dir: &Path, prefix: &str| {
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.filter_map(|e| e.ok()) {
            let name = entry.file_name();
            if !prefix.is_empty() && !name.to_string_lossy().starts_with(prefix) {
                continue;
            }
            let path = entry.path();
            let removed = if path.is_dir() {
                fs::remove_dir_all(&path).is_ok()
            } else {
                fs::remove_file(&path).is_ok()
            };
            if removed {
                swept += 1;
            }
        }
    };
    sweep_matching(root, ".tmp-");
    sweep_matching(&root.join("datasets"), ".stage-");
    sweep_matching(&root.join("result_cache"), ".tmp-");
    sweep_matching(&root.join(".trash"), "");
    swept
}

/// Try to resurrect the directory of a catalogued dataset that vanished
/// mid-replace (a crash between trashing the old tree and renaming the
/// staged one in). Preference order:
///
/// 1. a **fully readable staged tree** (`datasets/.stage-*-{name}`) —
///    the post-mutation state, completely written before the old
///    directory was touched;
/// 2. the **trashed old tree** (`.trash/{name}-{pid}-{seq}`) — the
///    pre-mutation state.
///
/// Either restores an exact version, never a blend. Must run *before*
/// any orphan sweep, which would otherwise delete both copies. Returns
/// where the data came from, or `None` if nothing needed (or could be)
/// rescued.
pub(crate) fn rescue_dataset(root: &Path, name: &str) -> Option<&'static str> {
    let dir = root.join("datasets").join(name);
    if dir.exists() {
        return None;
    }
    let list = |parent: &Path| -> Vec<PathBuf> {
        fs::read_dir(parent)
            .map(|entries| {
                entries.filter_map(|e| e.ok()).map(|e| e.path()).filter(|p| p.is_dir()).collect()
            })
            .unwrap_or_default()
    };
    let staged_suffix = format!("-{name}");
    let mut staged: Vec<PathBuf> = list(&root.join("datasets"))
        .into_iter()
        .filter(|p| {
            p.file_name().is_some_and(|n| {
                let n = n.to_string_lossy();
                n.starts_with(".stage-") && n.ends_with(&staged_suffix)
            })
        })
        .collect();
    staged.sort();
    for cand in staged {
        if native_v2::read_dataset_auto(&cand).is_ok() && fs::rename(&cand, &dir).is_ok() {
            nggc_obs::global().counter("nggc_repo_rescued_total").inc();
            return Some("staging");
        }
    }
    let trash_prefix = format!("{name}-");
    let mut trashed: Vec<PathBuf> = list(&root.join(".trash"))
        .into_iter()
        .filter(|p| {
            p.file_name().is_some_and(|n| {
                let n = n.to_string_lossy();
                // `{name}-{pid}-{seq}` exactly, so dataset "a" never
                // claims the trash of dataset "a-b".
                n.strip_prefix(&trash_prefix).is_some_and(|rest| {
                    let parts: Vec<&str> = rest.split('-').collect();
                    parts.len() == 2
                        && parts
                            .iter()
                            .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_digit()))
                })
            })
        })
        .collect();
    trashed.sort();
    for cand in trashed {
        if native_v2::read_dataset_auto(&cand).is_ok() && fs::rename(&cand, &dir).is_ok() {
            nggc_obs::global().counter("nggc_repo_rescued_total").inc();
            return Some("trash");
        }
    }
    None
}

/// [`rescue_dataset`] for every catalogued name; returns how many
/// datasets were brought back.
pub(crate) fn rescue_datasets(root: &Path, catalog: &BTreeMap<String, CatalogEntry>) -> usize {
    catalog.keys().filter(|name| rescue_dataset(root, name).is_some()).count()
}

/// Move an unreadable dataset directory into `quarantine/` under a
/// unique name and drop a sibling `.reason.txt` explaining why.
pub(crate) fn quarantine_dataset(
    root: &Path,
    dir: &Path,
    reason: &str,
) -> std::io::Result<PathBuf> {
    let dest = durable::move_to_trash(dir, &root.join("quarantine"))?;
    let mut reason_path = dest.clone().into_os_string();
    reason_path.push(".reason.txt");
    fs::write(PathBuf::from(reason_path), reason).ok();
    nggc_obs::global().counter("nggc_repo_quarantined_total").inc();
    Ok(dest)
}

/// Entries currently sitting in `quarantine/` (directories only; their
/// sibling reason files don't count).
pub(crate) fn quarantine_count(root: &Path) -> usize {
    fs::read_dir(root.join("quarantine"))
        .map(|entries| entries.filter_map(|e| e.ok()).filter(|e| e.path().is_dir()).count())
        .unwrap_or(0)
}

/// Rebuild a catalog by scanning `datasets/`: every readable dataset is
/// re-indexed with a **fresh** generation (starting at
/// `first_generation`) so no result cached against the lost catalog can
/// revalidate; unreadable directories are quarantined. Returns the
/// catalog, how many datasets were quarantined, and the next free
/// generation.
pub(crate) fn rebuild_catalog(
    root: &Path,
    first_generation: u64,
) -> (BTreeMap<String, CatalogEntry>, usize, u64) {
    let mut catalog = BTreeMap::new();
    let mut quarantined = 0usize;
    let mut next = first_generation.max(1);
    let mut dirs: Vec<PathBuf> = fs::read_dir(root.join("datasets"))
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .filter(|p| p.file_name().is_some_and(|n| !n.to_string_lossy().starts_with('.')))
                .collect()
        })
        .unwrap_or_default();
    dirs.sort();
    for dir in dirs {
        let name = dir.file_name().expect("filtered above").to_string_lossy().into_owned();
        match native_v2::read_dataset_auto(&dir) {
            Ok(ds) => {
                let generation = next;
                next += 1;
                let stats = ds.stats();
                catalog.insert(
                    name.clone(),
                    CatalogEntry { name, schema: ds.schema.clone(), stats, generation },
                );
            }
            Err(e) => {
                quarantine_dataset(root, &dir, &format!("unreadable during catalog rebuild: {e}"))
                    .ok();
                quarantined += 1;
            }
        }
    }
    (catalog, quarantined, next)
}

/// Outcome of a whole-repository migration sweep
/// ([`Repository::migrate_all`]): per-dataset results, partitioned the
/// way `load_directory`'s `LoadReport` partitions imports. One corrupt
/// dataset no longer aborts the sweep — it lands in `failed` and the
/// remaining datasets still migrate.
#[derive(Debug, Default)]
pub struct MigrationSweep {
    /// Datasets rewritten as v2, in name order.
    pub migrated: Vec<MigrationReport>,
    /// Datasets whose migration failed: `(name, error)`, in name order.
    pub failed: Vec<(String, RepoError)>,
}

impl MigrationSweep {
    /// Did every dataset migrate?
    pub fn is_clean(&self) -> bool {
        self.failed.is_empty()
    }

    /// Total datasets visited by the sweep.
    pub fn total(&self) -> usize {
        self.migrated.len() + self.failed.len()
    }
}

/// Outcome of [`Repository::migrate`] for one dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Dataset name.
    pub name: String,
    /// Storage version found on disk before migrating.
    pub from: StorageVersion,
    /// On-disk bytes before migration.
    pub bytes_before: u64,
    /// On-disk bytes after migration (v2 container size).
    pub bytes_after: u64,
}

impl Repository {
    /// Open (or initialise) a repository at `root`.
    ///
    /// Opening is also the first line of crash recovery: orphaned
    /// staging/trash leftovers are swept (they are never published
    /// data), and a torn or corrupt `catalog.json` is rebuilt by
    /// scanning the dataset directories — readable datasets are
    /// re-indexed under fresh generations, unreadable ones are moved to
    /// `quarantine/` with a reason file instead of failing the whole
    /// repository. What happened is recorded in [`Repository::health`].
    pub fn open(root: impl Into<PathBuf>) -> Result<Repository, RepoError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        // The persisted high-water mark keeps generations monotonic
        // across delete → reopen → recreate; a missing or unreadable
        // file falls back to the catalog's own maximum.
        let persisted_next = fs::read_to_string(root.join("generations.json"))
            .ok()
            .and_then(|text| serde_json::from_str::<GenerationFile>(&text).ok())
            .map(|g| g.next)
            .unwrap_or(0);
        let catalog_path = root.join("catalog.json");
        let mut catalog_rebuilt = false;
        let catalog: BTreeMap<String, CatalogEntry> = if catalog_path.exists() {
            let parsed = fs::read_to_string(&catalog_path)
                .ok()
                .and_then(|text| serde_json::from_str(&text).ok());
            match parsed {
                Some(catalog) => catalog,
                None => {
                    // Torn catalog. Rebuild from the datasets themselves
                    // with fresh generations, and drop the on-disk result
                    // cache wholesale: without a trustworthy catalog its
                    // generation stamps cannot be validated.
                    catalog_rebuilt = true;
                    let (rebuilt, _, _) = rebuild_catalog(&root, persisted_next);
                    fs::remove_dir_all(root.join("result_cache")).ok();
                    rebuilt
                }
            }
        } else {
            BTreeMap::new()
        };
        // A crash between trashing a dataset's old tree and renaming in
        // its staged replacement leaves a catalogued name with no
        // directory; bring back an exact version (staged = new, trashed
        // = old) BEFORE the orphan sweep deletes both copies.
        let rescued = rescue_datasets(&root, &catalog);
        let swept = sweep_orphans(&root);
        let catalog_next = catalog.values().map(|e| e.generation + 1).max().unwrap_or(1);
        let health = RepoHealth {
            datasets_ok: catalog.len(),
            quarantined: quarantine_count(&root),
            swept,
            catalog_rebuilt,
            rescued,
        };
        let repo = Repository {
            root,
            catalog,
            cache: Mutex::new(DatasetCache::default()),
            inflight: Mutex::new(HashMap::new()),
            next_generation: persisted_next.max(catalog_next).max(1),
            health,
        };
        if catalog_rebuilt {
            // Persist the recovered state so the next open is clean.
            repo.flush_generations()?;
            repo.flush_catalog()?;
        }
        Ok(repo)
    }

    /// What [`Repository::open`] found and cleaned up.
    pub fn health(&self) -> &RepoHealth {
        &self.health
    }

    /// The repository root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Save (or replace) a dataset in the default (v2 binary) format;
    /// updates the catalog and populates the cache with the saved copy,
    /// so a save-then-load round trip hits memory.
    pub fn save(&mut self, dataset: &Dataset) -> Result<(), RepoError> {
        self.save_with_version(dataset, StorageVersion::V2)
    }

    /// [`Repository::save`] with an explicit storage version (v1 text is
    /// kept writable for migration tests and benchmarks).
    pub fn save_with_version(
        &mut self,
        dataset: &Dataset,
        version: StorageVersion,
    ) -> Result<(), RepoError> {
        let mut span = nggc_obs::span("repo.save");
        span.field("dataset", &dataset.name).field("format", version.name());
        let t0 = Instant::now();
        dataset.validate().map_err(RepoError::Model)?;
        // Encode into a staging directory first; the live dataset dir is
        // untouched until the staged tree is complete and fsynced.
        let dir = self.dataset_dir(&dataset.name);
        let staging = self.staging_dir(&dataset.name);
        fs::remove_dir_all(&staging).ok();
        let bytes = match version {
            StorageVersion::V2 => native_v2::write_dataset_v2(dataset, &staging)?,
            StorageVersion::V1 => {
                native::write_dataset(dataset, &staging)?;
                dir_bytes(&staging)
            }
        };
        span.field("bytes", bytes);
        // Any persisted metadata index is now stale; the cache gets the
        // fresh copy instead of going cold.
        fs::remove_file(self.root.join("meta_index.json")).ok();
        let stats = dataset.stats();
        self.cache.lock().unwrap_or_else(|p| p.into_inner()).insert(
            dataset.name.clone(),
            Arc::new(dataset.clone()),
            stats.bytes as u64,
        );
        // Publish the new generation *before* swapping the data in: if
        // we crash between the two, the catalog's bumped generation has
        // already invalidated every result cached against the old data,
        // and the dataset itself still reads as the old version. The
        // reverse order could leave new data under the old generation —
        // a stale cached result would then revalidate against it.
        let generation = self.next_generation;
        self.next_generation += 1;
        self.flush_generations()?;
        durable::crashpoint("save.generations");
        self.catalog.insert(
            dataset.name.clone(),
            CatalogEntry {
                name: dataset.name.clone(),
                schema: dataset.schema.clone(),
                stats,
                generation,
            },
        );
        self.flush_catalog()?;
        durable::crashpoint("save.catalog");
        durable::atomic_replace_dir(&staging, &dir, &self.root.join(".trash"))?;
        durable::crashpoint("save.swapped");
        let reg = nggc_obs::global();
        reg.counter("nggc_repo_saves_total").inc();
        reg.counter_with("nggc_repo_save_bytes_total", &[("format", version.name())]).add(bytes);
        reg.histogram("nggc_repo_save_ns").record_duration(t0.elapsed());
        Ok(())
    }

    /// Load a dataset by name, from the in-memory cache when possible.
    /// A cache hit is an `Arc` clone — no region data is copied. Cold
    /// loads read whichever storage version the dataset directory holds
    /// (v2 binary container or v1 text, detected by magic bytes).
    ///
    /// Concurrent cold loads of the same dataset are **single-flighted**:
    /// one caller reads disk while the others wait for (and share) its
    /// `Arc`. Coalesced waits are counted in
    /// `nggc_repo_load_coalesced_total`; exactly one
    /// `nggc_repo_loads_total` increment happens per actual disk read.
    pub fn load(&self, name: &str) -> Result<Arc<Dataset>, RepoError> {
        if !self.catalog.contains_key(name) {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        let reg = nggc_obs::global();
        loop {
            if let Some(cached) = self.cache.lock().unwrap_or_else(|p| p.into_inner()).get(name) {
                reg.counter("nggc_repo_cache_hits_total").inc();
                let mut span = nggc_obs::span("repo.cache");
                span.field("dataset", name).field("outcome", "hit");
                return Ok(cached);
            }
            // Join an in-progress load of the same name, or become the
            // leader that performs it.
            let (flight, leader) = {
                let mut map = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
                match map.get(name) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(LoadFlight::default());
                        map.insert(name.to_owned(), Arc::clone(&f));
                        (f, true)
                    }
                }
            };
            if leader {
                return self.load_cold(name, &flight);
            }
            let shared = {
                let mut slot = flight.slot.lock().unwrap_or_else(|p| p.into_inner());
                while !slot.done {
                    slot = flight.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
                }
                slot.result.clone().expect("done flights carry a result")
            };
            match shared {
                Ok(dataset) => {
                    reg.counter("nggc_repo_load_coalesced_total").inc();
                    let mut span = nggc_obs::span("repo.cache");
                    span.field("dataset", name).field("outcome", "coalesced");
                    return Ok(dataset);
                }
                // The leader failed; retry from scratch so this caller
                // surfaces its own typed error (or succeeds if the
                // failure was transient).
                Err(()) => continue,
            }
        }
    }

    /// The disk half of [`Repository::load`]: one actual read + decode,
    /// cache insert, metrics, and single-flight completion. Only the
    /// flight's leader runs this.
    fn load_cold(&self, name: &str, flight: &Arc<LoadFlight>) -> Result<Arc<Dataset>, RepoError> {
        let mut guard = FlightGuard { repo: self, name, flight, outcome: None };
        let reg = nggc_obs::global();
        reg.counter("nggc_repo_cache_misses_total").inc();
        let mut span = nggc_obs::span("repo.load");
        span.field("dataset", name);
        let t0 = Instant::now();
        let dir = self.dataset_dir(name);
        let version = native_v2::detect_version(&dir).unwrap_or(StorageVersion::V1);
        let dataset = match native_v2::read_dataset_auto(&dir) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                guard.outcome = Some(Err(()));
                return Err(e.into());
            }
        };
        reg.counter("nggc_repo_loads_total").inc();
        reg.counter_with("nggc_repo_load_bytes_total", &[("format", version.name())])
            .add(dir_bytes(&dir));
        reg.histogram("nggc_repo_load_ns").record_duration(t0.elapsed());
        span.field("samples", dataset.sample_count())
            .field("regions", dataset.region_count())
            .field("format", version.name());
        // Charge the cache at the catalog's encoded-size estimate
        // (recorded at save time) so eviction is byte-aware without an
        // extra full walk of the regions just loaded.
        let estimate = self.catalog.get(name).map(|e| e.stats.bytes as u64).unwrap_or(0);
        self.cache.lock().unwrap_or_else(|p| p.into_inner()).insert(
            name.to_owned(),
            dataset.clone(),
            estimate,
        );
        guard.outcome = Some(Ok(dataset.clone()));
        Ok(dataset)
    }

    /// [`Repository::load`] with a memory budget: the catalog's size
    /// estimate ([`DatasetStats::bytes`], recorded at save time) is
    /// checked **before** any region data is read, so an oversized
    /// dataset is refused without allocating. `budget` is the number of
    /// bytes the caller can still afford — typically a query governor's
    /// remaining allowance. The check runs even on cache hits so that a
    /// bounded query behaves the same warm or cold.
    pub fn load_bounded(&self, name: &str, budget: u64) -> Result<Arc<Dataset>, RepoError> {
        let entry = self.catalog.get(name).ok_or_else(|| RepoError::NotFound(name.to_owned()))?;
        let estimated = entry.stats.bytes as u64;
        if estimated > budget {
            nggc_obs::global().counter("nggc_repo_load_rejections_total").inc();
            return Err(RepoError::Budget { name: name.to_owned(), estimated, budget });
        }
        self.load(name)
    }

    /// Load a dataset with scan pruning: only the chromosome blocks and
    /// value columns named in `opts` are decoded from the v2 container
    /// (skipped columns come back as typed nulls so the schema stays
    /// stable). Falls back to a full [`Repository::load`] when the
    /// options don't restrict anything or the dataset is stored in the
    /// v1 text format (which has no block index to prune against).
    ///
    /// Cache discipline — a pruned load must never poison a full-load
    /// hit, so this path is deliberately asymmetric with `load`:
    ///
    /// * a cached **full** dataset is served as a superset (the caller's
    ///   operators re-apply their own predicates), but
    /// * a cold pruned read is **never inserted** into the cache and
    ///   does not join the single-flight map — partial data under the
    ///   plain dataset name would be served to later full loads.
    pub fn load_pruned(&self, name: &str, opts: &ScanOptions) -> Result<Arc<Dataset>, RepoError> {
        if !self.catalog.contains_key(name) {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        if opts.is_full() || self.storage_version(name) != Some(StorageVersion::V2) {
            return self.load(name);
        }
        let reg = nggc_obs::global();
        if let Some(cached) = self.cache.lock().unwrap_or_else(|p| p.into_inner()).get(name) {
            // A full dataset is a superset of every pruned view of it.
            reg.counter("nggc_repo_cache_hits_total").inc();
            let mut span = nggc_obs::span("repo.cache");
            span.field("dataset", name).field("outcome", "hit_superset");
            return Ok(cached);
        }
        reg.counter("nggc_repo_cache_misses_total").inc();
        let mut span = nggc_obs::span("repo.load_pruned");
        span.field("dataset", name);
        let t0 = Instant::now();
        let (dataset, stats) = native_v2::read_dataset_v2_pruned(&self.dataset_dir(name), opts)?;
        reg.counter("nggc_repo_loads_total").inc();
        reg.counter("nggc_scan_pruned_total").inc();
        reg.counter("nggc_scan_bytes_read_total").add(stats.bytes_read);
        reg.counter("nggc_scan_bytes_skipped_total").add(stats.bytes_skipped);
        reg.counter("nggc_scan_chrom_blocks_read_total").add(stats.blocks_read);
        reg.counter("nggc_scan_chrom_blocks_skipped_total").add(stats.blocks_skipped);
        reg.histogram("nggc_repo_load_ns").record_duration(t0.elapsed());
        span.field("samples", dataset.sample_count())
            .field("regions", dataset.region_count())
            .field("blocks_read", stats.blocks_read)
            .field("blocks_skipped", stats.blocks_skipped)
            .field("bytes_read", stats.bytes_read)
            .field("bytes_skipped", stats.bytes_skipped);
        Ok(Arc::new(dataset))
    }

    /// The storage version a dataset currently uses on disk, or `None`
    /// when the dataset is unknown or its directory is unreadable.
    pub fn storage_version(&self, name: &str) -> Option<StorageVersion> {
        if !self.catalog.contains_key(name) {
            return None;
        }
        native_v2::detect_version(&self.dataset_dir(name))
    }

    /// Rewrite one dataset in the v2 binary format (idempotent: already-
    /// v2 datasets are recompacted). Returns what was found and the
    /// before/after on-disk sizes.
    pub fn migrate(&mut self, name: &str) -> Result<MigrationReport, RepoError> {
        if !self.catalog.contains_key(name) {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        let dir = self.dataset_dir(name);
        let from = native_v2::detect_version(&dir).unwrap_or(StorageVersion::V1);
        let bytes_before = dir_bytes(&dir);
        let dataset = self.load(name)?;
        self.save(&dataset)?;
        let bytes_after = dir_bytes(&self.dataset_dir(name));
        nggc_obs::global().counter("nggc_repo_migrations_total").inc();
        Ok(MigrationReport { name: name.to_owned(), from, bytes_before, bytes_after })
    }

    /// Migrate every dataset in the repository to v2, visiting each one
    /// even when some fail: a corrupt directory lands in
    /// [`MigrationSweep::failed`] instead of aborting the sweep with the
    /// remaining datasets unrecorded.
    pub fn migrate_all(&mut self) -> MigrationSweep {
        let names: Vec<String> = self.catalog.keys().cloned().collect();
        let mut sweep = MigrationSweep::default();
        for name in names {
            match self.migrate(&name) {
                Ok(report) => sweep.migrated.push(report),
                Err(e) => sweep.failed.push((name, e)),
            }
        }
        sweep
    }

    /// Delete a dataset.
    ///
    /// The catalog (and generation high-water mark) is persisted
    /// *before* the dataset directory is touched: a crash between the
    /// two leaves at worst an orphaned directory for `fsck` to deal
    /// with, never a catalog entry whose generation could revalidate a
    /// stale cached result against data that is gone. The directory
    /// itself is renamed into `.trash` before removal so a crash can
    /// never expose a half-deleted container as live data.
    pub fn delete(&mut self, name: &str) -> Result<(), RepoError> {
        if self.catalog.remove(name).is_none() {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        self.cache.lock().unwrap_or_else(|p| p.into_inner()).invalidate(name);
        fs::remove_file(self.root.join("meta_index.json")).ok();
        self.flush_generations()?;
        self.flush_catalog()?;
        durable::crashpoint("delete.cataloged");
        let dir = self.dataset_dir(name);
        if dir.exists() {
            let trashed = durable::move_to_trash(&dir, &self.root.join(".trash"))?;
            durable::crashpoint("delete.trashed");
            fs::remove_dir_all(&trashed).ok();
        }
        Ok(())
    }

    /// List catalog entries in name order.
    pub fn list(&self) -> Vec<&CatalogEntry> {
        self.catalog.values().collect()
    }

    /// Catalog entry of one dataset.
    pub fn entry(&self, name: &str) -> Option<&CatalogEntry> {
        self.catalog.get(name)
    }

    /// Schema of a dataset (for GMQL compilation) without loading regions.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        self.catalog.get(name).map(|e| e.schema.clone())
    }

    /// Dataset existence check.
    pub fn contains(&self, name: &str) -> bool {
        self.catalog.contains_key(name)
    }

    /// Current generation of a dataset, or `None` when it does not
    /// exist. Every save (and thus migrate) bumps the generation;
    /// deleting removes it; a recreated dataset gets a strictly higher
    /// one. The query result cache validates entries against this.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.catalog.get(name).map(|e| e.generation)
    }

    /// Build (or rebuild) the persistent metadata index over every
    /// dataset in the repository, writing it to `meta_index.json`. The
    /// index powers search without loading any region data afterwards.
    pub fn build_meta_index(&self) -> Result<crate::MetaIndex, RepoError> {
        let mut index = crate::MetaIndex::new();
        for name in self.catalog.keys() {
            let ds = self.load(name)?;
            index.add_dataset(&ds);
        }
        let text = serde_json::to_string(&index)?;
        durable::atomic_write(&self.root.join("meta_index.json"), text.as_bytes())?;
        Ok(index)
    }

    /// Load the persisted metadata index, or rebuild it when absent /
    /// unreadable.
    pub fn meta_index(&self) -> Result<crate::MetaIndex, RepoError> {
        let path = self.root.join("meta_index.json");
        if let Ok(text) = fs::read_to_string(&path) {
            if let Ok(index) = serde_json::from_str(&text) {
                return Ok(index);
            }
        }
        self.build_meta_index()
    }

    fn dataset_dir(&self, name: &str) -> PathBuf {
        self.root.join("datasets").join(name)
    }

    /// Sibling staging directory a save encodes into before the atomic
    /// swap. Dot-prefixed so catalog rebuild scans skip it; pid-tagged
    /// so concurrent processes never collide.
    fn staging_dir(&self, name: &str) -> PathBuf {
        self.root.join("datasets").join(format!(".stage-{}-{name}", std::process::id()))
    }

    fn flush_catalog(&self) -> Result<(), RepoError> {
        let text = serde_json::to_string_pretty(&self.catalog)?;
        durable::atomic_write(&self.root.join("catalog.json"), text.as_bytes())?;
        Ok(())
    }

    fn flush_generations(&self) -> Result<(), RepoError> {
        let text = serde_json::to_string(&GenerationFile { next: self.next_generation })?;
        durable::atomic_write(&self.root.join("generations.json"), text.as_bytes())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Metadata, Sample, Strand, ValueType};

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_repo_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn dataset(name: &str) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        ds.add_sample(
            Sample::new("s1", name)
                .with_regions(vec![
                    GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![0.5.into()])
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds
    }

    #[test]
    fn open_rescues_dataset_stranded_mid_replace() {
        // Simulate a crash between `replace.trashed` and
        // `replace.renamed`: the catalogued directory is gone, the old
        // tree sits in .trash and the staged new tree in datasets/.
        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("DS")).unwrap();
        }
        let dir = root.join("datasets/DS");
        let staged = root.join("datasets/.stage-1-DS");
        fs::rename(&dir, &staged).unwrap();
        let repo = Repository::open(&root).unwrap();
        assert_eq!(repo.health().rescued, 1, "{:?}", repo.health());
        assert!(repo.load("DS").is_ok(), "rescued dataset must be readable");
        // A second open finds nothing left to rescue or sweep.
        let again = Repository::open(&root).unwrap();
        assert_eq!(again.health().rescued, 0);
        assert_eq!(again.health().swept, 0);

        // Same crash state but with an unreadable staged tree: recovery
        // falls back to the trashed (old) copy.
        let root2 = tmp2();
        {
            let mut repo = Repository::open(&root2).unwrap();
            repo.save(&dataset("DS")).unwrap();
        }
        let dir = root2.join("datasets/DS");
        let trash = root2.join(".trash");
        fs::create_dir_all(&trash).unwrap();
        fs::rename(&dir, trash.join("DS-1-0")).unwrap();
        fs::create_dir_all(root2.join("datasets/.stage-1-DS")).unwrap();
        fs::write(root2.join("datasets/.stage-1-DS/data.gdm2"), b"torn").unwrap();
        let repo = Repository::open(&root2).unwrap();
        assert_eq!(repo.health().rescued, 1, "{:?}", repo.health());
        assert!(repo.load("DS").is_ok(), "trashed copy must be restored");
        fs::remove_dir_all(&root).ok();
        fs::remove_dir_all(&root2).ok();
    }

    fn tmp2() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_repo2_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn save_load_roundtrip() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("PEAKS")).unwrap();
        let back = repo.load("PEAKS").unwrap();
        assert_eq!(back.sample_count(), 1);
        assert!(back.samples[0].metadata.has("cell", "HeLa"));
        fs::remove_dir_all(&root).ok();
    }

    fn two_chrom_dataset(name: &str) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        ds.add_sample(
            Sample::new("s1", name)
                .with_regions(vec![
                    GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![0.5.into()]),
                    GRegion::new("chr2", 5, 25, Strand::Neg).with_values(vec![0.9.into()]),
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds
    }

    fn chr2_only() -> ScanOptions {
        ScanOptions { chroms: Some(std::iter::once("chr2".to_string()).collect()), columns: None }
    }

    #[test]
    fn pruned_load_restricts_chromosomes() {
        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&two_chrom_dataset("DS")).unwrap();
        }
        // Reopen: `save` seeds the cache, and a warm cache would serve
        // the full dataset as a superset.
        let repo = Repository::open(&root).unwrap();
        let pruned = repo.load_pruned("DS", &chr2_only()).unwrap();
        assert_eq!(pruned.region_count(), 1);
        assert_eq!(pruned.samples[0].regions[0].chrom.as_str(), "chr2");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pruned_load_never_poisons_full_cache() {
        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&two_chrom_dataset("DS")).unwrap();
        }
        let repo = Repository::open(&root).unwrap();
        // Cold pruned load first: must not seed the cache with a
        // partial dataset under the plain name.
        let pruned = repo.load_pruned("DS", &chr2_only()).unwrap();
        assert_eq!(pruned.region_count(), 1);
        let full = repo.load("DS").unwrap();
        assert_eq!(full.region_count(), 2, "full load after pruned load must see every region");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pruned_load_serves_cached_full_dataset_as_superset() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&two_chrom_dataset("DS")).unwrap();
        let full = repo.load("DS").unwrap();
        let served = repo.load_pruned("DS", &chr2_only()).unwrap();
        assert!(Arc::ptr_eq(&full, &served), "warm pruned load shares the cached full Arc");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pruned_load_falls_back_to_full_for_v1_datasets() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save_with_version(&two_chrom_dataset("OLD"), StorageVersion::V1).unwrap();
        let ds = repo.load_pruned("OLD", &chr2_only()).unwrap();
        assert_eq!(ds.region_count(), 2, "v1 has no block index; falls back to full load");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn catalog_persists_across_open() {
        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("A")).unwrap();
            repo.save(&dataset("B")).unwrap();
        }
        let repo = Repository::open(&root).unwrap();
        let names: Vec<&str> = repo.list().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert!(repo.schema_of("A").unwrap().get("p").is_some());
        assert_eq!(repo.entry("A").unwrap().stats.regions, 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn delete_removes_everything() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("X")).unwrap();
        repo.delete("X").unwrap();
        assert!(!repo.contains("X"));
        assert!(matches!(repo.load("X"), Err(RepoError::NotFound(_))));
        assert!(matches!(repo.delete("X"), Err(RepoError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn meta_index_builds_and_persists() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("A")).unwrap();
        let idx = repo.build_meta_index().unwrap();
        assert_eq!(idx.lookup("cell", "HeLa").len(), 1);
        assert!(root.join("meta_index.json").exists());
        // Loading uses the persisted file.
        let idx2 = repo.meta_index().unwrap();
        assert_eq!(idx2.documents(), 1);
        // A corrupt file falls back to a rebuild.
        fs::write(root.join("meta_index.json"), "garbage").unwrap();
        let idx3 = repo.meta_index().unwrap();
        assert_eq!(idx3.documents(), 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cache_hits_and_invalidation() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("C")).unwrap();
        let reg = nggc_obs::global();
        let hits0 = reg.counter("nggc_repo_cache_hits_total").get();
        let first = repo.load("C").unwrap();
        let second = repo.load("C").unwrap();
        assert_eq!(first.sample_count(), second.sample_count());
        assert_eq!(first.region_count(), second.region_count());
        assert!(
            reg.counter("nggc_repo_cache_hits_total").get() > hits0,
            "second load should hit the cache"
        );
        // Saving a new version must invalidate the cached copy.
        let mut v2 = dataset("C");
        v2.add_sample(Sample::new("s2", "C").with_regions(vec![
            GRegion::new("chr3", 1, 4, Strand::Pos).with_values(vec![0.9.into()]),
        ]))
        .unwrap();
        repo.save(&v2).unwrap();
        assert_eq!(repo.load("C").unwrap().sample_count(), 2);
        // Deleting drops both catalog entry and cache.
        repo.delete("C").unwrap();
        assert!(matches!(repo.load("C"), Err(RepoError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_writes_v2_container_by_default() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("BIN")).unwrap();
        assert_eq!(repo.storage_version("BIN"), Some(StorageVersion::V2));
        assert!(root.join("datasets/BIN/data.gdm2").exists());
        assert!(!root.join("datasets/BIN/schema.gdm").exists());
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn v1_datasets_load_transparently_and_migrate() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save_with_version(&dataset("OLD"), StorageVersion::V1).unwrap();
        assert_eq!(repo.storage_version("OLD"), Some(StorageVersion::V1));
        assert!(root.join("datasets/OLD/schema.gdm").exists());

        // Reopen so the cache is cold: the load must go through the v1
        // text reader.
        let mut repo = Repository::open(&root).unwrap();
        let ds = repo.load("OLD").unwrap();
        assert_eq!(ds.sample_count(), 1);
        assert!(ds.samples[0].metadata.has("cell", "HeLa"));

        let report = repo.migrate("OLD").unwrap();
        assert_eq!(report.from, StorageVersion::V1);
        assert!(report.bytes_before > 0 && report.bytes_after > 0);
        assert_eq!(repo.storage_version("OLD"), Some(StorageVersion::V2));
        // Reload from disk (fresh repo, cold cache) — same content.
        let repo = Repository::open(&root).unwrap();
        let back = repo.load("OLD").unwrap();
        assert_eq!(back.sample_count(), 1);
        assert_eq!(back.samples[0].regions, ds.samples[0].regions);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn migrate_all_reports_every_dataset() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save_with_version(&dataset("A"), StorageVersion::V1).unwrap();
        repo.save(&dataset("B")).unwrap();
        let sweep = repo.migrate_all();
        assert!(sweep.is_clean());
        assert_eq!(sweep.total(), 2);
        assert_eq!(sweep.migrated[0].from, StorageVersion::V1);
        assert_eq!(sweep.migrated[1].from, StorageVersion::V2);
        assert!(repo
            .list()
            .iter()
            .all(|e| repo.storage_version(&e.name) == Some(StorageVersion::V2)));
        assert!(matches!(repo.migrate("MISSING"), Err(RepoError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn migrate_all_keeps_going_past_a_corrupt_dataset() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save_with_version(&dataset("A"), StorageVersion::V1).unwrap();
        repo.save_with_version(&dataset("BAD"), StorageVersion::V1).unwrap();
        repo.save_with_version(&dataset("C"), StorageVersion::V1).unwrap();
        // Corrupt BAD's on-disk layout so its load fails mid-sweep, and
        // reopen so the sweep cannot be rescued by the warm save cache.
        fs::write(root.join("datasets/BAD/schema.gdm"), "not a schema\x00\x01").unwrap();
        let mut repo = Repository::open(&root).unwrap();
        let sweep = repo.migrate_all();
        assert!(!sweep.is_clean());
        assert_eq!(sweep.total(), 3);
        let migrated: Vec<&str> = sweep.migrated.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(migrated, vec!["A", "C"], "the sweep must not stop at BAD");
        assert_eq!(sweep.failed.len(), 1);
        assert_eq!(sweep.failed[0].0, "BAD");
        // The survivors really are v2 on disk now.
        assert_eq!(repo.storage_version("A"), Some(StorageVersion::V2));
        assert_eq!(repo.storage_version("C"), Some(StorageVersion::V2));
        assert_eq!(repo.storage_version("BAD"), Some(StorageVersion::V1));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn concurrent_cold_loads_single_flight() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Barrier;

        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("STAMPEDE")).unwrap();
        }
        // Fresh open: the cache is cold, so every thread below races
        // through the miss path together.
        let repo = Arc::new(Repository::open(&root).unwrap());
        let reg = nggc_obs::global();
        let loads0 = reg.counter("nggc_repo_loads_total").get();
        let coalesced0 = reg.counter("nggc_repo_load_coalesced_total").get();
        const N: usize = 16;
        let barrier = Arc::new(Barrier::new(N));
        let errors = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let repo = Arc::clone(&repo);
                let barrier = Arc::clone(&barrier);
                let errors = Arc::clone(&errors);
                std::thread::spawn(move || {
                    barrier.wait();
                    match repo.load("STAMPEDE") {
                        Ok(ds) => ds,
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            panic!("load failed");
                        }
                    }
                })
            })
            .collect();
        let datasets: Vec<Arc<Dataset>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(errors.load(Ordering::Relaxed), 0);
        // Every thread shares one allocation: no duplicate decode.
        assert!(
            datasets.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])),
            "stampeding loads must share the leader's Arc"
        );
        assert_eq!(
            reg.counter("nggc_repo_loads_total").get() - loads0,
            1,
            "exactly one disk load for {N} concurrent cold misses"
        );
        let coalesced = reg.counter("nggc_repo_load_coalesced_total").get() - coalesced0;
        let hits_after: u64 = N as u64 - 1;
        assert!(
            coalesced <= hits_after,
            "coalesced ({coalesced}) cannot exceed the {hits_after} non-leader loads"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn failed_single_flight_load_does_not_wedge_followers() {
        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("GONE")).unwrap();
        }
        let repo = Arc::new(Repository::open(&root).unwrap());
        // Remove the data files (catalog entry survives) so every load
        // takes the error path; followers must all observe an error
        // rather than blocking on a flight that never completes.
        fs::remove_dir_all(root.join("datasets/GONE")).unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let repo = Arc::clone(&repo);
                std::thread::spawn(move || repo.load("GONE").is_err())
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap(), "every load of the missing dataset errors");
        }
        assert!(
            repo.inflight.lock().unwrap().is_empty(),
            "failed flights must not leak in-flight entries"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_populates_cache_so_next_load_hits() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        let reg = nggc_obs::global();
        let misses0 = reg.counter("nggc_repo_cache_misses_total").get();
        let hits0 = reg.counter("nggc_repo_cache_hits_total").get();
        repo.save(&dataset("WARM")).unwrap();
        let ds = repo.load("WARM").unwrap();
        assert_eq!(ds.sample_count(), 1);
        assert_eq!(
            reg.counter("nggc_repo_cache_misses_total").get(),
            misses0,
            "save-then-load must not miss"
        );
        assert!(reg.counter("nggc_repo_cache_hits_total").get() > hits0);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cache_hit_shares_the_same_allocation() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("SHARED")).unwrap();
        let a = repo.load("SHARED").unwrap();
        let b = repo.load("SHARED").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache hits must be pointer bumps, not deep copies");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let mut cache = DatasetCache::default();
        let mk = |n: &str| Arc::new(dataset(n));
        for i in 0..CACHE_CAPACITY {
            cache.insert(format!("D{i}"), mk(&format!("D{i}")), 100);
        }
        // Touch the oldest entry, then overflow: the second-oldest must
        // be the one evicted.
        assert!(cache.get("D0").is_some());
        cache.insert("EXTRA".into(), mk("EXTRA"), 100);
        assert!(cache.get("D0").is_some(), "recently used survives");
        assert!(cache.get("D1").is_none(), "least recently used is evicted");
        assert!(cache.get("EXTRA").is_some());
        assert_eq!(cache.entries.len(), CACHE_CAPACITY);
        assert_eq!(cache.order.len(), CACHE_CAPACITY);
        assert_eq!(cache.bytes, 100 * CACHE_CAPACITY as u64);
    }

    #[test]
    fn eviction_is_byte_aware_with_count_backstop() {
        // Byte budget for two small datasets; count cap far away. Three
        // entries of 400 bytes each must not all stay resident.
        let mut cache = DatasetCache::bounded(CACHE_CAPACITY, 1000);
        let mk = |n: &str| Arc::new(dataset(n));
        cache.insert("A".into(), mk("A"), 400);
        cache.insert("B".into(), mk("B"), 400);
        cache.insert("C".into(), mk("C"), 400);
        assert!(cache.get("A").is_none(), "byte pressure evicts the LRU entry");
        assert!(cache.get("B").is_some());
        assert!(cache.get("C").is_some());
        assert_eq!(cache.bytes, 800);
        // Replacing an entry re-charges it instead of double counting.
        cache.insert("C".into(), mk("C"), 500);
        assert_eq!(cache.bytes, 900);
        // A single dataset larger than the whole budget stays resident
        // alone (evicting it would just force an immediate reload)…
        cache.insert("HUGE".into(), mk("HUGE"), 5000);
        assert!(cache.get("HUGE").is_some());
        assert_eq!(cache.entries.len(), 1, "everything else is evicted");
        assert_eq!(cache.bytes, 5000);
        // …and is the first to go once anything newer arrives.
        cache.insert("D".into(), mk("D"), 100);
        assert!(cache.get("HUGE").is_none());
        assert!(cache.get("D").is_some());
        assert_eq!(cache.bytes, 100);
    }

    #[test]
    fn generations_bump_on_save_and_vanish_on_delete() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        assert_eq!(repo.generation("G"), None);
        repo.save(&dataset("G")).unwrap();
        let g1 = repo.generation("G").unwrap();
        assert!(g1 >= 1);
        repo.save(&dataset("G")).unwrap();
        let g2 = repo.generation("G").unwrap();
        assert!(g2 > g1, "every save bumps the generation");
        // Migrate goes through save and bumps too.
        repo.migrate("G").unwrap();
        assert!(repo.generation("G").unwrap() > g2);
        repo.delete("G").unwrap();
        assert_eq!(repo.generation("G"), None);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn generations_survive_reopen_and_never_reuse_after_recreate() {
        let root = tmp();
        let last = {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("R")).unwrap();
            repo.save(&dataset("R")).unwrap();
            let g = repo.generation("R").unwrap();
            repo.delete("R").unwrap();
            g
        };
        // Reopen after the delete: the catalog holds no generations at
        // all, but the persisted high-water mark must still advance a
        // recreated dataset past every generation ever handed out.
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("R")).unwrap();
        assert!(
            repo.generation("R").unwrap() > last,
            "recreated dataset must not reuse generation {last}"
        );
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn bounded_load_rejects_before_reading() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("BIG")).unwrap();
        let estimated = repo.entry("BIG").unwrap().stats.bytes as u64;
        assert!(estimated > 0);
        // A budget below the estimate refuses without touching regions.
        let err = repo.load_bounded("BIG", estimated - 1).unwrap_err();
        match err {
            RepoError::Budget { name, estimated: e, budget } => {
                assert_eq!(name, "BIG");
                assert_eq!(e, estimated);
                assert_eq!(budget, estimated - 1);
            }
            other => panic!("expected Budget error, got {other:?}"),
        }
        // An adequate budget loads normally.
        let ds = repo.load_bounded("BIG", estimated).unwrap();
        assert_eq!(ds.sample_count(), 1);
        // Unknown datasets still surface NotFound, not Budget.
        assert!(matches!(repo.load_bounded("NOPE", u64::MAX), Err(RepoError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_replaces() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("X")).unwrap();
        let mut ds2 = dataset("X");
        ds2.add_sample(Sample::new("s2", "X").with_regions(vec![
            GRegion::new("chr2", 0, 5, Strand::Neg).with_values(vec![0.1.into()]),
        ]))
        .unwrap();
        repo.save(&ds2).unwrap();
        assert_eq!(repo.load("X").unwrap().sample_count(), 2);
        fs::remove_dir_all(&root).ok();
    }
}
