//! The dataset repository: a directory of GDM-native datasets plus a
//! catalog.
//!
//! The paper's integration vision (§4.3) assumes repositories of curated
//! datasets "with both regions and metadata" addressable by name. A
//! [`Repository`] manages such a directory: datasets persist in the
//! GDM-native layout, and a JSON catalog keeps name → schema/statistics
//! so that queries can be compiled (and their result sizes estimated,
//! §4.4) without touching region files.

use crate::error::RepoError;
use nggc_formats::native;
use nggc_gdm::{Dataset, DatasetStats, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Datasets kept in the in-memory read cache (FIFO eviction).
const CACHE_CAPACITY: usize = 8;

/// One catalog entry.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CatalogEntry {
    /// Dataset name.
    pub name: String,
    /// Region schema.
    pub schema: Schema,
    /// Cardinality statistics at save time.
    pub stats: DatasetStats,
}

/// An on-disk dataset repository with a small in-memory read cache.
///
/// [`Repository::load`] keeps the last [`CACHE_CAPACITY`] loaded
/// datasets in memory (FIFO eviction); `save`/`delete` invalidate the
/// cached copy. Cache traffic and load/save latency are reported to the
/// global `nggc-obs` registry (`nggc_repo_*`).
#[derive(Debug)]
pub struct Repository {
    root: PathBuf,
    catalog: BTreeMap<String, CatalogEntry>,
    cache: Mutex<DatasetCache>,
}

#[derive(Debug, Default)]
struct DatasetCache {
    entries: BTreeMap<String, Dataset>,
    order: VecDeque<String>,
}

impl DatasetCache {
    fn get(&self, name: &str) -> Option<Dataset> {
        self.entries.get(name).cloned()
    }

    fn insert(&mut self, name: String, dataset: Dataset) {
        if self.entries.insert(name.clone(), dataset).is_none() {
            self.order.push_back(name);
            while self.entries.len() > CACHE_CAPACITY {
                if let Some(evicted) = self.order.pop_front() {
                    self.entries.remove(&evicted);
                }
            }
        }
    }

    fn invalidate(&mut self, name: &str) {
        if self.entries.remove(name).is_some() {
            self.order.retain(|n| n != name);
        }
    }
}

impl Repository {
    /// Open (or initialise) a repository at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Repository, RepoError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        let catalog_path = root.join("catalog.json");
        let catalog = if catalog_path.exists() {
            let text = fs::read_to_string(&catalog_path)?;
            serde_json::from_str(&text)?
        } else {
            BTreeMap::new()
        };
        Ok(Repository { root, catalog, cache: Mutex::new(DatasetCache::default()) })
    }

    /// The repository root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Save (or replace) a dataset; updates the catalog and invalidates
    /// any cached copy.
    pub fn save(&mut self, dataset: &Dataset) -> Result<(), RepoError> {
        let mut span = nggc_obs::span("repo.save");
        span.field("dataset", &dataset.name);
        let t0 = Instant::now();
        dataset.validate().map_err(RepoError::Model)?;
        let dir = self.dataset_dir(&dataset.name);
        if dir.exists() {
            fs::remove_dir_all(&dir)?;
        }
        native::write_dataset(dataset, &dir)?;
        // Any persisted metadata index is now stale, as is the cache.
        fs::remove_file(self.root.join("meta_index.json")).ok();
        self.cache.lock().unwrap_or_else(|p| p.into_inner()).invalidate(&dataset.name);
        self.catalog.insert(
            dataset.name.clone(),
            CatalogEntry {
                name: dataset.name.clone(),
                schema: dataset.schema.clone(),
                stats: dataset.stats(),
            },
        );
        let out = self.flush_catalog();
        let reg = nggc_obs::global();
        reg.counter("nggc_repo_saves_total").inc();
        reg.histogram("nggc_repo_save_ns").record_duration(t0.elapsed());
        out
    }

    /// Load a dataset by name, from the in-memory cache when possible.
    pub fn load(&self, name: &str) -> Result<Dataset, RepoError> {
        if !self.catalog.contains_key(name) {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        let reg = nggc_obs::global();
        if let Some(cached) = self.cache.lock().unwrap_or_else(|p| p.into_inner()).get(name) {
            reg.counter("nggc_repo_cache_hits_total").inc();
            return Ok(cached);
        }
        reg.counter("nggc_repo_cache_misses_total").inc();
        let mut span = nggc_obs::span("repo.load");
        span.field("dataset", name);
        let t0 = Instant::now();
        let dataset = native::read_dataset(&self.dataset_dir(name))?;
        reg.counter("nggc_repo_loads_total").inc();
        reg.histogram("nggc_repo_load_ns").record_duration(t0.elapsed());
        span.field("samples", dataset.sample_count()).field("regions", dataset.region_count());
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .insert(name.to_owned(), dataset.clone());
        Ok(dataset)
    }

    /// Delete a dataset.
    pub fn delete(&mut self, name: &str) -> Result<(), RepoError> {
        if self.catalog.remove(name).is_none() {
            return Err(RepoError::NotFound(name.to_owned()));
        }
        self.cache.lock().unwrap_or_else(|p| p.into_inner()).invalidate(name);
        let dir = self.dataset_dir(name);
        if dir.exists() {
            fs::remove_dir_all(dir)?;
        }
        fs::remove_file(self.root.join("meta_index.json")).ok();
        self.flush_catalog()
    }

    /// List catalog entries in name order.
    pub fn list(&self) -> Vec<&CatalogEntry> {
        self.catalog.values().collect()
    }

    /// Catalog entry of one dataset.
    pub fn entry(&self, name: &str) -> Option<&CatalogEntry> {
        self.catalog.get(name)
    }

    /// Schema of a dataset (for GMQL compilation) without loading regions.
    pub fn schema_of(&self, name: &str) -> Option<Schema> {
        self.catalog.get(name).map(|e| e.schema.clone())
    }

    /// Dataset existence check.
    pub fn contains(&self, name: &str) -> bool {
        self.catalog.contains_key(name)
    }

    /// Build (or rebuild) the persistent metadata index over every
    /// dataset in the repository, writing it to `meta_index.json`. The
    /// index powers search without loading any region data afterwards.
    pub fn build_meta_index(&self) -> Result<crate::MetaIndex, RepoError> {
        let mut index = crate::MetaIndex::new();
        for name in self.catalog.keys() {
            let ds = self.load(name)?;
            index.add_dataset(&ds);
        }
        let text = serde_json::to_string(&index)?;
        fs::write(self.root.join("meta_index.json"), text)?;
        Ok(index)
    }

    /// Load the persisted metadata index, or rebuild it when absent /
    /// unreadable.
    pub fn meta_index(&self) -> Result<crate::MetaIndex, RepoError> {
        let path = self.root.join("meta_index.json");
        if let Ok(text) = fs::read_to_string(&path) {
            if let Ok(index) = serde_json::from_str(&text) {
                return Ok(index);
            }
        }
        self.build_meta_index()
    }

    fn dataset_dir(&self, name: &str) -> PathBuf {
        self.root.join("datasets").join(name)
    }

    fn flush_catalog(&self) -> Result<(), RepoError> {
        let text = serde_json::to_string_pretty(&self.catalog)?;
        fs::write(self.root.join("catalog.json"), text)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Metadata, Sample, Strand, ValueType};

    fn tmp() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_repo_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn dataset(name: &str) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        ds.add_sample(
            Sample::new("s1", name)
                .with_regions(vec![
                    GRegion::new("chr1", 0, 10, Strand::Pos).with_values(vec![0.5.into()])
                ])
                .with_metadata(Metadata::from_pairs([("cell", "HeLa")])),
        )
        .unwrap();
        ds
    }

    #[test]
    fn save_load_roundtrip() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("PEAKS")).unwrap();
        let back = repo.load("PEAKS").unwrap();
        assert_eq!(back.sample_count(), 1);
        assert!(back.samples[0].metadata.has("cell", "HeLa"));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn catalog_persists_across_open() {
        let root = tmp();
        {
            let mut repo = Repository::open(&root).unwrap();
            repo.save(&dataset("A")).unwrap();
            repo.save(&dataset("B")).unwrap();
        }
        let repo = Repository::open(&root).unwrap();
        let names: Vec<&str> = repo.list().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["A", "B"]);
        assert!(repo.schema_of("A").unwrap().get("p").is_some());
        assert_eq!(repo.entry("A").unwrap().stats.regions, 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn delete_removes_everything() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("X")).unwrap();
        repo.delete("X").unwrap();
        assert!(!repo.contains("X"));
        assert!(matches!(repo.load("X"), Err(RepoError::NotFound(_))));
        assert!(matches!(repo.delete("X"), Err(RepoError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn meta_index_builds_and_persists() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("A")).unwrap();
        let idx = repo.build_meta_index().unwrap();
        assert_eq!(idx.lookup("cell", "HeLa").len(), 1);
        assert!(root.join("meta_index.json").exists());
        // Loading uses the persisted file.
        let idx2 = repo.meta_index().unwrap();
        assert_eq!(idx2.documents(), 1);
        // A corrupt file falls back to a rebuild.
        fs::write(root.join("meta_index.json"), "garbage").unwrap();
        let idx3 = repo.meta_index().unwrap();
        assert_eq!(idx3.documents(), 1);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cache_hits_and_invalidation() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("C")).unwrap();
        let reg = nggc_obs::global();
        let hits0 = reg.counter("nggc_repo_cache_hits_total").get();
        let first = repo.load("C").unwrap();
        let second = repo.load("C").unwrap();
        assert_eq!(first.sample_count(), second.sample_count());
        assert_eq!(first.region_count(), second.region_count());
        assert!(
            reg.counter("nggc_repo_cache_hits_total").get() > hits0,
            "second load should hit the cache"
        );
        // Saving a new version must invalidate the cached copy.
        let mut v2 = dataset("C");
        v2.add_sample(Sample::new("s2", "C").with_regions(vec![
            GRegion::new("chr3", 1, 4, Strand::Pos).with_values(vec![0.9.into()]),
        ]))
        .unwrap();
        repo.save(&v2).unwrap();
        assert_eq!(repo.load("C").unwrap().sample_count(), 2);
        // Deleting drops both catalog entry and cache.
        repo.delete("C").unwrap();
        assert!(matches!(repo.load("C"), Err(RepoError::NotFound(_))));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_replaces() {
        let root = tmp();
        let mut repo = Repository::open(&root).unwrap();
        repo.save(&dataset("X")).unwrap();
        let mut ds2 = dataset("X");
        ds2.add_sample(Sample::new("s2", "X").with_regions(vec![
            GRegion::new("chr2", 0, 5, Strand::Neg).with_values(vec![0.1.into()]),
        ]))
        .unwrap();
        repo.save(&ds2).unwrap();
        assert_eq!(repo.load("X").unwrap().sample_count(), 2);
        fs::remove_dir_all(&root).ok();
    }
}
