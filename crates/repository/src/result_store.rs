//! The on-disk query result cache (`<repo>/result_cache/`).
//!
//! One-shot `nggc query` processes cannot share an in-memory cache, so
//! repeated queries from the shell get a persistent layer instead: each
//! entry is a directory named by the plan fingerprint's hex, holding a
//! `meta.json` (format version, the generation snapshot of every source
//! dataset, output names, encoded bytes) plus one v2 binary container
//! per output. Validation mirrors the in-memory cache: an entry is
//! served only when every recorded source generation still matches the
//! repository catalog ([`crate::Repository::generation`]); otherwise it
//! is deleted on sight. Eviction is mtime-LRU under a byte budget — a
//! served hit refreshes the entry's mtime.
//!
//! All writes are best-effort and crash-safe: entries are staged in a
//! temp directory, fsynced, and renamed into place (the
//! [`crate::durable`] protocol), and any unreadable entry is treated as
//! a miss and removed.

use crate::durable;
use crate::error::RepoError;
use nggc_formats::native_v2;
use nggc_gdm::Dataset;
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

/// Bump when the entry layout or `meta.json` shape changes: older
/// entries then self-expire instead of being misread.
const STORE_VERSION: u32 = 1;

/// Persisted per-entry metadata.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct EntryMeta {
    version: u32,
    /// `(source dataset, generation when the result was computed)`.
    gens: Vec<(String, u64)>,
    /// Output dataset names, in the order of the `out<N>` directories.
    outputs: Vec<String>,
    /// Total encoded bytes of the outputs (for eviction accounting).
    bytes: u64,
}

/// A byte-bounded on-disk store of materialized query results.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    capacity_bytes: u64,
}

impl ResultStore {
    /// Open (or create) a store rooted at `dir` with an eviction budget
    /// of `capacity_bytes` of encoded output data.
    pub fn open(dir: impl Into<PathBuf>, capacity_bytes: u64) -> ResultStore {
        let dir = dir.into();
        fs::create_dir_all(&dir).ok();
        ResultStore { dir, capacity_bytes }
    }

    fn entry_dir(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}"))
    }

    /// Look up `key`, revalidating the recorded source generations via
    /// `gen_of`. Stale, corrupt, or version-mismatched entries are
    /// removed and reported as a miss. A hit refreshes the entry for
    /// LRU purposes and increments `nggc_result_cache_hits_total`.
    pub fn lookup(
        &self,
        key: u64,
        gen_of: &dyn Fn(&str) -> Option<u64>,
    ) -> Option<HashMap<String, Dataset>> {
        let reg = nggc_obs::global();
        let dir = self.entry_dir(key);
        let meta_path = dir.join("meta.json");
        let text = match fs::read_to_string(&meta_path) {
            Ok(t) => t,
            Err(_) => {
                reg.counter("nggc_result_cache_misses_total").inc();
                return None;
            }
        };
        let meta: EntryMeta = match serde_json::from_str(&text) {
            Ok(m) => m,
            Err(_) => {
                fs::remove_dir_all(&dir).ok();
                reg.counter("nggc_result_cache_misses_total").inc();
                return None;
            }
        };
        if meta.version != STORE_VERSION {
            fs::remove_dir_all(&dir).ok();
            reg.counter("nggc_result_cache_misses_total").inc();
            return None;
        }
        if !meta.gens.iter().all(|(name, gen)| gen_of(name) == Some(*gen)) {
            fs::remove_dir_all(&dir).ok();
            reg.counter("nggc_result_cache_invalidations_total").inc();
            reg.counter("nggc_result_cache_misses_total").inc();
            return None;
        }
        let mut outputs = HashMap::new();
        for (i, name) in meta.outputs.iter().enumerate() {
            match native_v2::read_dataset_auto(&dir.join(format!("out{i}"))) {
                Ok(ds) => {
                    outputs.insert(name.clone(), ds);
                }
                Err(_) => {
                    fs::remove_dir_all(&dir).ok();
                    reg.counter("nggc_result_cache_misses_total").inc();
                    return None;
                }
            }
        }
        // Rewriting meta.json refreshes the entry's mtime, which is the
        // LRU recency signal eviction sorts on. Atomic so a crash
        // mid-refresh cannot tear a live entry's metadata.
        durable::atomic_write(&meta_path, text.as_bytes()).ok();
        reg.counter("nggc_result_cache_hits_total").inc();
        Some(outputs)
    }

    /// Persist a computed result under `key` with its pre-execution
    /// generation snapshot, then evict least-recently-used entries over
    /// the byte budget. Results larger than the whole budget are not
    /// stored. Crash-safe: the entry is staged and renamed into place.
    pub fn store(
        &self,
        key: u64,
        gens: &[(String, u64)],
        outputs: &HashMap<String, Dataset>,
    ) -> Result<(), RepoError> {
        let bytes: u64 = outputs.values().map(|d| d.encoded_size() as u64).sum();
        if bytes > self.capacity_bytes {
            return Ok(());
        }
        // Sort outputs by name so `out<N>` indices are deterministic.
        let mut names: Vec<&String> = outputs.keys().collect();
        names.sort();
        let staging = self.dir.join(format!(".tmp-{key:016x}-{}", std::process::id()));
        fs::remove_dir_all(&staging).ok();
        fs::create_dir_all(&staging)?;
        for (i, name) in names.iter().enumerate() {
            native_v2::write_dataset_v2(&outputs[name.as_str()], &staging.join(format!("out{i}")))?;
        }
        let meta = EntryMeta {
            version: STORE_VERSION,
            gens: gens.to_vec(),
            outputs: names.into_iter().cloned().collect(),
            bytes,
        };
        fs::write(staging.join("meta.json"), serde_json::to_string(&meta)?)?;
        // Fsync the staged entry and swap it in durably: a crash leaves
        // either the previous entry, no entry, or the complete new one.
        let dir = self.entry_dir(key);
        durable::atomic_replace_dir(&staging, &dir, &self.dir.join(".trash"))?;
        nggc_obs::global().counter("nggc_result_cache_insert_bytes_total").add(bytes);
        self.evict_over_budget(Some(key));
        Ok(())
    }

    /// Remove oldest entries (by `meta.json` mtime) until total encoded
    /// bytes fit the budget. `keep` is never evicted — it is the entry
    /// the caller just wrote.
    fn evict_over_budget(&self, keep: Option<u64>) {
        let keep_dir = keep.map(|k| self.entry_dir(k));
        let mut entries: Vec<(PathBuf, SystemTime, u64)> = Vec::new();
        let Ok(read) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in read.filter_map(|e| e.ok()) {
            let path = entry.path();
            if !path.is_dir()
                || path.file_name().is_some_and(|n| n.to_string_lossy().starts_with('.'))
            {
                continue;
            }
            let meta_path = path.join("meta.json");
            let Ok(text) = fs::read_to_string(&meta_path) else {
                // Half-written or foreign directory: reclaim it.
                fs::remove_dir_all(&path).ok();
                continue;
            };
            let Ok(meta) = serde_json::from_str::<EntryMeta>(&text) else {
                fs::remove_dir_all(&path).ok();
                continue;
            };
            let mtime = fs::metadata(&meta_path)
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            entries.push((path, mtime, meta.bytes));
        }
        let mut total: u64 = entries.iter().map(|(_, _, b)| b).sum();
        entries.sort_by_key(|(_, mtime, _)| *mtime);
        let reg = nggc_obs::global();
        for (path, _, bytes) in entries {
            if total <= self.capacity_bytes {
                break;
            }
            if keep_dir.as_deref() == Some(path.as_path()) {
                continue;
            }
            fs::remove_dir_all(&path).ok();
            reg.counter("nggc_result_cache_evictions_total").inc();
            total -= bytes;
        }
    }

    /// Entries whose recorded source generations no longer match
    /// `gen_of` (or whose metadata is unreadable): they can only ever
    /// miss. Pure inspection — nothing is removed.
    pub fn stale_entries(&self, gen_of: &dyn Fn(&str) -> Option<u64>) -> Vec<PathBuf> {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut stale = Vec::new();
        for entry in read.filter_map(|e| e.ok()) {
            let path = entry.path();
            if !path.is_dir()
                || path.file_name().is_some_and(|n| n.to_string_lossy().starts_with('.'))
            {
                continue;
            }
            let dead = match fs::read_to_string(path.join("meta.json"))
                .ok()
                .and_then(|t| serde_json::from_str::<EntryMeta>(&t).ok())
            {
                Some(meta) => {
                    meta.version != STORE_VERSION
                        || !meta.gens.iter().all(|(name, gen)| gen_of(name) == Some(*gen))
                }
                // Unreadable metadata is as dead as a stale snapshot.
                None => true,
            };
            if dead {
                stale.push(path);
            }
        }
        stale
    }

    /// Remove every entry [`ResultStore::stale_entries`] flags — the
    /// eager counterpart of the delete-on-sight validation
    /// [`ResultStore::lookup`] performs lazily. `nggc fsck --repair`
    /// runs this so a repaired repository carries no cached result
    /// whose source generation is gone. Returns how many entries were
    /// evicted.
    pub fn sweep_stale(&self, gen_of: &dyn Fn(&str) -> Option<u64>) -> u64 {
        let reg = nggc_obs::global();
        let mut evicted = 0;
        for path in self.stale_entries(gen_of) {
            if fs::remove_dir_all(&path).is_ok() {
                evicted += 1;
                reg.counter("nggc_result_cache_invalidations_total").inc();
            }
        }
        evicted
    }

    /// `(entries, encoded bytes)` currently resident — for tests and
    /// `nggc stats`.
    pub fn usage(&self) -> (u64, u64) {
        let Ok(read) = fs::read_dir(&self.dir) else {
            return (0, 0);
        };
        let mut entries = 0;
        let mut bytes = 0;
        for e in read.filter_map(|e| e.ok()) {
            let path = e.path();
            if !path.is_dir()
                || path.file_name().is_some_and(|n| n.to_string_lossy().starts_with('.'))
            {
                continue;
            }
            if let Ok(meta) = fs::read_to_string(path.join("meta.json"))
                .map_err(RepoError::from)
                .and_then(|t| serde_json::from_str::<EntryMeta>(&t).map_err(RepoError::from))
            {
                entries += 1;
                bytes += meta.bytes;
            }
        }
        (entries, bytes)
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Attribute, GRegion, Sample, Schema, Strand, ValueType};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_result_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    fn dataset(name: &str, regions: usize) -> Dataset {
        let schema = Schema::new(vec![Attribute::new("p", ValueType::Float)]).unwrap();
        let mut ds = Dataset::new(name, schema);
        let regs: Vec<GRegion> = (0..regions)
            .map(|i| {
                GRegion::new("chr1", i as u64 * 10, i as u64 * 10 + 5, Strand::Pos)
                    .with_values(vec![0.5.into()])
            })
            .collect();
        ds.add_sample(Sample::new("s1", name).with_regions(regs)).unwrap();
        ds
    }

    fn outputs(name: &str, regions: usize) -> HashMap<String, Dataset> {
        let mut m = HashMap::new();
        m.insert(name.to_owned(), dataset(name, regions));
        m
    }

    #[test]
    fn store_lookup_roundtrip_and_generation_invalidation() {
        let store = ResultStore::open(tmp("roundtrip"), 1 << 20);
        store.store(7, &[("SRC".into(), 3)], &outputs("R", 5)).unwrap();
        let back = store.lookup(7, &|_| Some(3)).expect("valid entry hits");
        assert_eq!(back["R"].region_count(), 5);
        // Generation moved on: entry is deleted on sight.
        assert!(store.lookup(7, &|_| Some(4)).is_none());
        assert!(store.lookup(7, &|_| Some(3)).is_none(), "stale entry was removed");
        assert_eq!(store.usage().0, 0);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn deleted_source_invalidates() {
        let store = ResultStore::open(tmp("deleted"), 1 << 20);
        store.store(1, &[("A".into(), 1), ("B".into(), 2)], &outputs("R", 2)).unwrap();
        assert!(store.lookup(1, &|n| if n == "A" { Some(1) } else { None }).is_none());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn multiple_outputs_roundtrip() {
        let store = ResultStore::open(tmp("multi"), 1 << 20);
        let mut outs = outputs("R1", 2);
        outs.insert("R2".into(), dataset("R2", 4));
        store.store(9, &[("S".into(), 1)], &outs).unwrap();
        let back = store.lookup(9, &|_| Some(1)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back["R1"].region_count(), 2);
        assert_eq!(back["R2"].region_count(), 4);
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn eviction_under_tiny_budget_drops_oldest() {
        let one_bytes: u64 = outputs("R", 5).values().map(|d| d.encoded_size() as u64).sum();
        let store = ResultStore::open(tmp("evict"), one_bytes * 2 + 1);
        for key in 0..3u64 {
            store.store(key, &[("S".into(), 1)], &outputs("R", 5)).unwrap();
            // mtime granularity: make sure ordering is observable.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let (entries, bytes) = store.usage();
        assert_eq!(entries, 2, "third insert evicts the oldest entry");
        assert!(bytes <= store.capacity_bytes);
        assert!(store.lookup(0, &|_| Some(1)).is_none());
        assert!(store.lookup(2, &|_| Some(1)).is_some());
        // An oversized result is simply not stored.
        let big = ResultStore::open(tmp("evict_big"), 4);
        big.store(5, &[("S".into(), 1)], &outputs("R", 50)).unwrap();
        assert_eq!(big.usage().0, 0);
        fs::remove_dir_all(store.dir()).ok();
        fs::remove_dir_all(big.dir()).ok();
    }

    #[test]
    fn sweep_stale_evicts_eagerly() {
        let store = ResultStore::open(tmp("sweep"), 1 << 20);
        store.store(1, &[("A".into(), 1)], &outputs("R", 2)).unwrap();
        store.store(2, &[("B".into(), 7)], &outputs("R", 2)).unwrap();
        // A's generation moved on; B's source is gone entirely.
        let evicted = store.sweep_stale(&|n| if n == "A" { Some(2) } else { None });
        assert_eq!(evicted, 2);
        assert_eq!(store.usage().0, 0);
        // Valid entries survive a sweep.
        store.store(3, &[("C".into(), 5)], &outputs("R", 2)).unwrap();
        assert_eq!(store.sweep_stale(&|_| Some(5)), 0);
        assert!(store.lookup(3, &|_| Some(5)).is_some());
        fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn corrupt_entries_are_reclaimed_as_misses() {
        let store = ResultStore::open(tmp("corrupt"), 1 << 20);
        store.store(4, &[("S".into(), 1)], &outputs("R", 3)).unwrap();
        fs::write(store.entry_dir(4).join("meta.json"), "not json").unwrap();
        assert!(store.lookup(4, &|_| Some(1)).is_none());
        assert!(!store.entry_dir(4).exists(), "corrupt entry is removed");
        fs::remove_dir_all(store.dir()).ok();
    }
}
