//! Metadata indexing: attribute–value and keyword inverted indexes.
//!
//! "Requesting information about remote datasets [is] facilitated by the
//! availability of metadata (for locating data of interest)" (§4.4), and
//! metadata search "should locate relevant samples within very large
//! bodies" (§4.5). This module builds the two indexes that power both:
//!
//! * an exact **attribute–value index**: `(attr, value) → samples`;
//! * a **keyword index** over tokenised attribute names and values, with
//!   document frequencies for TF-IDF ranking (done in `nggc-search`).

use nggc_gdm::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A `(dataset, sample)` posting.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Hash)]
pub struct SampleRef {
    /// Dataset name.
    pub dataset: String,
    /// Sample name.
    pub sample: String,
}

/// Inverted indexes over sample metadata.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetaIndex {
    /// `attr (lowercase) → value → postings`.
    exact: BTreeMap<String, BTreeMap<String, BTreeSet<SampleRef>>>,
    /// `token (lowercase) → postings`.
    keywords: BTreeMap<String, BTreeSet<SampleRef>>,
    /// Total indexed samples (for IDF).
    documents: usize,
    /// Tokens per sample (document length, for length normalisation),
    /// keyed by `dataset\u{0}sample` (JSON map keys must be strings).
    doc_len: BTreeMap<String, usize>,
}

fn doc_key(sref: &SampleRef) -> String {
    format!("{}\u{0}{}", sref.dataset, sref.sample)
}

/// Split text into lowercase alphanumeric tokens (≥ 2 chars).
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(str::to_ascii_lowercase)
        .collect()
}

impl MetaIndex {
    /// Empty index.
    pub fn new() -> MetaIndex {
        MetaIndex::default()
    }

    /// Index every sample of a dataset.
    pub fn add_dataset(&mut self, dataset: &Dataset) {
        for s in &dataset.samples {
            let sref = SampleRef { dataset: dataset.name.clone(), sample: s.name.clone() };
            let mut tokens = 0;
            for (attr, value) in s.metadata.iter() {
                self.exact
                    .entry(attr.to_ascii_lowercase())
                    .or_default()
                    .entry(value.to_owned())
                    .or_default()
                    .insert(sref.clone());
                for tok in tokenize(attr).into_iter().chain(tokenize(value)) {
                    self.keywords.entry(tok).or_default().insert(sref.clone());
                    tokens += 1;
                }
            }
            self.doc_len.insert(doc_key(&sref), tokens);
            self.documents += 1;
        }
    }

    /// Samples carrying `attr == value` exactly (value case-sensitive,
    /// attribute case-insensitive).
    pub fn lookup(&self, attr: &str, value: &str) -> Vec<&SampleRef> {
        self.exact
            .get(&attr.to_ascii_lowercase())
            .and_then(|vals| vals.get(value))
            .map(|set| set.iter().collect())
            .unwrap_or_default()
    }

    /// All distinct values of an attribute with their sample counts.
    pub fn values_of(&self, attr: &str) -> Vec<(&str, usize)> {
        self.exact
            .get(&attr.to_ascii_lowercase())
            .map(|vals| vals.iter().map(|(v, s)| (v.as_str(), s.len())).collect())
            .unwrap_or_default()
    }

    /// Postings of one keyword token.
    pub fn postings(&self, token: &str) -> Option<&BTreeSet<SampleRef>> {
        self.keywords.get(&token.to_ascii_lowercase())
    }

    /// Number of indexed samples.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// Document frequency of a token.
    pub fn df(&self, token: &str) -> usize {
        self.postings(token).map(BTreeSet::len).unwrap_or(0)
    }

    /// Token count of a sample's metadata document.
    pub fn doc_len(&self, sref: &SampleRef) -> usize {
        self.doc_len.get(&doc_key(sref)).copied().unwrap_or(0)
    }

    /// All indexed attribute names.
    pub fn attributes(&self) -> Vec<&str> {
        self.exact.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nggc_gdm::{Metadata, Sample, Schema};

    fn dataset() -> Dataset {
        let mut ds = Dataset::new("ENCODE", Schema::empty());
        for (name, pairs) in [
            ("s1", vec![("cell", "HeLa-S3"), ("antibody", "CTCF")]),
            ("s2", vec![("cell", "K562"), ("antibody", "CTCF"), ("treatment", "IFNg stimulation")]),
            ("s3", vec![("cell", "HeLa-S3"), ("antibody", "POLR2A")]),
        ] {
            ds.add_sample(Sample::new(name, "ENCODE").with_metadata(Metadata::from_pairs(pairs)))
                .unwrap();
        }
        ds
    }

    #[test]
    fn tokenizer_splits_on_non_alnum() {
        assert_eq!(tokenize("HeLa-S3"), vec!["hela", "s3"]);
        assert_eq!(tokenize("IFNg stimulation"), vec!["ifng", "stimulation"]);
        assert!(!tokenize("a-b-c").iter().all(|t| t.len() >= 2) || tokenize("x").is_empty());
    }

    #[test]
    fn exact_lookup() {
        let mut idx = MetaIndex::new();
        idx.add_dataset(&dataset());
        let hits = idx.lookup("CELL", "HeLa-S3");
        assert_eq!(hits.len(), 2);
        assert!(idx.lookup("cell", "hela-s3").is_empty(), "values are case-sensitive");
        assert_eq!(idx.lookup("antibody", "CTCF").len(), 2);
    }

    #[test]
    fn keyword_postings_and_df() {
        let mut idx = MetaIndex::new();
        idx.add_dataset(&dataset());
        assert_eq!(idx.df("hela"), 2);
        assert_eq!(idx.df("ctcf"), 2);
        assert_eq!(idx.df("ifng"), 1);
        assert_eq!(idx.df("nonexistent"), 0);
        assert_eq!(idx.documents(), 3);
    }

    #[test]
    fn values_enumeration() {
        let mut idx = MetaIndex::new();
        idx.add_dataset(&dataset());
        let vals = idx.values_of("cell");
        assert_eq!(vals, vec![("HeLa-S3", 2), ("K562", 1)]);
        assert!(idx.attributes().contains(&"treatment"));
    }

    #[test]
    fn serde_roundtrip() {
        let mut idx = MetaIndex::new();
        idx.add_dataset(&dataset());
        let json = serde_json::to_string(&idx).unwrap();
        let back: MetaIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.documents(), 3);
        assert_eq!(back.df("ctcf"), 2);
    }
}
