//! # `nggc-repository` — curated dataset repositories
//!
//! The paper's §4.3 vision provides "integrated access to curated data
//! ... through user-friendly search services". This crate implements the
//! storage half: an on-disk [`Repository`] of GDM-native datasets with a
//! JSON [`catalog`](CatalogEntry) (schemas + statistics, enabling
//! compilation and size estimation without region scans) and the
//! [`MetaIndex`] inverted indexes that the search services (`nggc-search`)
//! and the federation protocol (`nggc-federation`) build on.

#![warn(missing_docs)]

pub mod catalog;
pub mod durable;
pub mod error;
pub mod fsck;
pub mod meta_index;
pub mod result_store;

pub use catalog::{CatalogEntry, MigrationReport, MigrationSweep, RepoHealth, Repository};
pub use durable::{CRASHPOINT_ENV, CRASH_SITES};
pub use error::RepoError;
pub use fsck::{fsck, FsckIssue, FsckOptions, FsckReport, IssueKind};
pub use meta_index::{tokenize, MetaIndex, SampleRef};
pub use nggc_formats::native_v2::{ScanOptions, StorageVersion};
pub use result_store::ResultStore;
