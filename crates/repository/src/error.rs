//! Error type of the repository crate.

use nggc_formats::FormatError;
use nggc_gdm::GdmError;
use std::fmt;

/// Errors raised by repository operations.
#[derive(Debug)]
pub enum RepoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Catalog (de)serialisation failure.
    Catalog(serde_json::Error),
    /// Dataset file format failure.
    Format(FormatError),
    /// Data-model violation.
    Model(GdmError),
    /// No dataset with the given name.
    NotFound(String),
    /// A bounded load was refused because the catalog's size estimate
    /// exceeds the caller's remaining memory budget.
    Budget {
        /// Dataset name.
        name: String,
        /// Catalog estimate of the dataset's in-memory encoded size.
        estimated: u64,
        /// Bytes the caller could still afford.
        budget: u64,
    },
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "i/o error: {e}"),
            RepoError::Catalog(e) => write!(f, "catalog error: {e}"),
            RepoError::Format(e) => write!(f, "format error: {e}"),
            RepoError::Model(e) => write!(f, "model error: {e}"),
            RepoError::NotFound(n) => write!(f, "dataset {n:?} not found"),
            RepoError::Budget { name, estimated, budget } => write!(
                f,
                "loading dataset {name:?} (estimated {estimated} B) would exceed the \
                 remaining memory budget of {budget} B"
            ),
        }
    }
}

impl std::error::Error for RepoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RepoError::Io(e) => Some(e),
            RepoError::Catalog(e) => Some(e),
            RepoError::Format(e) => Some(e),
            RepoError::Model(e) => Some(e),
            RepoError::NotFound(_) => None,
            RepoError::Budget { .. } => None,
        }
    }
}

impl From<std::io::Error> for RepoError {
    fn from(e: std::io::Error) -> Self {
        RepoError::Io(e)
    }
}
impl From<serde_json::Error> for RepoError {
    fn from(e: serde_json::Error) -> Self {
        RepoError::Catalog(e)
    }
}
impl From<FormatError> for RepoError {
    fn from(e: FormatError) -> Self {
        RepoError::Format(e)
    }
}
