//! Crash-atomic durable writes and deterministic crash injection.
//!
//! Every mutation the repository makes to disk goes through this
//! module, so the whole storage layer shares one durability protocol:
//!
//! * [`atomic_write`] — stage bytes into a sibling temp file, fsync the
//!   file, rename it into place, fsync the parent directory. A crash at
//!   any instant leaves either the old bytes or the new bytes, never a
//!   torn file.
//! * [`atomic_replace_dir`] — the same contract for whole directories
//!   (dataset containers): the staged tree is fsynced recursively, the
//!   old directory is renamed into a `.trash` staging area, the new one
//!   renamed in, and the parent fsynced. Trash is swept afterwards;
//!   leftovers from a crash are swept on the next open or by fsck.
//!
//! ## Crash injection
//!
//! `NGGC_CRASHPOINT=<site>:<n>` makes the process abort (SIGABRT, no
//! destructors, no flushes — as close to `kill -9` at the worst instant
//! as a deterministic test can get) at the *n*-th execution of the
//! named fault [`crashpoint`]. Sites are placed immediately after each
//! state transition of the protocols above, so a test harness can kill
//! a real `nggc` binary between any two steps and assert recovery. The
//! registered sites are listed in [`CRASH_SITES`]; `nggc fsck
//! --crashpoints` prints them for CI matrices.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable arming the crash-injection hook:
/// `<site>:<n>` aborts at the n-th hit of `site` (1-based).
pub const CRASHPOINT_ENV: &str = "NGGC_CRASHPOINT";

/// Every registered fault site, in the order a `save` hits them. Test
/// harnesses iterate this list; keep it in sync with the `crashpoint`
/// calls below and in `catalog.rs`.
pub const CRASH_SITES: &[&str] = &[
    // atomic_write (catalog.json, generations.json, result-cache meta)
    "durable.staged",
    "durable.renamed",
    // atomic_replace_dir (dataset containers, result-cache entries)
    "replace.staged",
    "replace.trashed",
    "replace.renamed",
    // catalog.rs save / delete protocols
    "save.generations",
    "save.catalog",
    "save.swapped",
    "delete.cataloged",
    "delete.trashed",
];

fn armed() -> Option<&'static (String, u64)> {
    static SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = std::env::var(CRASHPOINT_ENV).ok()?;
        let (site, n) = raw.split_once(':')?;
        let n: u64 = n.parse().ok()?;
        (n > 0).then(|| (site.to_string(), n))
    })
    .as_ref()
}

/// Deterministic fault site: aborts the process at the n-th hit of
/// `site` when `NGGC_CRASHPOINT=<site>:<n>` is set; a no-op otherwise.
pub fn crashpoint(site: &str) {
    static HITS: AtomicU64 = AtomicU64::new(0);
    if let Some((armed_site, n)) = armed() {
        if armed_site == site {
            let hit = HITS.fetch_add(1, Ordering::SeqCst) + 1;
            if hit == *n {
                eprintln!("crashpoint {site}:{n} reached, aborting");
                std::process::abort();
            }
        }
    }
}

fn fsync_counter() {
    nggc_obs::global().counter("nggc_repo_fsync_total").inc();
}

/// Fsync an already-open file, counting it in `nggc_repo_fsync_total`.
pub fn fsync_file(f: &fs::File) -> io::Result<()> {
    f.sync_all()?;
    fsync_counter();
    Ok(())
}

/// Fsync a directory so renames inside it are durable. On platforms
/// where directories cannot be opened for sync this is a no-op.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let f = fs::File::open(dir)?;
        f.sync_all()?;
        fsync_counter();
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// Fsync every regular file under `dir`, then each directory bottom-up,
/// so a subsequent rename of `dir` publishes fully durable contents.
pub fn fsync_dir_recursive(dir: &Path) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            fsync_dir_recursive(&path)?;
        } else {
            fsync_file(&fs::File::open(&path)?)?;
        }
    }
    fsync_dir(dir)
}

/// Sibling temp path for staging a write to `path`; same directory so
/// the final rename never crosses a filesystem boundary.
fn staging_path(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("file");
    path.with_file_name(format!(".tmp-{}-{}", std::process::id(), name))
}

/// Durably replace the contents of `path` with `bytes`: write a sibling
/// temp file, fsync it, rename over `path`, fsync the parent directory.
/// A crash at any point leaves either the previous file or the new one.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty()).map(Path::to_path_buf);
    if let Some(parent) = &parent {
        fs::create_dir_all(parent)?;
    }
    let tmp = staging_path(path);
    {
        use std::io::Write;
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        crashpoint("durable.staged");
        fsync_file(&f)?;
    }
    fs::rename(&tmp, path)?;
    crashpoint("durable.renamed");
    if let Some(parent) = &parent {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// Move `path` into `trash_root` under a unique name, creating the
/// trash directory if needed. Returns the trashed path.
pub fn move_to_trash(path: &Path, trash_root: &Path) -> io::Result<PathBuf> {
    fs::create_dir_all(trash_root)?;
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let dest = trash_root.join(format!("{name}-{}-{seq}", std::process::id()));
    fs::rename(path, &dest)?;
    Ok(dest)
}

/// Durably replace directory `dest` with the fully-written `staging`
/// tree. The staged files are fsynced, any existing `dest` is renamed
/// into `trash_root` (never deleted in place), `staging` is renamed to
/// `dest`, the parent is fsynced, and only then is the trash removed.
/// A crash at any point leaves `dest` as either the old tree, absent
/// with the old tree intact in trash, or the new tree — never a blend.
pub fn atomic_replace_dir(staging: &Path, dest: &Path, trash_root: &Path) -> io::Result<()> {
    fsync_dir_recursive(staging)?;
    crashpoint("replace.staged");
    let trashed = if dest.exists() {
        let t = move_to_trash(dest, trash_root)?;
        crashpoint("replace.trashed");
        Some(t)
    } else {
        None
    };
    fs::rename(staging, dest)?;
    crashpoint("replace.renamed");
    if let Some(parent) = dest.parent().filter(|p| !p.as_os_str().is_empty()) {
        fsync_dir(parent)?;
    }
    if let Some(trashed) = trashed {
        fs::remove_dir_all(&trashed).ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "nggc_durable_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = tmp("aw");
        let path = dir.join("catalog.json");
        atomic_write(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_write(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "staging files must not survive a successful write");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_replace_dir_swaps_whole_trees() {
        let dir = tmp("ard");
        let dest = dir.join("ds");
        let trash = dir.join(".trash");
        fs::create_dir_all(&dest).unwrap();
        fs::write(dest.join("data"), b"old").unwrap();
        let staging = dir.join(".stage");
        fs::create_dir_all(staging.join("nested")).unwrap();
        fs::write(staging.join("data"), b"new").unwrap();
        fs::write(staging.join("nested/extra"), b"x").unwrap();
        atomic_replace_dir(&staging, &dest, &trash).unwrap();
        assert_eq!(fs::read(dest.join("data")).unwrap(), b"new");
        assert_eq!(fs::read(dest.join("nested/extra")).unwrap(), b"x");
        assert!(!staging.exists());
        // Trash is swept after a successful swap.
        let trashed = trash.exists() && fs::read_dir(&trash).unwrap().next().is_some();
        assert!(!trashed, "trash must be empty after a clean replace");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crashpoint_is_inert_without_env() {
        // The test runner must never have NGGC_CRASHPOINT set; every
        // registered site is then a no-op.
        for site in CRASH_SITES {
            crashpoint(site);
        }
    }
}
