//! Profiler rendering: turn collected [`SpanRecord`]s into a
//! hierarchical tree (for `nggc query --profile`) and a top-k operator
//! table ranked by self time.

use crate::trace::SpanRecord;
use std::collections::HashMap;
use std::time::Duration;

/// Render spans as an indented tree. Roots are spans whose parent is
/// absent from the set; children print in start order. Each line shows
/// wall time, the span name, and its fields.
pub fn render_span_tree(records: &[SpanRecord]) -> String {
    let mut children: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.id).collect();
    for r in records {
        match r.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(r),
            _ => roots.push(r),
        }
    }
    let by_start = |a: &&SpanRecord, b: &&SpanRecord| a.start.cmp(&b.start);
    roots.sort_by(by_start);
    for v in children.values_mut() {
        v.sort_by(by_start);
    }

    let mut out = String::new();
    fn walk(
        r: &SpanRecord,
        children: &HashMap<u64, Vec<&SpanRecord>>,
        depth: usize,
        out: &mut String,
    ) {
        out.push_str(&format!(
            "{:>11} {:indent$}{}",
            format_duration(r.wall),
            "",
            r.name,
            indent = depth * 2
        ));
        for (k, v) in &r.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        if let Some(kids) = children.get(&r.id) {
            for kid in kids {
                walk(kid, children, depth + 1, out);
            }
        }
    }
    for r in &roots {
        walk(r, &children, 0, &mut out);
    }
    out
}

/// One row of the operator table: spans aggregated by name (or by a
/// chosen field such as `op`).
#[derive(Debug, Clone, PartialEq)]
pub struct OpRow {
    /// Aggregation key.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Total wall time.
    pub total: Duration,
    /// Wall time minus the wall time of direct children (per span).
    pub self_time: Duration,
}

/// Aggregate spans by `group_field` when present (falling back to span
/// name) and return rows sorted by descending self time, truncated to
/// `k`. Self time is wall time minus direct children's wall time,
/// clamped at zero.
pub fn top_k_operators(records: &[SpanRecord], group_field: Option<&str>, k: usize) -> Vec<OpRow> {
    // Direct-children wall sums, for self-time.
    let mut child_wall: HashMap<u64, Duration> = HashMap::new();
    for r in records {
        if let Some(p) = r.parent {
            *child_wall.entry(p).or_default() += r.wall;
        }
    }
    let mut rows: HashMap<String, OpRow> = HashMap::new();
    for r in records {
        let key = group_field.and_then(|f| r.field(f)).unwrap_or(&r.name).to_owned();
        let self_time = r.wall.saturating_sub(child_wall.get(&r.id).copied().unwrap_or_default());
        let row = rows.entry(key.clone()).or_insert(OpRow {
            name: key,
            count: 0,
            total: Duration::ZERO,
            self_time: Duration::ZERO,
        });
        row.count += 1;
        row.total += r.wall;
        row.self_time += self_time;
    }
    let mut rows: Vec<OpRow> = rows.into_values().collect();
    rows.sort_by(|a, b| b.self_time.cmp(&a.self_time).then_with(|| a.name.cmp(&b.name)));
    rows.truncate(k);
    rows
}

/// Render the top-k operator table as aligned text.
pub fn render_top_k(records: &[SpanRecord], group_field: Option<&str>, k: usize) -> String {
    let rows = top_k_operators(records, group_field, k);
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(8).max(8);
    let mut out =
        format!("{:<name_w$} {:>7} {:>11} {:>11}\n", "operator", "count", "total", "self");
    for r in &rows {
        out.push_str(&format!(
            "{:<name_w$} {:>7} {:>11} {:>11}\n",
            r.name,
            r.count,
            format_duration(r.total),
            format_duration(r.self_time),
        ));
    }
    out
}

/// Fixed-width human duration (µs below 1 ms, ms below 1 s, else s).
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: Option<u64>, name: &str, start_us: u64, wall_us: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace_id: 0,
            name: name.to_owned(),
            start: Duration::from_micros(start_us),
            wall: Duration::from_micros(wall_us),
            fields: Vec::new(),
        }
    }

    #[test]
    fn tree_indents_children_under_parents() {
        let records = vec![
            rec(2, Some(1), "child_a", 5, 40),
            rec(3, Some(1), "child_b", 50, 30),
            rec(1, None, "root", 0, 100),
        ];
        let text = render_span_tree(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("root"));
        assert!(lines[1].contains("  child_a"), "{text}");
        assert!(lines[2].contains("  child_b"), "{text}");
        // Children sorted by start time.
        assert!(lines[1].contains("child_a") && lines[2].contains("child_b"));
    }

    #[test]
    fn orphan_spans_become_roots() {
        let records = vec![rec(7, Some(99), "orphan", 0, 10)];
        let text = render_span_tree(&records);
        assert!(text.contains("orphan"));
        assert!(!text.contains("  orphan"), "orphan must not be indented: {text}");
    }

    #[test]
    fn top_k_ranks_by_self_time() {
        let records = vec![
            rec(1, None, "outer", 0, 100),
            rec(2, Some(1), "inner", 10, 80),
            rec(3, Some(2), "leaf", 20, 10),
        ];
        let rows = top_k_operators(&records, None, 10);
        // outer self = 100-80 = 20, inner self = 80-10 = 70, leaf = 10.
        assert_eq!(rows[0].name, "inner");
        assert_eq!(rows[0].self_time, Duration::from_micros(70));
        assert_eq!(rows[1].name, "outer");
        assert_eq!(rows[2].name, "leaf");
        let top1 = top_k_operators(&records, None, 1);
        assert_eq!(top1.len(), 1);
    }

    #[test]
    fn top_k_groups_by_field() {
        let mut a = rec(1, None, "exec.node", 0, 50);
        a.fields.push(("op".into(), "Select".into()));
        let mut b = rec(2, None, "exec.node", 60, 30);
        b.fields.push(("op".into(), "Select".into()));
        let mut c = rec(3, None, "exec.node", 100, 20);
        c.fields.push(("op".into(), "Join".into()));
        let rows = top_k_operators(&[a, b, c], Some("op"), 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "Select");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total, Duration::from_micros(80));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000s");
    }
}
