//! Structured tracing: spans with parent ids, wall time, and
//! `key=value` fields, delivered to pluggable subscribers.
//!
//! A span is opened with [`span`] and closed when its [`SpanGuard`]
//! drops; the finished [`SpanRecord`] is then handed to every
//! registered [`Subscriber`]. Parenting is tracked per thread: the span
//! most recently opened (and not yet closed) on the current thread is
//! the parent of the next one. Children therefore close before their
//! parents, so collectors see leaves first.
//!
//! When no subscriber is registered (and no thread-local collector is
//! installed), [`span`] returns an inert guard whose open and drop cost
//! one atomic load plus one thread-local read each.
//!
//! ## Distributed tracing
//!
//! Every span carries a `trace_id` taken from the thread's current
//! [`TraceContext`] (0 when none was entered). A context is seedable
//! ([`TraceContext::with_id`]) so tests are deterministic — ids come
//! from counters, never from wall-clock time or randomness. A context
//! may also carry a foreign *parent span id*; [`TraceContext::enter`]
//! adopts it as the parent for spans subsequently opened on this
//! thread, which is how worker threads and remote federation nodes
//! parent their spans under the coordinator's span tree.
//!
//! [`collect_local`] models a process boundary: while active on a
//! thread, closed spans are captured into a local buffer instead of
//! being fanned out to the global subscribers. A federation node uses
//! it to capture spans for shipping back to the coordinator, which
//! re-injects them with [`emit_record`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A finished span, as delivered to subscribers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (process-wide, never reused).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Trace this span belongs to (0 when opened outside any
    /// [`TraceContext`]).
    pub trace_id: u64,
    /// Span name (e.g. `exec.node` or `loader.parse`).
    pub name: String,
    /// Start time relative to the process trace epoch.
    pub start: Duration,
    /// Wall-clock time between open and close.
    pub wall: Duration,
    /// `key=value` fields attached while the span was open.
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    /// Look up a field value by key.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Receives finished spans.
pub trait Subscriber: Send + Sync {
    /// Called once per span, at close time.
    fn on_span(&self, span: &SpanRecord);
}

struct SubscriberSet {
    // `active` mirrors `subs.is_empty()` so `span()` can skip the lock.
    active: AtomicBool,
    subs: RwLock<Vec<Arc<dyn Subscriber>>>,
}

fn subscribers() -> &'static SubscriberSet {
    static SUBS: OnceLock<SubscriberSet> = OnceLock::new();
    SUBS.get_or_init(|| SubscriberSet {
        active: AtomicBool::new(false),
        subs: RwLock::new(Vec::new()),
    })
}

/// Register a subscriber; it receives every span closed from now on.
pub fn add_subscriber(sub: Arc<dyn Subscriber>) {
    let set = subscribers();
    set.subs.write().unwrap().push(sub);
    set.active.store(true, Ordering::Release);
}

/// Remove all subscribers (tests and the end of a `--profile` run).
pub fn clear_subscribers() {
    let set = subscribers();
    set.subs.write().unwrap().clear();
    set.active.store(false, Ordering::Release);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Stack of currently-open span ids on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Trace id stamped onto spans opened on this thread (0 = none).
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    /// When set, closed spans are captured here instead of reaching the
    /// global subscribers (see [`collect_local`]).
    static LOCAL_SINK: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

fn local_sink_active() -> bool {
    LOCAL_SINK.with(|s| s.borrow().is_some())
}

/// Identifies a query's trace and (optionally) a parent span to adopt.
///
/// Ids are drawn from process-global counters, so they are unique and
/// deterministic per process; [`TraceContext::with_id`] pins the trace
/// id explicitly for cross-process stitching and seeded tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id stamped onto every span opened under this context.
    pub trace_id: u64,
    /// Foreign span adopted as parent for spans opened under this
    /// context (e.g. the coordinator's `fed.call` span on a remote
    /// node, or the caller's span on a pool worker thread).
    pub parent: Option<u64>,
}

impl TraceContext {
    /// Fresh context with a newly allocated trace id and no parent.
    pub fn new() -> TraceContext {
        TraceContext { trace_id: next_trace_id(), parent: None }
    }

    /// Context with an explicit (seeded) trace id.
    pub fn with_id(trace_id: u64) -> TraceContext {
        TraceContext { trace_id, parent: None }
    }

    /// Capture this thread's context: its current trace id and the
    /// innermost open span as parent. Hand the result to another thread
    /// (it is `Copy`) and [`enter`](TraceContext::enter) it there to
    /// parent that thread's spans under this one.
    pub fn current() -> TraceContext {
        TraceContext {
            trace_id: CURRENT_TRACE.with(|t| t.get()),
            parent: SPAN_STACK.with(|s| s.borrow().last().copied()),
        }
    }

    /// Same context with `parent` replaced.
    pub fn child_of(self, parent: u64) -> TraceContext {
        TraceContext { parent: Some(parent), ..self }
    }

    /// Install this context on the current thread until the returned
    /// guard drops: spans opened meanwhile carry `trace_id`, and the
    /// first of them is parented under `parent` (when set).
    pub fn enter(self) -> TraceScope {
        let prev_trace = CURRENT_TRACE.with(|t| t.replace(self.trace_id));
        if let Some(parent) = self.parent {
            SPAN_STACK.with(|s| s.borrow_mut().push(parent));
        }
        TraceScope { prev_trace, adopted: self.parent }
    }
}

impl Default for TraceContext {
    fn default() -> TraceContext {
        TraceContext::new()
    }
}

/// RAII guard for an entered [`TraceContext`]; restores the previous
/// trace id (and un-adopts the foreign parent) on drop.
pub struct TraceScope {
    prev_trace: u64,
    adopted: Option<u64>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if let Some(parent) = self.adopted {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if let Some(pos) = s.iter().rposition(|&id| id == parent) {
                    s.remove(pos);
                }
            });
        }
        CURRENT_TRACE.with(|t| t.set(self.prev_trace));
    }
}

/// Trace id currently installed on this thread (0 when none).
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(|t| t.get())
}

/// Run `f` under `ctx` with span capture localized to this thread.
///
/// While `f` runs, spans closed on this thread are buffered locally and
/// **not** delivered to the global subscribers — this models a process
/// boundary: a federation node captures its spans here, ships them over
/// the wire, and the coordinator re-injects them via [`emit_record`]
/// (so nothing is double-counted). `span()` is forced active for the
/// duration even when no global subscriber is registered.
///
/// Returns `f`'s result and the captured spans in close order.
pub fn collect_local<T>(ctx: TraceContext, f: impl FnOnce() -> T) -> (T, Vec<SpanRecord>) {
    let prev = LOCAL_SINK.with(|s| s.borrow_mut().replace(Vec::new()));
    let scope = ctx.enter();
    let out = f();
    drop(scope);
    let captured = LOCAL_SINK.with(|s| {
        let mut slot = s.borrow_mut();
        let captured = slot.take().unwrap_or_default();
        *slot = prev;
        captured
    });
    (out, captured)
}

/// Deliver an already-finished span record to the subscribers exactly
/// as if it had closed on this thread. Used by the federation layer to
/// stitch spans shipped back from remote nodes into the coordinator's
/// trace (after appending a `node=` attribution field).
pub fn emit_record(record: &SpanRecord) {
    let captured = LOCAL_SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.push(record.clone());
            true
        } else {
            false
        }
    });
    if !captured {
        for sub in subscribers().subs.read().unwrap().iter() {
            sub.on_span(record);
        }
    }
}

/// Open a span. Fields may be attached on the returned guard; the span
/// is reported when the guard drops.
pub fn span(name: &str) -> SpanGuard {
    if !subscribers().active.load(Ordering::Acquire) && !local_sink_active() {
        return SpanGuard { inner: None };
    }
    let id = next_id();
    let trace_id = CURRENT_TRACE.with(|t| t.get());
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let now = Instant::now();
    SpanGuard {
        inner: Some(OpenSpan {
            id,
            parent,
            trace_id,
            name: name.to_owned(),
            start: now.duration_since(epoch()),
            opened: now,
            fields: Vec::new(),
        }),
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    trace_id: u64,
    name: String,
    start: Duration,
    opened: Instant,
    fields: Vec<(String, String)>,
}

/// RAII handle for an open span.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attach a `key=value` field (no-op on an inert guard).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        if let Some(open) = &mut self.inner {
            open.fields.push((key.to_owned(), value.to_string()));
        }
        self
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Id of the open span (`None` on an inert guard). Lets callers
    /// hand the id across a process or thread boundary as the parent of
    /// a [`TraceContext`].
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|open| open.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Usually the top of the stack; be robust to out-of-order
            // drops across scopes.
            if let Some(pos) = s.iter().rposition(|&id| id == open.id) {
                s.remove(pos);
            }
        });
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            trace_id: open.trace_id,
            name: open.name,
            start: open.start,
            wall: open.opened.elapsed(),
            fields: open.fields,
        };
        emit_record(&record);
    }
}

/// Default [`MemorySubscriber`] capacity: 64k records.
pub const MEMORY_SUBSCRIBER_CAPACITY: usize = 65_536;

/// Collects spans in a bounded ring buffer; feeds the profiler, the
/// slow-query flight recorder, and tests.
///
/// When the buffer is full the **oldest** record is evicted — a
/// long-running session keeps the most recent spans, which are the ones
/// a flight-recorder dump needs. Evictions are counted in
/// [`dropped`](MemorySubscriber::dropped).
pub struct MemorySubscriber {
    cap: usize,
    records: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl Default for MemorySubscriber {
    fn default() -> MemorySubscriber {
        MemorySubscriber::with_capacity(MEMORY_SUBSCRIBER_CAPACITY)
    }
}

impl MemorySubscriber {
    /// New empty collector with the default capacity
    /// ([`MEMORY_SUBSCRIBER_CAPACITY`]).
    pub fn new() -> MemorySubscriber {
        MemorySubscriber::default()
    }

    /// New empty collector holding at most `cap` records (clamped to at
    /// least 1).
    pub fn with_capacity(cap: usize) -> MemorySubscriber {
        MemorySubscriber {
            cap: cap.max(1),
            records: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Maximum number of records retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot of the retained spans, oldest first (close order:
    /// leaves before their parents).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().unwrap().iter().cloned().collect()
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for MemorySubscriber {
    fn on_span(&self, span: &SpanRecord) {
        let mut records = self.records.lock().unwrap();
        if records.len() == self.cap {
            records.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        records.push_back(span.clone());
    }
}

/// Pretty-prints each span to stderr as it closes.
#[derive(Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        let mut line = format!(
            "[trace] {:>10.3?} {} (#{}{})",
            span.wall,
            span.name,
            span.id,
            match span.parent {
                Some(p) => format!(" <- #{p}"),
                None => String::new(),
            }
        );
        for (k, v) in &span.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Subscribers are process-global, so every test in this module runs
    // under one lock to avoid cross-talk.
    fn with_collector(f: impl FnOnce(&Arc<MemorySubscriber>)) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        clear_subscribers();
        let collector = Arc::new(MemorySubscriber::new());
        add_subscriber(collector.clone() as Arc<dyn Subscriber>);
        f(&collector);
        clear_subscribers();
    }

    #[test]
    fn spans_record_name_fields_and_wall_time() {
        with_collector(|collector| {
            {
                let mut s = span("unit.work");
                s.field("rows", 42).field("kind", "test");
                std::thread::sleep(Duration::from_millis(2));
            }
            let records = collector.records();
            assert_eq!(records.len(), 1);
            let r = &records[0];
            assert_eq!(r.name, "unit.work");
            assert_eq!(r.field("rows"), Some("42"));
            assert_eq!(r.field("kind"), Some("test"));
            assert!(r.wall >= Duration::from_millis(2));
            assert!(r.parent.is_none());
        });
    }

    #[test]
    fn nested_spans_set_parent_ids() {
        with_collector(|collector| {
            {
                let _outer = span("outer");
                {
                    let _mid = span("mid");
                    let _leaf = span("leaf");
                }
                let _sibling = span("sibling");
            }
            let records = collector.records();
            assert_eq!(records.len(), 4);
            let by_name = |n: &str| records.iter().find(|r| r.name == n).unwrap();
            let outer = by_name("outer");
            let mid = by_name("mid");
            let leaf = by_name("leaf");
            let sibling = by_name("sibling");
            assert_eq!(mid.parent, Some(outer.id));
            assert_eq!(leaf.parent, Some(mid.id));
            assert_eq!(sibling.parent, Some(outer.id));
            // Close order: leaves before parents.
            let pos = |n: &str| records.iter().position(|r| r.name == n).unwrap();
            assert!(pos("leaf") < pos("mid"));
            assert!(pos("mid") < pos("outer"));
        });
    }

    #[test]
    fn no_subscriber_means_inert_guards() {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock();
        clear_subscribers();
        let s = span("ignored");
        assert!(!s.is_active());
    }

    #[test]
    fn trace_context_is_seedable_and_stamps_spans() {
        with_collector(|collector| {
            let scope = TraceContext::with_id(42).enter();
            {
                let _s = span("traced");
            }
            drop(scope);
            {
                let _s = span("untraced");
            }
            let records = collector.records();
            let traced = records.iter().find(|r| r.name == "traced").unwrap();
            let untraced = records.iter().find(|r| r.name == "untraced").unwrap();
            assert_eq!(traced.trace_id, 42);
            assert_eq!(untraced.trace_id, 0, "trace id must not leak past the scope");
        });
    }

    #[test]
    fn entered_context_adopts_foreign_parent() {
        with_collector(|collector| {
            let ctx = TraceContext::with_id(7).child_of(999);
            {
                let _scope = ctx.enter();
                let _child = span("adopted_child");
            }
            // After the scope drops, the foreign id is gone again.
            {
                let _free = span("free_root");
            }
            let records = collector.records();
            let child = records.iter().find(|r| r.name == "adopted_child").unwrap();
            let free = records.iter().find(|r| r.name == "free_root").unwrap();
            assert_eq!(child.parent, Some(999));
            assert_eq!(child.trace_id, 7);
            assert_eq!(free.parent, None);
        });
    }

    #[test]
    fn collect_local_captures_without_reaching_subscribers() {
        with_collector(|collector| {
            let (value, captured) = collect_local(TraceContext::with_id(5).child_of(50), || {
                let _outer = span("local.outer");
                let _inner = span("local.inner");
                17u32
            });
            assert_eq!(value, 17);
            assert_eq!(captured.len(), 2);
            // Inner closes first; both carry the context's trace id and
            // chain up to the foreign parent.
            assert_eq!(captured[0].name, "local.inner");
            assert_eq!(captured[1].name, "local.outer");
            assert_eq!(captured[1].parent, Some(50));
            assert_eq!(captured[0].parent, Some(captured[1].id));
            assert!(captured.iter().all(|r| r.trace_id == 5));
            assert!(
                collector.records().is_empty(),
                "locally collected spans must not fan out globally"
            );
            // Re-injection delivers them to subscribers verbatim.
            for rec in &captured {
                emit_record(rec);
            }
            assert_eq!(collector.len(), 2);
        });
    }

    #[test]
    fn collect_local_is_active_without_subscribers() {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock();
        clear_subscribers();
        let ((), captured) = collect_local(TraceContext::with_id(3), || {
            let s = span("still_recorded");
            assert!(s.is_active(), "local sink must force spans active");
        });
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].name, "still_recorded");
    }

    #[test]
    fn memory_subscriber_ring_evicts_oldest_and_counts_drops() {
        let sub = MemorySubscriber::with_capacity(3);
        for i in 0..5u64 {
            sub.on_span(&SpanRecord {
                id: i,
                parent: None,
                trace_id: 0,
                name: format!("s{i}"),
                start: Duration::ZERO,
                wall: Duration::ZERO,
                fields: Vec::new(),
            });
        }
        assert_eq!(sub.capacity(), 3);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.dropped(), 2);
        let names: Vec<String> = sub.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, ["s2", "s3", "s4"], "oldest records are evicted first");
    }

    #[test]
    fn threads_have_independent_parent_stacks() {
        with_collector(|collector| {
            let _outer = span("main_outer");
            std::thread::spawn(|| {
                let _t = span("thread_root");
            })
            .join()
            .unwrap();
            drop(_outer);
            let records = collector.records();
            let troot = records.iter().find(|r| r.name == "thread_root").unwrap();
            // A span on another thread is not parented to this thread's.
            assert!(troot.parent.is_none());
        });
    }
}
