//! Structured tracing: spans with parent ids, wall time, and
//! `key=value` fields, delivered to pluggable subscribers.
//!
//! A span is opened with [`span`] and closed when its [`SpanGuard`]
//! drops; the finished [`SpanRecord`] is then handed to every
//! registered [`Subscriber`]. Parenting is tracked per thread: the span
//! most recently opened (and not yet closed) on the current thread is
//! the parent of the next one. Children therefore close before their
//! parents, so collectors see leaves first.
//!
//! When no subscriber is registered, [`span`] returns an inert guard
//! whose open and drop cost one relaxed atomic load each.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A finished span, as delivered to subscribers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (process-wide, never reused).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (e.g. `exec.node` or `loader.parse`).
    pub name: String,
    /// Start time relative to the process trace epoch.
    pub start: Duration,
    /// Wall-clock time between open and close.
    pub wall: Duration,
    /// `key=value` fields attached while the span was open.
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    /// Look up a field value by key.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Receives finished spans.
pub trait Subscriber: Send + Sync {
    /// Called once per span, at close time.
    fn on_span(&self, span: &SpanRecord);
}

struct SubscriberSet {
    // `active` mirrors `subs.is_empty()` so `span()` can skip the lock.
    active: AtomicBool,
    subs: RwLock<Vec<Arc<dyn Subscriber>>>,
}

fn subscribers() -> &'static SubscriberSet {
    static SUBS: OnceLock<SubscriberSet> = OnceLock::new();
    SUBS.get_or_init(|| SubscriberSet {
        active: AtomicBool::new(false),
        subs: RwLock::new(Vec::new()),
    })
}

/// Register a subscriber; it receives every span closed from now on.
pub fn add_subscriber(sub: Arc<dyn Subscriber>) {
    let set = subscribers();
    set.subs.write().unwrap().push(sub);
    set.active.store(true, Ordering::Release);
}

/// Remove all subscribers (tests and the end of a `--profile` run).
pub fn clear_subscribers() {
    let set = subscribers();
    set.subs.write().unwrap().clear();
    set.active.store(false, Ordering::Release);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Stack of currently-open span ids on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Open a span. Fields may be attached on the returned guard; the span
/// is reported when the guard drops.
pub fn span(name: &str) -> SpanGuard {
    if !subscribers().active.load(Ordering::Acquire) {
        return SpanGuard { inner: None };
    }
    let id = next_id();
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(id);
        parent
    });
    let now = Instant::now();
    SpanGuard {
        inner: Some(OpenSpan {
            id,
            parent,
            name: name.to_owned(),
            start: now.duration_since(epoch()),
            opened: now,
            fields: Vec::new(),
        }),
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    name: String,
    start: Duration,
    opened: Instant,
    fields: Vec<(String, String)>,
}

/// RAII handle for an open span.
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attach a `key=value` field (no-op on an inert guard).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        if let Some(open) = &mut self.inner {
            open.fields.push((key.to_owned(), value.to_string()));
        }
        self
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else { return };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Usually the top of the stack; be robust to out-of-order
            // drops across scopes.
            if let Some(pos) = s.iter().rposition(|&id| id == open.id) {
                s.remove(pos);
            }
        });
        let record = SpanRecord {
            id: open.id,
            parent: open.parent,
            name: open.name,
            start: open.start,
            wall: open.opened.elapsed(),
            fields: open.fields,
        };
        for sub in subscribers().subs.read().unwrap().iter() {
            sub.on_span(&record);
        }
    }
}

/// Collects spans in memory; feeds the profiler and tests.
#[derive(Default)]
pub struct MemorySubscriber {
    records: Mutex<Vec<SpanRecord>>,
}

impl MemorySubscriber {
    /// New empty collector.
    pub fn new() -> MemorySubscriber {
        MemorySubscriber::default()
    }

    /// Snapshot of every span collected so far (close order: leaves
    /// before their parents).
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Number of spans collected.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for MemorySubscriber {
    fn on_span(&self, span: &SpanRecord) {
        self.records.lock().unwrap().push(span.clone());
    }
}

/// Pretty-prints each span to stderr as it closes.
#[derive(Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn on_span(&self, span: &SpanRecord) {
        let mut line = format!(
            "[trace] {:>10.3?} {} (#{}{})",
            span.wall,
            span.name,
            span.id,
            match span.parent {
                Some(p) => format!(" <- #{p}"),
                None => String::new(),
            }
        );
        for (k, v) in &span.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Subscribers are process-global, so every test in this module runs
    // under one lock to avoid cross-talk.
    fn with_collector(f: impl FnOnce(&Arc<MemorySubscriber>)) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        clear_subscribers();
        let collector = Arc::new(MemorySubscriber::new());
        add_subscriber(collector.clone() as Arc<dyn Subscriber>);
        f(&collector);
        clear_subscribers();
    }

    #[test]
    fn spans_record_name_fields_and_wall_time() {
        with_collector(|collector| {
            {
                let mut s = span("unit.work");
                s.field("rows", 42).field("kind", "test");
                std::thread::sleep(Duration::from_millis(2));
            }
            let records = collector.records();
            assert_eq!(records.len(), 1);
            let r = &records[0];
            assert_eq!(r.name, "unit.work");
            assert_eq!(r.field("rows"), Some("42"));
            assert_eq!(r.field("kind"), Some("test"));
            assert!(r.wall >= Duration::from_millis(2));
            assert!(r.parent.is_none());
        });
    }

    #[test]
    fn nested_spans_set_parent_ids() {
        with_collector(|collector| {
            {
                let _outer = span("outer");
                {
                    let _mid = span("mid");
                    let _leaf = span("leaf");
                }
                let _sibling = span("sibling");
            }
            let records = collector.records();
            assert_eq!(records.len(), 4);
            let by_name = |n: &str| records.iter().find(|r| r.name == n).unwrap();
            let outer = by_name("outer");
            let mid = by_name("mid");
            let leaf = by_name("leaf");
            let sibling = by_name("sibling");
            assert_eq!(mid.parent, Some(outer.id));
            assert_eq!(leaf.parent, Some(mid.id));
            assert_eq!(sibling.parent, Some(outer.id));
            // Close order: leaves before parents.
            let pos = |n: &str| records.iter().position(|r| r.name == n).unwrap();
            assert!(pos("leaf") < pos("mid"));
            assert!(pos("mid") < pos("outer"));
        });
    }

    #[test]
    fn no_subscriber_means_inert_guards() {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock();
        clear_subscribers();
        let s = span("ignored");
        assert!(!s.is_active());
    }

    #[test]
    fn threads_have_independent_parent_stacks() {
        with_collector(|collector| {
            let _outer = span("main_outer");
            std::thread::spawn(|| {
                let _t = span("thread_root");
            })
            .join()
            .unwrap();
            drop(_outer);
            let records = collector.records();
            let troot = records.iter().find(|r| r.name == "thread_root").unwrap();
            // A span on another thread is not parented to this thread's.
            assert!(troot.parent.is_none());
        });
    }
}
