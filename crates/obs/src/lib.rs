//! # nggc-obs — observability for the NGGC workspace
//!
//! Three layers, zero external dependencies:
//!
//! 1. **Metrics** ([`metrics`]): a process-global registry of named
//!    atomic counters, gauges, and log₂-bucketed histograms, with
//!    Prometheus-style text exposition and JSON export. The registry
//!    can be disabled globally ([`metrics::set_enabled`]); disabled
//!    handles cost one relaxed atomic load per operation.
//!
//! 2. **Tracing** ([`trace`]): structured spans with parent ids, wall
//!    time, and `key=value` fields, fanned out to pluggable
//!    [`trace::Subscriber`]s — a stderr pretty-printer for ad-hoc
//!    debugging and an in-memory collector feeding the profiler and
//!    tests.
//!
//! 3. **Profiling** ([`profile`]): renders a collector's span records
//!    as a hierarchical tree (`nggc query --profile`) and as a top-k
//!    operator table ranked by self time.
//!
//! The metric name catalog and span taxonomy live in
//! `docs/observability.md`.

pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use profile::{render_span_tree, render_top_k};
pub use trace::{
    add_subscriber, clear_subscribers, collect_local, current_trace_id, emit_record, span,
    MemorySubscriber, SpanGuard, SpanRecord, StderrSubscriber, Subscriber, TraceContext,
    TraceScope, MEMORY_SUBSCRIBER_CAPACITY,
};
